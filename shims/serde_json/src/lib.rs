//! Vendored stand-in for `serde_json` over the serde shim's [`Value`] tree.
//!
//! Emits the same JSON the real crate would for the types this workspace
//! serializes (externally-tagged enums, newtype structs as their inner
//! value, 2-space pretty-printing) and parses it back with a small
//! recursive-descent parser.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON to an `io::Write` sink.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> std::io::Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// JSON has no NaN/Infinity; like serde_json, emit `null` for them. Finite
/// integral floats keep a trailing `.0` so they read back as floats.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let ch_len = utf8_len(b);
                    let end = start + ch_len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(chunk, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}É💡".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""💡""#).unwrap(), "💡");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
