//! Vendored stand-in for the `loom` model checker (offline builds; see
//! `shims/README.md`).
//!
//! [`model`] runs a closure under **every** thread interleaving at
//! atomic-operation granularity: the spawned threads are real OS threads,
//! but a token scheduler lets exactly one run at a time and inserts a
//! scheduling decision immediately before every atomic operation (and at
//! spawn starts, joins, and thread exits). Exploration is depth-first over
//! the decision tree with choice-vector replay: execution *n* replays a
//! recorded prefix of decisions and takes the first untried branch at its
//! deepest branching point, so the whole tree is visited exactly once and
//! every execution is deterministic.
//!
//! ## Fidelity
//!
//! Unlike real loom this shim models **sequential consistency**: memory
//! orderings are accepted and passed through to the underlying `std`
//! atomics, but no weak-memory reorderings are explored. Interleaving bugs
//! — lost updates, racy check-then-act windows, missed wakeups, broken CAS
//! retry loops — are found exhaustively; `Relaxed`-vs-`Acquire` mistakes
//! are not. That is the right trade for this workspace: the lock-free
//! structures under test carry their own ordering arguments in
//! `DESIGN.md`, and what wants machine-checking is the transition logic.
//!
//! A panic on any model thread aborts the current execution, and [`model`]
//! re-raises it annotated (on stderr) with the decision prefix that
//! reproduces the failing schedule.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on explored executions; hitting it means the modelled test is
/// too big (shrink the thread count or ops per thread), not that the shim
/// should silently stop short of exhaustiveness.
const MAX_EXECUTIONS: usize = 250_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Has work to do; a scheduling candidate.
    Active,
    /// Waiting inside `join` for the given thread to finish.
    Joining(usize),
    Done,
}

struct State {
    threads: Vec<Run>,
    /// Which thread currently holds the run token.
    current: usize,
    /// Decisions taken so far this execution, as (chosen index, #candidates).
    decisions: Vec<(usize, usize)>,
    /// Replay prefix: decision indices to take before exploring fresh ones
    /// (fresh ones always take candidate 0).
    prefix: Vec<usize>,
    failed: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Scheduler {
    st: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// (scheduler, my thread id) for threads managed by an active model run.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// A scheduling decision point. No-op outside [`model`], so the shim's
/// atomic wrappers behave as plain atomics in ordinary code.
pub(crate) fn sched_point() {
    if let Some((sched, me)) = ctx() {
        sched.yield_at(me);
    }
}

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Self {
        Scheduler {
            st: Mutex::new(State {
                threads: vec![Run::Active],
                current: 0,
                decisions: Vec::new(),
                prefix,
                failed: false,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the next thread to run among the Active ones (sorted by id, so
    /// replay is deterministic) and records the decision. Lock held.
    fn decide(st: &mut State) -> Option<usize> {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Active)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let k = st.decisions.len();
        let choice = st
            .prefix
            .get(k)
            .copied()
            .unwrap_or(0)
            .min(runnable.len() - 1);
        st.decisions.push((choice, runnable.len()));
        Some(runnable[choice])
    }

    fn abort_if_failed(st: &State) {
        if st.failed {
            panic!("loom model execution aborted (another thread failed)");
        }
    }

    /// The decision point before every atomic operation: choose who
    /// performs their next operation, hand over the token if it isn't us,
    /// and block until it comes back.
    fn yield_at(&self, me: usize) {
        let mut st = self.st.lock().unwrap();
        Self::abort_if_failed(&st);
        let next = Self::decide(&mut st).expect("the yielding thread itself is runnable");
        if next == me {
            return;
        }
        st.current = next;
        self.cv.notify_all();
        while st.current != me {
            st = self.cv.wait(st).unwrap();
            Self::abort_if_failed(&st);
        }
    }

    /// Parks a freshly spawned thread until a decision schedules it.
    fn wait_turn(&self, me: usize) {
        let mut st = self.st.lock().unwrap();
        while st.current != me {
            st = self.cv.wait(st).unwrap();
            Self::abort_if_failed(&st);
        }
    }

    fn register(&self) -> usize {
        let mut st = self.st.lock().unwrap();
        st.threads.push(Run::Active);
        st.threads.len() - 1
    }

    /// Blocks `me` until `target` finishes (model-level join).
    fn join_on(&self, me: usize, target: usize) {
        let mut st = self.st.lock().unwrap();
        Self::abort_if_failed(&st);
        if st.threads[target] == Run::Done {
            return;
        }
        st.threads[me] = Run::Joining(target);
        match Self::decide(&mut st) {
            Some(next) => st.current = next,
            None => {
                st.failed = true;
                self.cv.notify_all();
                panic!("loom model deadlock: every thread is blocked in join");
            }
        }
        self.cv.notify_all();
        while st.current != me {
            st = self.cv.wait(st).unwrap();
            Self::abort_if_failed(&st);
        }
    }

    /// Marks `me` finished, wakes its joiners, and hands the token on.
    fn finish(&self, me: usize) {
        let mut st = self.st.lock().unwrap();
        st.threads[me] = Run::Done;
        for i in 0..st.threads.len() {
            if st.threads[i] == Run::Joining(me) {
                st.threads[i] = Run::Active;
            }
        }
        if let Some(next) = Self::decide(&mut st) {
            st.current = next;
        } else {
            // Everyone done (or everyone blocked — impossible once joiners
            // of `me` were woken, and other joins deadlock in join_on).
            st.current = usize::MAX;
        }
        self.cv.notify_all();
    }

    /// Records the first panic and releases every parked thread; they abort
    /// at their next decision point.
    fn fail(&self, payload: Box<dyn std::any::Any + Send>, me: usize) {
        let mut st = self.st.lock().unwrap();
        st.failed = true;
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
        st.threads[me] = Run::Done;
        self.cv.notify_all();
    }

    /// Controller side: wait until every registered thread is Done.
    fn wait_all(&self) {
        let mut st = self.st.lock().unwrap();
        while !st.threads.iter().all(|r| *r == Run::Done) {
            if st.failed
                && st
                    .threads
                    .iter()
                    .all(|r| matches!(r, Run::Done | Run::Joining(_)))
            {
                // Joiners of a failed run never get woken by finish(); they
                // abort via the failed flag, but belt-and-braces: release.
                self.cv.notify_all();
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// Advances DFS to the next unexplored schedule: bump the deepest decision
/// that still has an untried sibling, drop everything after it.
fn next_prefix(decisions: &[(usize, usize)]) -> Option<Vec<usize>> {
    for k in (0..decisions.len()).rev() {
        let (choice, n) = decisions[k];
        if choice + 1 < n {
            let mut p: Vec<usize> = decisions[..k].iter().map(|&(c, _)| c).collect();
            p.push(choice + 1);
            return Some(p);
        }
    }
    None
}

/// Runs `f` under every interleaving of its threads' atomic operations.
///
/// `f` is re-invoked once per schedule; build all shared state inside it.
/// Panics (assertion failures) on any model thread are re-raised from here
/// after printing the decision prefix of the failing schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom shim: more than {MAX_EXECUTIONS} schedules; shrink the modelled test"
        );
        let sched = Arc::new(Scheduler::new(prefix.clone()));

        let s0 = Arc::clone(&sched);
        let f0 = Arc::clone(&f);
        let root = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s0), 0)));
            match catch_unwind(AssertUnwindSafe(|| f0())) {
                Ok(()) => s0.finish(0),
                Err(p) => s0.fail(p, 0),
            }
            CTX.with(|c| *c.borrow_mut() = None);
        });

        sched.wait_all();
        root.join().expect("loom root thread wrapper never panics");

        let mut st = sched.st.lock().unwrap();
        if let Some(payload) = st.panic.take() {
            let schedule: Vec<usize> = st.decisions.iter().map(|&(c, _)| c).collect();
            eprintln!("loom shim: schedule {schedule:?} failed after {executions} execution(s)");
            resume_unwind(payload);
        }
        match next_prefix(&st.decisions) {
            Some(p) => prefix = p,
            None => return,
        }
    }
}

pub mod thread {
    use super::*;

    /// Model-aware `std::thread::spawn`: the child is a real OS thread, but
    /// it parks until a scheduling decision starts it, and every one of its
    /// atomic operations is a decision point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, _me) = ctx().expect("loom::thread::spawn outside loom::model");
        let id = sched.register();
        let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));

        let r2 = Arc::clone(&result);
        let s2 = Arc::clone(&sched);
        let os = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s2), id)));
            s2.wait_turn(id);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *r2.lock().unwrap() = Some(Ok(v));
                    s2.finish(id);
                }
                Err(p) => {
                    *r2.lock().unwrap() = Some(Err(Box::new("loom model thread panicked")));
                    s2.fail(p, id);
                }
            }
            CTX.with(|c| *c.borrow_mut() = None);
        });

        JoinHandle {
            id,
            sched,
            result,
            os: Some(os),
        }
    }

    /// A pure decision point (maps to real loom's `yield_now`).
    pub fn yield_now() {
        super::sched_point();
    }

    pub struct JoinHandle<T> {
        id: usize,
        sched: Arc<Scheduler>,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Model-level join: blocks (as a scheduling decision) until the
        /// target thread finishes, then reaps the OS thread.
        pub fn join(mut self) -> std::thread::Result<T> {
            let (sched, me) = ctx().expect("loom JoinHandle::join outside loom::model");
            debug_assert!(Arc::ptr_eq(&sched, &self.sched));
            sched.join_on(me, self.id);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            self.result
                .lock()
                .unwrap()
                .take()
                .expect("joined thread stored its result")
        }
    }
}

pub mod sync {
    pub use std::sync::Arc;

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// Atomics are accepted with their stated orderings but explored
        /// under sequential consistency (see crate docs).
        macro_rules! model_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    pub fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $int {
                        crate::sched_point();
                        self.0.load(order)
                    }

                    pub fn store(&self, val: $int, order: Ordering) {
                        crate::sched_point();
                        self.0.store(val, order)
                    }

                    pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                        crate::sched_point();
                        self.0.fetch_add(val, order)
                    }

                    pub fn fetch_or(&self, val: $int, order: Ordering) -> $int {
                        crate::sched_point();
                        self.0.fetch_or(val, order)
                    }

                    pub fn swap(&self, val: $int, order: Ordering) -> $int {
                        crate::sched_point();
                        self.0.swap(val, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        crate::sched_point();
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    pub fn compare_exchange_weak(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        // Strong under the shim: spurious failures would
                        // multiply schedules without adding coverage for
                        // the retry loops under test.
                        self.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// A fence is a pure decision point under sequential consistency.
        pub fn fence(order: Ordering) {
            crate::sched_point();
            std::sync::atomic::fence(order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// The canonical lost-update race: two unsynchronised load-then-store
    /// increments. The model must find the interleaving where one update is
    /// lost — i.e. observe final values {1, 2}, not just 2.
    #[test]
    fn finds_lost_update() {
        let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        super::model(move || {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        let v = n.load(Ordering::Relaxed);
                        n.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            seen2.lock().unwrap().insert(n.load(Ordering::Relaxed));
        });
        assert_eq!(
            *seen.lock().unwrap(),
            HashSet::from([1, 2]),
            "exhaustive exploration must hit both the racy and the clean schedule"
        );
    }

    /// fetch_add is atomic: no schedule may lose an increment.
    #[test]
    fn fetch_add_never_loses() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 3);
        });
    }

    /// Exploration is exhaustive over op orders: with two threads doing one
    /// store each of distinct values, both final values are observed.
    #[test]
    fn explores_both_store_orders() {
        let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen2 = Arc::clone(&seen);
        super::model(move || {
            let n = Arc::new(AtomicU64::new(0));
            let a = {
                let n = Arc::clone(&n);
                super::thread::spawn(move || n.store(1, Ordering::Relaxed))
            };
            let b = {
                let n = Arc::clone(&n);
                super::thread::spawn(move || n.store(2, Ordering::Relaxed))
            };
            a.join().unwrap();
            b.join().unwrap();
            seen2.lock().unwrap().insert(n.load(Ordering::Relaxed));
        });
        assert_eq!(*seen.lock().unwrap(), HashSet::from([1, 2]));
    }

    /// A model assertion failure propagates out of model().
    #[test]
    #[should_panic(expected = "deliberate")]
    fn panics_propagate() {
        super::model(|| {
            let h = super::thread::spawn(|| {});
            h.join().unwrap();
            panic!("deliberate");
        });
    }
}
