//! Vendored stand-in for `criterion`, implementing the API surface this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::default()` with builder knobs, benchmark groups with
//! throughput annotation, `bench_function`/`bench_with_input`,
//! `BenchmarkId::from_parameter`, and `black_box`.
//!
//! Measurement is a plain warm-up + timed-loop mean over
//! `std::time::Instant` — no statistical analysis, HTML reports, or
//! command-line filtering. Good enough to compare configurations of the
//! same code built the same way, which is what the obs-overhead and
//! ablation benches need.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&cfg, id, None, f);
        self
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(self.criterion, &full, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(self.criterion, &full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measure in one timed batch sized to the measurement budget.
        let target = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64).max(10);
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.iters = target;
        self.mean_ns = elapsed.as_nanos() as f64 / target as f64;
    }
}

fn run_benchmark<F>(cfg: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        mean_ns: 0.0,
        iters: 0,
        warm_up_time: cfg.warm_up_time,
        measurement_time: cfg.measurement_time,
    };
    f(&mut b);
    let mut line = format!("{id:<55} time: {:>12} /iter", format_ns(b.mean_ns));
    match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            let rate = n as f64 * 1e9 / b.mean_ns;
            line.push_str(&format!("   thrpt: {:>14}/s", format_count(rate)));
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            let rate = n as f64 * 1e9 / b.mean_ns;
            line.push_str(&format!("   thrpt: {:>12}B/s", format_count(rate)));
        }
        _ => {}
    }
    println!("{line}   ({} iters)", b.iters);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_count(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_function("incr", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
