//! Vendored stand-in for `proptest`, covering the API surface this
//! workspace uses: the `proptest!` test macro, `Strategy` with `prop_map`,
//! integer-range / tuple / `collection::vec` / `any::<T>()` / `Just` /
//! `prop_oneof!` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! generated case), and case generation is seeded deterministically from
//! the test function's name, so runs are reproducible without a persistence
//! file.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng as _, SeedableRng as _};

    /// Deterministic per-test RNG handed to strategies.
    pub struct TestRng {
        pub(crate) inner: SmallRng,
    }

    impl TestRng {
        /// Seeds from an FNV-1a hash of the test name: stable across runs,
        /// distinct per test.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }
    }

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe (`prop_map` is `Sized`-gated) so `prop_oneof!` can mix
    /// heterogeneous strategies behind `dyn Strategy`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.inner.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::{Strategy, TestRng};
    use rand::{Rng as _, Standard};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner.gen()
        }
    }

    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for AnyStrategy<T> {}

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod bool {
    use std::marker::PhantomData;

    use crate::arbitrary::AnyStrategy;

    /// Any boolean, uniformly.
    pub const ANY: AnyStrategy<::core::primitive::bool> = AnyStrategy(PhantomData);
}

pub mod collection {
    use rand::Rng as _;

    use crate::strategy::{Strategy, TestRng};

    /// Length bound for [`vec`]: built from `a..b`, `a..=b`, or an exact
    /// `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Subset of proptest's config: the number of cases per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Namespace mirror so `prop::bool::ANY`-style paths from
/// `proptest::prelude::*` resolve.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Discards the current case (moves to the next one) when the condition
/// does not hold. Expands to `continue` targeting the case loop generated
/// by [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(__options)
    }};
}

/// Declares property tests: each `fn` runs its body once per generated
/// case, with every `pat in strategy` binding drawn fresh.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::strategy::TestRng::from_name(::core::stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2u8), (0u8..4).prop_map(|x| x * 10)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            v in crate::collection::vec((0u64..8, prop::bool::ANY), 2..5)
        ) {
            prop_assert!((2..5).contains(&v.len()));
            for (w, _) in v {
                prop_assert!(w < 8);
            }
        }

        #[test]
        fn oneof_and_assume(x in small(), flag in any::<bool>()) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || x.is_multiple_of(10), "x={x} flag={flag}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::strategy::TestRng::from_name("t");
        let mut b = crate::strategy::TestRng::from_name("t");
        let s = crate::collection::vec(0u64..100, 3..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
