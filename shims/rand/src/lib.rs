//! Vendored stand-in for the `rand` 0.8 API surface this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over integer
//! ranges, and `Rng::gen_bool`.
//!
//! The generator is splitmix64 — statistically solid for workload/test
//! traffic, deterministic for a given seed, and dependency-free. Streams
//! differ from the real `rand::rngs::SmallRng` (xoshiro), which only
//! matters if exact historical traces were recorded, and none are.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random from an RNG (the shim's equivalent
/// of `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = rng.next_u64() as u128 * span as u128;
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable PRNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avalanche the seed before using it as splitmix state. Raw
            // seeds that differ by a multiple of the splitmix increment
            // would otherwise produce shifted copies of the same stream
            // (callers commonly derive per-thread seeds by XOR/ADD with
            // the golden-ratio constant, which is the increment itself).
            let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: z ^ (z >> 31),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..=8u64);
            assert!((3..=8).contains(&x));
            let y = rng.gen_range(0..26u8);
            assert!(y < 26);
            let z: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
