//! Vendored stand-in for `serde`, providing just the data model this
//! workspace uses: `#[derive(Serialize, Deserialize)]` over structs and
//! enums of integers, floats, strings, vectors, options, fixed arrays, and
//! other derived types.
//!
//! Instead of serde's visitor architecture, both traits go through a single
//! in-memory [`Value`] tree. `serde_json` (the sibling shim) renders and
//! parses that tree with the same JSON encoding real serde_json would
//! produce for these types (externally-tagged enums, newtype structs as
//! their inner value), so on-disk artifacts stay compatible.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Generic self-describing value: the interchange point between the
/// `Serialize`/`Deserialize` traits and concrete formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON objects preserve field order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field in a map value; absent keys read as `Null` so that
    /// `Option<T>` fields deserialize to `None` and required fields produce
    /// a type error naming the field.
    pub fn field(&self, key: &str) -> &Value {
        match self {
            Value::Map(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

/// Serialization/deserialization error with a breadcrumb path.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Prefixes the error with a location breadcrumb (`Report.findings: …`).
    pub fn ctx(mut self, loc: &str) -> Self {
        self.msg = format!("{loc}: {}", self.msg);
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips as itself, so schema-agnostic consumers (e.g.
// `predator bench-diff`'s generic path) can deserialize arbitrary JSON
// without naming a concrete type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", type_name(got)))
}

// ---- primitives ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(unexpected("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-character string", other)),
        }
    }
}

// ---- compound types ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq().ok_or_else(|| unexpected("sequence", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        parsed.map(|v| v.try_into().expect("length checked above"))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| unexpected("sequence", v))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}", items.len())));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + fmt::Display + Ord, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| unexpected("map", v))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.ctx(k))?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(5)).unwrap(), Some(5));
    }

    #[test]
    fn missing_map_key_reads_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.field("a"), &Value::U64(1));
        assert_eq!(v.field("b"), &Value::Null);
    }

    #[test]
    fn signed_serializes_nonnegative_as_u64() {
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
    }

    #[test]
    fn fixed_array_roundtrip() {
        let a: [Option<u8>; 2] = [Some(1), None];
        let v = a.to_value();
        assert_eq!(<[Option<u8>; 2]>::from_value(&v).unwrap(), a);
    }
}
