//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment is offline). Supports the shapes this workspace
//! actually derives on: non-generic named structs, tuple structs, and enums
//! with unit / tuple / struct variants. Generated code targets the shim's
//! `Value`-tree data model and mirrors serde's externally-tagged JSON
//! encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing ----

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips leading attributes (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if matches!(it.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    it.next();
                }
            }
            _ => break,
        }
    }
}

fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match (kw.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::TupleStruct {
                name,
                arity: count_top_level(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        (_, other) => Err(format!("unsupported {kw} body for `{name}`: {other:?}")),
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Types are
/// skipped structurally: brackets/parens arrive as atomic groups, and `<>`
/// nesting is tracked so only top-level commas split fields.
fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected field name, got `{tt}`"));
        };
        fields.push(id.to_string());
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{id}`, got {other:?}")),
        }
        let mut depth = 0i64;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Number of top-level comma-separated items in a token stream.
fn count_top_level(ts: TokenStream) -> usize {
    let mut n = 0;
    let mut depth = 0i64;
    let mut pending = false;
    for tt in ts {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                n += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        n += 1;
    }
    n
}

fn parse_variants(ts: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected variant name, got `{tt}`"));
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level(g.stream());
                it.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                it.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push((id.to_string(), shape));
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        for tt in it.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

// ---- code generation ----

fn gen_serialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Map(::std::vec![{entries}])\
                     }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity: 1 } => {
            // Newtype struct: serializes as its inner value (serde-compatible).
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Serialize::to_value(&self.0)\
                     }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Seq(::std::vec![{items}])\
                     }}\
                 }}"
            )
            .unwrap();
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}),\
                             ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({v:?}),\
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                            binds.join(",")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(",");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}),\
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v}{{{binds}}} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({v:?}),\
                                 ::serde::Value::Map(::std::vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
            .unwrap();
        }
    }
    out
}

fn gen_deserialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field({f:?}))\
                             .map_err(|e| e.ctx(\"{name}.{f}\"))?,"
                    )
                })
                .collect();
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         if __v.as_map().is_none() {{\
                             return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"expected map for {name}\"));\
                         }}\
                         ::std::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity: 1 } => {
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok({name}(\
                             ::serde::Deserialize::from_value(__v)\
                                 .map_err(|e| e.ctx(\"{name}\"))?))\
                     }}\
                 }}"
            )
            .unwrap();
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&__seq[{i}])\
                             .map_err(|e| e.ctx(\"{name}.{i}\"))?,"
                    )
                })
                .collect();
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         let __seq = __v.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence for {name}\"))?;\
                         if __seq.len() != {arity} {{\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple length for {name}\"));\
                         }}\
                         ::std::result::Result::Ok({name}({items}))\
                     }}\
                 }}"
            )
            .unwrap();
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__inner)\
                                 .map_err(|e| e.ctx(\"{name}::{v}\"))?)),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: String = (0..*arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(&__seq[{i}])\
                                         .map_err(|e| e.ctx(\"{name}::{v}.{i}\"))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => {{\
                                 let __seq = __inner.as_seq().ok_or_else(|| \
                                     ::serde::Error::custom(\
                                         \"expected sequence for {name}::{v}\"))?;\
                                 if __seq.len() != {arity} {{\
                                     return ::std::result::Result::Err(\
                                         ::serde::Error::custom(\
                                             \"wrong tuple length for {name}::{v}\"));\
                                 }}\
                                 ::std::result::Result::Ok({name}::{v}({items}))\
                             }},"
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.field({f:?}))\
                                         .map_err(|e| e.ctx(\"{name}::{v}.{f}\"))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"
                        ))
                    }
                })
                .collect();
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         match __v {{\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::Error::custom(::std::format!(\
                                         \"unknown variant `{{__other}}` of {name}\"))),\
                             }},\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\
                                 let (__tag, __inner) = &__entries[0];\
                                 let _ = __inner;\
                                 match __tag.as_str() {{\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::Error::custom(::std::format!(\
                                             \"unknown variant `{{__other}}` of {name}\"))),\
                                 }}\
                             }},\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::custom(\
                                     \"expected externally tagged variant of {name}\")),\
                         }}\
                     }}\
                 }}"
            )
            .unwrap();
        }
    }
    out
}
