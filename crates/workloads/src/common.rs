//! Shared workload infrastructure: native shared memory, thread spawning,
//! timing, and deterministic input generation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Native shared word array for the uninstrumented runs.
///
/// Real false sharing requires real concurrent writes to one cache line.
/// Plain `&mut` aliasing would be UB, so the arena is `AtomicU64` words
/// accessed with `Relaxed` ordering — on x86-64 these compile to ordinary
/// `mov`s, preserving exactly the coherence traffic the experiment measures.
pub struct SharedWords {
    words: Box<[AtomicU64]>,
}

impl SharedWords {
    /// Allocates `n` zeroed words. The backing allocation is made with
    /// 64-byte units in mind; index 0 is cache-line aligned on any allocator
    /// returning 16-byte alignment *only modulo placement*, so experiments
    /// that depend on alignment must go through [`SharedWords::aligned`].
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        SharedWords {
            words: v.into_boxed_slice(),
        }
    }

    /// Allocates at least `n` words such that the *returned base index* is
    /// cache-line (64-byte) aligned, plus `offset_bytes` (multiple of 8).
    /// Returns `(arena, base_index)`; use `base_index + i` for element `i`.
    pub fn aligned(n: usize, offset_bytes: usize) -> (Self, usize) {
        assert_eq!(offset_bytes % 8, 0, "offset must be word-aligned");
        // Overallocate one line so we can slide to alignment.
        let arena = SharedWords::new(n + 16);
        let addr = arena.words.as_ptr() as usize;
        let misalign = (64 - addr % 64) % 64;
        let base = misalign / 8 + offset_bytes / 8;
        (arena, base)
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Relaxed load of word `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to word `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed)
    }

    /// Relaxed read-modify-write (`+= v`) on word `i`.
    ///
    /// Deliberately a load+store pair, not `fetch_add`: the applications the
    /// paper studies update thread-private fields with plain `+=`, and a
    /// locked RMW would dominate the timing and mask the false-sharing
    /// effect under study.
    #[inline]
    pub fn add(&self, i: usize, v: u64) {
        let cur = self.words[i].load(Ordering::Relaxed);
        self.words[i].store(cur.wrapping_add(v), Ordering::Relaxed);
    }
}

/// Runs `f(0..n)` on `n` scoped threads and waits for all of them.
pub fn run_threads<F: Fn(usize) + Sync>(n: usize, f: F) {
    std::thread::scope(|s| {
        for t in 0..n {
            let f = &f;
            s.spawn(move || f(t));
        }
    });
}

/// Times a closure.
pub fn time<F: FnOnce()>(f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Deterministic per-thread RNG: same (seed, thread) → same stream.
pub fn thread_rng(seed: u64, thread: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ ((thread as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Generates `n` deterministic pseudo-random `(x, y)` i64 point pairs in
/// a small range (the linear_regression / kmeans input shape).
pub fn gen_points(seed: u64, n: usize) -> Vec<(i64, i64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0..256), rng.gen_range(0..256)))
        .collect()
}

/// Generates deterministic lowercase "words" of 3–8 chars (word_count /
/// reverse_index input shape).
pub fn gen_words(seed: u64, n: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(3..=8);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_words_basic_ops() {
        let w = SharedWords::new(8);
        assert_eq!(w.len(), 8);
        w.store(3, 7);
        w.add(3, 5);
        assert_eq!(w.load(3), 12);
        assert_eq!(w.load(0), 0);
    }

    #[test]
    fn aligned_base_is_line_aligned_plus_offset() {
        for offset in [0usize, 8, 24, 56] {
            let (w, base) = SharedWords::aligned(64, offset);
            let addr = w.words.as_ptr() as usize + base * 8;
            assert_eq!(addr % 64, offset % 64, "offset {offset}");
        }
    }

    #[test]
    fn run_threads_runs_each_index_once() {
        let hits = SharedWords::new(64);
        run_threads(8, |t| hits.add(t * 8, 1));
        for t in 0..8 {
            assert_eq!(hits.load(t * 8), 1);
        }
    }

    #[test]
    fn deterministic_inputs() {
        assert_eq!(gen_points(1, 10), gen_points(1, 10));
        assert_ne!(gen_points(1, 10), gen_points(2, 10));
        assert_eq!(gen_words(1, 10), gen_words(1, 10));
        assert!(gen_words(1, 100).iter().all(|w| (3..=8).contains(&w.len())));
        let mut a = thread_rng(1, 0);
        let mut b = thread_rng(1, 0);
        let mut c = thread_rng(1, 1);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let _ = c.gen::<u64>();
    }

    #[test]
    fn time_measures_something() {
        let d = time(|| {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }
}
