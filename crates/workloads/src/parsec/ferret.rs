//! The `ferret` benchmark — no false sharing, high tracking overhead.
//!
//! Similarity-search pipeline: each stage thread maintains busy private
//! feature buffers (the Figure 7 overhead profile, like bodytrack) and
//! passes work along a line-padded ring of stage queues. Queue slots are
//! padded, so the hand-off is true sharing on a single word per slot at
//! most, not false sharing.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Feature vector length per query (words).
const FEATURES: usize = 64;

/// The `ferret` workload.
pub struct Ferret;

impl Workload for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let _main = s.register_thread();
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // Hand-off slots between stages, each owner-allocated (the real
        // pipeline embeds the queue in each stage's own struct).
        let queues: Vec<u64> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, 64, Callsite::here())
                    .expect("stage queue")
                    .start
            })
            .collect();
        let features: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (FEATURES * 8) as u64, Callsite::here())
                    .expect("features")
            })
            .collect();
        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();

        let queries = (cfg.iters / FEATURES as u64).max(1);
        for q in 0..queries {
            for (t, &tid) in tids.iter().enumerate() {
                // Stage work: extract + rank features into the private buffer.
                let mut acc = 0u64;
                for f in 0..FEATURES as u64 {
                    let v: u64 = rngs[t].gen_range(0..1 << 16);
                    let a = features[t].start + f * 8;
                    let cur = s.read::<u64>(tid, a);
                    let nv = cur.wrapping_mul(13).wrapping_add(v);
                    s.write::<u64>(tid, a, nv);
                    acc = acc.wrapping_add(nv);
                }
                // Hand the digest to the next stage's padded slot.
                s.write::<u64>(tid, queues[t], acc ^ q);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let queries = (cfg.iters / FEATURES as u64).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                let mut features = vec![0u64; FEATURES * 32];
                for _ in 0..queries {
                    for f in features.iter_mut() {
                        *f = f.wrapping_mul(13).wrapping_add(rng.gen_range(0..1 << 16));
                    }
                }
                std::hint::black_box(&features);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_but_busy_tracking() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 2_048,
            ..WorkloadConfig::quick()
        };
        Ferret.run_tracked(&s, &cfg);
        let r = s.report();
        assert!(!r.has_false_sharing(), "{r}");
        assert!(s.runtime().tracked_lines() > 8);
    }

    #[test]
    fn native_run_completes() {
        assert!(Ferret.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
