//! The `fluidanimate` benchmark — no false sharing.
//!
//! Grid-partitioned particle simulation: each worker updates the cells of
//! its own spatial partition; borders are handled by a second, serialized
//! pass (the real benchmark uses border locks). Cell records are padded to
//! a full line, so partitions never share lines.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Cells per thread partition; each cell is one 64-byte line
/// (density, vx, vy, vz + padding).
const CELLS: usize = 64;

/// The `fluidanimate` workload.
pub struct FluidAnimate;

impl Workload for FluidAnimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        // One ghost cell between partitions (the real benchmark keeps ghost
        // planes at partition borders), so no two partitions have updatable
        // cells within a cache line — or a doubled/remapped virtual line.
        let part = CELLS + 2;
        let grid = s
            .malloc(main, (cfg.threads * part * 64) as u64, Callsite::here())
            .expect("grid");
        let border_stats = s
            .malloc(main, 64, Callsite::here())
            .expect("border stats")
            .start;
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // Each worker publishes its border densities into its own padded
        // slot (owner-allocated: per-thread segments keep them line-apart);
        // the main thread reduces from the slots, never touching grid lines
        // other threads write — the benchmark's ghost-plane protocol.
        let border_out: Vec<u64> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, 64, Callsite::here())
                    .expect("border slot")
                    .start
            })
            .collect();
        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();

        let steps = (cfg.iters / CELLS as u64).max(1);
        for _step in 0..steps {
            // Density + velocity update within each partition (cells
            // 1..=CELLS of each part; cells 0 and CELLS+1 are ghosts).
            for c in 0..CELLS as u64 {
                for (t, &tid) in tids.iter().enumerate() {
                    let cell = grid.start + (t as u64 * part as u64 + 1 + c) * 64;
                    let kick: u64 = rngs[t].gen_range(0..128);
                    for field in 0..4u64 {
                        let a = cell + field * 8;
                        let cur = s.read::<u64>(tid, a);
                        s.write::<u64>(tid, a, cur.wrapping_add(kick + field));
                    }
                }
            }
            // Border exchange: each worker publishes its first and last cell
            // densities into its own slot…
            for (t, &tid) in tids.iter().enumerate() {
                let first = grid.start + (t as u64 * part as u64 + 1) * 64;
                let last = grid.start + ((t as u64 + 1) * part as u64 - 2) * 64;
                let f = s.read::<u64>(tid, first);
                let l = s.read::<u64>(tid, last);
                s.write::<u64>(tid, border_out[t], f);
                s.write::<u64>(tid, border_out[t] + 8, l);
            }
            // …and the main thread reduces from the slots.
            for &slot in &border_out {
                let f = s.read::<u64>(main, slot);
                let l = s.read::<u64>(main, slot + 8);
                let cur = s.read::<u64>(main, border_stats);
                s.write::<u64>(main, border_stats, cur.wrapping_add(f / 2 + l / 2));
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let grid = SharedWords::new(cfg.threads * CELLS * 8 + 16);
        let steps = (cfg.iters / CELLS as u64).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                for _ in 0..steps {
                    for c in 0..CELLS {
                        let cell = (t * CELLS + c) * 8;
                        let kick: u64 = rng.gen_range(0..128);
                        for field in 0..4 {
                            grid.add(cell + field, kick + field as u64);
                        }
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 512,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&FluidAnimate, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn native_run_completes() {
        assert!(FluidAnimate.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
