//! The `dedup` benchmark — no false sharing.
//!
//! Pipeline compression with a sharded hash table of chunk fingerprints.
//! Each bucket record (lock word + count + head pointer) is padded to a
//! cache line, so concurrent inserts into different buckets never share.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Hash buckets (each one padded line).
const BUCKETS: usize = 128;

fn fingerprint(chunk: u64) -> u64 {
    chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// The `dedup` workload.
pub struct Dedup;

impl Workload for Dedup {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let table = s
            .malloc(main, (BUCKETS * 64) as u64, Callsite::here())
            .expect("dedup hash table");
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();

        for _i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let chunk: u64 = rngs[t].gen();
                let fp = fingerprint(chunk);
                let bucket = table.start + (fp as usize % BUCKETS) as u64 * 64;
                // Bucket probe: read count, insert fingerprint, bump count.
                let count = s.read::<u64>(tid, bucket);
                s.write::<u64>(tid, bucket + 8 + (count % 6) * 8, fp);
                s.write::<u64>(tid, bucket, count + 1);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let table = SharedWords::new(BUCKETS * 8 + 16);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                for _ in 0..cfg.iters {
                    let fp = fingerprint(rng.gen());
                    let bucket = (fp as usize % BUCKETS) * 8;
                    let count = table.load(bucket);
                    table.store(bucket + 1 + (count % 6) as usize, fp);
                    table.store(bucket, count + 1);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn padded_buckets_report_no_false_sharing() {
        // Different threads do hit the same buckets occasionally (true
        // sharing on the count word), but no cross-bucket false sharing —
        // buckets are line-padded. At paper thresholds nothing is reported.
        let r = run_and_report(&Dedup, DetectorConfig::paper(), &WorkloadConfig::quick());
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn collisions_are_true_sharing_not_false() {
        // At ultra-sensitive thresholds the shared bucket counters may
        // surface — but must classify as true sharing, never false.
        let r = run_and_report(
            &Dedup,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn native_run_completes() {
        assert!(Dedup.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
