//! PARSEC benchmark suite analogues (Table 1, lower half).
//!
//! `streamcluster` carries both paper findings (the `work_mem` padding bug
//! at line 985 and the `switch_membership` bool array at line 1907); the
//! rest are problem-free workloads with the access-volume profiles Figure 7
//! attributes to them. `facesim` and `canneal` are absent — the paper could
//! not build them either.

pub mod blackscholes;
pub mod bodytrack;
pub mod dedup;
pub mod ferret;
pub mod fluidanimate;
pub mod streamcluster;
pub mod swaptions;
