//! The `streamcluster` benchmark — two distinct false-sharing findings
//! (Table 1 rows `streamcluster.cpp:985` and `streamcluster.cpp:1907`).
//!
//! **Site 985 — `work_mem`:** per-thread scratch areas padded with the
//! benchmark's own `CACHE_LINE` macro, whose default is **32 bytes** —
//! smaller than the real 64-byte line, so two threads' scratch areas share
//! every other line. Fixing the macro to 64 bytes gave the paper ~7.5%.
//!
//! **Site 1907 — `switch_membership`:** a `bool` array with one flag per
//! point; threads own contiguous point ranges and set flags as points
//! switch clusters. 64 one-byte flags per cache line means the boundary
//! lines between thread ranges are written by two threads. Widening the
//! element to `long` (8 bytes) cuts the per-line flag count — and with it
//! the sharing traffic — 8×; the paper measured ~4.8%. This is a
//! *reduction*, not an elimination: the detector distinguishes the two by
//! invalidation volume against its reporting threshold.

use std::time::Duration;

use predator_core::{Callsite, Frame, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};
use rand::Rng;

/// Scratch doubles per thread in `work_mem`.
const WORK_DOUBLES: usize = 3;
/// Points per thread range in the membership phase.
const RANGE: usize = 512;

/// Per-thread `work_mem` stride in bytes: the benchmark rounds up to its
/// `CACHE_LINE` macro — 32 in the broken default, 64 when fixed.
fn work_stride(variant: Variant) -> u64 {
    let pad = match variant {
        Variant::Broken => 32,
        Variant::Fixed => 64,
    };
    ((WORK_DOUBLES * 8) as u64).div_ceil(pad) * pad
}

/// Membership flag element size: `bool` broken, `long` fixed.
fn flag_size(variant: Variant) -> u64 {
    match variant {
        Variant::Broken => 1,
        Variant::Fixed => 8,
    }
}

/// The `streamcluster` workload (both sites run in sequence).
pub struct StreamCluster;

impl Workload for StreamCluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Observed
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();

        // ---- Site 985: work_mem with CACHE_LINE padding. ----
        let stride = work_stride(cfg.variant);
        let work_mem = s
            .malloc(
                main,
                cfg.threads as u64 * stride,
                Callsite::from_frames(vec![Frame::new("streamcluster.cpp", 985)]),
            )
            .expect("work_mem");
        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let base = work_mem.start + t as u64 * stride;
                // pgain-style scratch updates: lower/gl_lower cost cells.
                for d in 0..WORK_DOUBLES as u64 {
                    let cur = s.read::<u64>(tid, base + d * 8);
                    s.write::<u64>(tid, base + d * 8, cur.wrapping_add(i ^ d));
                }
            }
        }

        // ---- Site 1907: switch_membership flags. ----
        let fsz = flag_size(cfg.variant);
        let membership = s
            .malloc(
                main,
                cfg.threads as u64 * RANGE as u64 * fsz,
                Callsite::from_frames(vec![Frame::new("streamcluster.cpp", 1907)]),
            )
            .expect("switch_membership");
        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();
        for _ in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                // A random point in this thread's range switches membership.
                let p = rngs[t].gen_range(0..RANGE) as u64;
                let addr = membership.start + (t as u64 * RANGE as u64 + p) * fsz;
                match fsz {
                    1 => s.write::<u8>(tid, addr, 1),
                    _ => s.write::<u64>(tid, addr, 1),
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let stride_w = (work_stride(cfg.variant) / 8) as usize;
        let (work, base) = SharedWords::aligned(cfg.threads * stride_w + 16, 0);
        // Native membership uses one byte per flag regardless; the stride of
        // thread ranges models bool vs long density.
        let per_flag_words = flag_size(cfg.variant) as usize; // 1→packed, 8→spread
        let memb = SharedWords::new(cfg.threads * RANGE * per_flag_words / 8 + 64);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                let wbase = base + t * stride_w;
                for i in 0..cfg.iters {
                    for d in 0..WORK_DOUBLES {
                        work.add(wbase + d, i ^ d as u64);
                    }
                    let p = rng.gen_range(0..RANGE);
                    let bit_index = (t * RANGE + p) * per_flag_words;
                    memb.store(bit_index / 8, 1);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    /// Thresholded like a real run: membership traffic must clear a bar the
    /// fixed (8× less shared) variant misses.
    fn det() -> DetectorConfig {
        DetectorConfig {
            report_threshold: 60,
            ..DetectorConfig::sensitive()
        }
    }

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            iters: 2_000,
            ..WorkloadConfig::quick()
        }
    }

    #[test]
    fn broken_variant_reports_both_sites() {
        let r = run_and_report(&StreamCluster, det(), &cfg());
        assert!(r.has_observed_false_sharing(), "{r}");
        let texts: Vec<String> = r.false_sharing().map(|f| f.to_string()).collect();
        assert!(
            texts.iter().any(|t| t.contains("streamcluster.cpp:985")),
            "work_mem site missing: {texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("streamcluster.cpp:1907")),
            "switch_membership site missing: {texts:?}"
        );
    }

    #[test]
    fn fixed_variant_shows_no_observed_false_sharing() {
        // The paper's fix (CACHE_LINE = 64, long flags) eliminates sharing
        // on the current hardware's 64-byte lines.
        let r = run_and_report(&StreamCluster, det(), &cfg().with_variant(Variant::Fixed));
        assert!(!r.has_observed_false_sharing(), "{r}");
    }

    #[test]
    fn fixed_variant_still_predicted_latent_for_doubled_lines() {
        // …but PREDATOR's whole point (§3) is that padding to exactly one
        // line is alignment/line-size fragile: with 128-byte lines the
        // 64-byte-strided work_mem areas share again. The detector predicts
        // precisely that residual risk on the "fixed" layout.
        let r = run_and_report(&StreamCluster, det(), &cfg().with_variant(Variant::Fixed));
        assert!(r.has_predicted_false_sharing(), "{r}");
        // And with prediction off (a plain detector), the fixed layout is
        // fully clean — matching what every prior tool would say.
        let mut np = det();
        np.prediction = false;
        let r = run_and_report(&StreamCluster, np, &cfg().with_variant(Variant::Fixed));
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn work_mem_stride_matches_macro_semantics() {
        assert_eq!(work_stride(Variant::Broken), 32, "CACHE_LINE=32 default");
        assert_eq!(work_stride(Variant::Fixed), 64);
    }

    #[test]
    fn native_run_completes() {
        assert!(StreamCluster.run_native(&cfg()).as_nanos() > 0);
    }
}
