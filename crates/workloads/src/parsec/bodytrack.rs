//! The `bodytrack` benchmark — no false sharing, high tracking overhead.
//!
//! The paper notes bodytrack (with ferret) suffers >8× detector overhead
//! despite having no sharing problem: its threads legitimately write large
//! private buffers hard enough that many lines cross the TrackingThreshold
//! and pay for detailed tracking. This analogue reproduces that pressure:
//! per-thread particle-weight buffers rewritten every frame.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Particles per thread (each an 8-byte weight).
const PARTICLES: usize = 256;

/// The `bodytrack` workload.
pub struct BodyTrack;

impl Workload for BodyTrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let _main = s.register_thread();
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // Each thread owns its particle buffer (allocated by itself → the
        // allocator guarantees line isolation).
        let buffers: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (PARTICLES * 8) as u64, Callsite::here())
                    .expect("particles")
            })
            .collect();

        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();
        let frames = (cfg.iters / PARTICLES as u64).max(1);
        for _frame in 0..frames {
            // Weight update pass: every particle rewritten (heavy writes).
            for p in 0..PARTICLES as u64 {
                for (t, &tid) in tids.iter().enumerate() {
                    let noise: u64 = rngs[t].gen_range(0..1 << 20);
                    let addr = buffers[t].start + p * 8;
                    let cur = s.read::<u64>(tid, addr);
                    s.write::<u64>(tid, addr, cur.wrapping_mul(31).wrapping_add(noise));
                }
            }
            // Normalization pass: read + rewrite.
            for p in 0..PARTICLES as u64 {
                for (t, &tid) in tids.iter().enumerate() {
                    let addr = buffers[t].start + p * 8;
                    let w = s.read::<u64>(tid, addr);
                    s.write::<u64>(tid, addr, w >> 1);
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let frames = (cfg.iters / PARTICLES as u64).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                let mut weights = vec![0u64; PARTICLES * 64];
                for _ in 0..frames {
                    for w in weights.iter_mut() {
                        *w = w.wrapping_mul(31).wrapping_add(rng.gen_range(0..1 << 20));
                    }
                    for w in weights.iter_mut() {
                        *w >>= 1;
                    }
                }
                std::hint::black_box(&weights);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_but_many_tracked_lines() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 2_048,
            ..WorkloadConfig::quick()
        };
        BodyTrack.run_tracked(&s, &cfg);
        let r = s.report();
        assert!(!r.has_false_sharing(), "{r}");
        // The overhead profile: many lines in detailed tracking.
        assert!(
            s.runtime().tracked_lines() >= 4 * PARTICLES / 8,
            "tracked: {}",
            s.runtime().tracked_lines()
        );
    }

    #[test]
    fn detector_report_stays_empty_at_paper_thresholds() {
        let r = run_and_report(
            &BodyTrack,
            DetectorConfig::paper(),
            &WorkloadConfig {
                iters: 2_048,
                ..WorkloadConfig::quick()
            },
        );
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn native_run_completes() {
        assert!(BodyTrack.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
