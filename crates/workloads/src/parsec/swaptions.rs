//! The `swaptions` benchmark — no false sharing, tiny footprint.
//!
//! Monte-Carlo-ish swaption pricing with one padded result slot per thread.
//! The interesting property for the paper is the *sub-megabyte footprint*:
//! in Figure 9 swaptions shows one of the largest *relative* memory
//! overheads simply because the application allocates almost nothing.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// The `swaptions` workload.
pub struct Swaptions;

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let _main = s.register_thread();
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // One result slot per thread, allocated by its owner: the whole
        // footprint. Owner allocation puts slots in per-thread segments.
        let results: Vec<u64> = tids
            .iter()
            .map(|&tid| s.malloc(tid, 64, Callsite::here()).expect("result").start)
            .collect();

        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();
        for _ in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                // Simulated HJM path step: pure compute, one accumulation.
                let draw: u64 = rngs[t].gen_range(0..1_000);
                let payoff = draw.wrapping_mul(draw) >> 4;
                let slot = results[t];
                let cur = s.read::<u64>(tid, slot);
                s.write::<u64>(tid, slot, cur.wrapping_add(payoff));
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let results = SharedWords::new(cfg.threads * 8 + 16);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                for _ in 0..cfg.iters {
                    let draw: u64 = rng.gen_range(0..1_000);
                    results.add(t * 8, draw.wrapping_mul(draw) >> 4);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let r = run_and_report(
            &Swaptions,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn footprint_is_tiny() {
        let s = Session::with_config(DetectorConfig::sensitive());
        Swaptions.run_tracked(&s, &WorkloadConfig::quick());
        // The swaptions profile: app bytes minuscule vs detector metadata.
        let r = s.report();
        assert!(r.stats.app_live_bytes < 4096, "{}", r.stats.app_live_bytes);
        assert!(r.stats.relative_memory_overhead().unwrap() > 1.0);
    }

    #[test]
    fn native_run_completes() {
        assert!(Swaptions.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
