//! The `blackscholes` benchmark — no false sharing, low overhead.
//!
//! Each worker prices a large contiguous block of options and writes the
//! results into its own span of the output array. Spans are thousands of
//! elements, so interior lines have a single writer; the paper groups
//! blackscholes with the low-overhead workloads of Figure 7.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Options per thread block.
const BLOCK: usize = 1024;

/// Fixed-point Black-Scholes-flavoured kernel: enough arithmetic to look
/// like the real pricing loop, fully deterministic.
fn price(spot: u64, strike: u64, vol: u64) -> u64 {
    let m = spot.wrapping_mul(1_000).wrapping_div(strike.max(1));
    let v = vol.wrapping_mul(vol) / 100 + 1;
    m.wrapping_mul(v) ^ (m >> 3)
}

/// The `blackscholes` workload.
pub struct BlackScholes;

impl Workload for BlackScholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let n = cfg.threads * BLOCK;
        let inputs = s
            .malloc(main, (n * 24) as u64, Callsite::here())
            .expect("options");
        let mut rng = thread_rng(cfg.seed, 0);
        for i in 0..n as u64 {
            s.write_untracked::<u64>(inputs.start + i * 24, rng.gen_range(50..150));
            s.write_untracked::<u64>(inputs.start + i * 24 + 8, rng.gen_range(50..150));
            s.write_untracked::<u64>(inputs.start + i * 24 + 16, rng.gen_range(1..40));
        }
        let prices = s
            .malloc(main, (n * 8) as u64, Callsite::here())
            .expect("prices");

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let reps = (cfg.iters / BLOCK as u64).max(1);
        for _ in 0..reps {
            for i in 0..BLOCK {
                for (t, &tid) in tids.iter().enumerate() {
                    let idx = (t * BLOCK + i) as u64;
                    let spot = s.read::<u64>(tid, inputs.start + idx * 24);
                    let strike = s.read::<u64>(tid, inputs.start + idx * 24 + 8);
                    let vol = s.read::<u64>(tid, inputs.start + idx * 24 + 16);
                    s.write::<u64>(tid, prices.start + idx * 8, price(spot, strike, vol));
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let n = cfg.threads * 65_536;
        let mut rng = thread_rng(cfg.seed, 0);
        let inputs: Vec<(u64, u64, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(50..150),
                    rng.gen_range(50..150),
                    rng.gen_range(1..40),
                )
            })
            .collect();
        let out = SharedWords::new(n);
        let reps = (cfg.iters / 1024).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                for _ in 0..reps {
                    for (i, &(s_, k, v)) in inputs.iter().enumerate().skip(t * 65_536).take(65_536)
                    {
                        out.store(i, price(s_, k, v));
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 1024,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&BlackScholes, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn prices_are_deterministic() {
        assert_eq!(price(100, 100, 20), price(100, 100, 20));
        assert_ne!(price(100, 100, 20), price(120, 100, 20));
    }

    #[test]
    fn native_run_completes() {
        let d = BlackScholes.run_native(&WorkloadConfig {
            iters: 1024,
            threads: 2,
            ..WorkloadConfig::quick()
        });
        assert!(d.as_nanos() > 0);
    }
}
