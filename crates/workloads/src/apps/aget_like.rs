//! aget analogue — clean, tiny footprint.
//!
//! The download accelerator splits a file into per-thread byte ranges;
//! each worker writes its own large contiguous chunk. Chunks are
//! kilobytes, so only the two boundary lines between adjacent chunks are
//! ever shared — and each is written once per run, far below any
//! threshold. aget's other role in the paper is Figure 9's *relative
//! memory overhead* outlier: its footprint is sub-megabyte.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, time};
use crate::{Expectation, Suite, Workload, WorkloadConfig};

/// Bytes per download chunk (per thread).
const CHUNK: usize = 4096;

/// The aget-like workload.
pub struct AgetLike;

impl Workload for AgetLike {
    fn name(&self) -> &'static str {
        "aget"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let file = s
            .malloc(main, (cfg.threads * CHUNK) as u64, Callsite::here())
            .expect("download buffer");
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();

        // "Receive" the file: each worker fills its own range sequentially,
        // `iters` bytes-per-step at a time (8-byte writes).
        let words_per_chunk = (CHUNK / 8) as u64;
        let passes = (cfg.iters / words_per_chunk).max(1);
        for _ in 0..passes {
            for w in 0..words_per_chunk {
                for (t, &tid) in tids.iter().enumerate() {
                    let addr = file.start + (t as u64 * words_per_chunk + w) * 8;
                    s.write::<u64>(tid, addr, w ^ t as u64);
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let buf = crate::common::SharedWords::new(cfg.threads * CHUNK / 8 + 16);
        let words_per_chunk = CHUNK / 8;
        let passes = (cfg.iters / words_per_chunk as u64).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                for _ in 0..passes {
                    for w in 0..words_per_chunk {
                        buf.store(t * words_per_chunk + w, (w ^ t) as u64);
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 2_048,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&AgetLike, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn footprint_is_small() {
        let s = Session::with_config(DetectorConfig::sensitive());
        AgetLike.run_tracked(&s, &WorkloadConfig::quick());
        assert!(s.heap().live_bytes() < 64 * 1024);
    }

    #[test]
    fn file_fully_written() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 1_024,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        AgetLike.run_tracked(&s, &cfg);
        let file = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == (2 * CHUNK) as u64)
            .unwrap();
        // Spot-check both chunks (CHUNK/8 words per chunk).
        let wpc = (CHUNK / 8) as u64;
        assert_eq!(s.read_untracked::<u64>(file.start + 5 * 8), 5);
        assert_eq!(s.read_untracked::<u64>(file.start + (wpc + 5) * 8), 5 ^ 1);
    }

    #[test]
    fn native_run_completes() {
        assert!(AgetLike.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
