//! MySQL analogue — the InnoDB-style per-thread statistics false sharing.
//!
//! The MySQL scalability collapse the paper cites came from hot per-thread
//! counters packed into shared structures inside InnoDB: every transaction
//! bumped a thread-indexed slot, and the slots of many threads shared cache
//! lines. The fix — one line per counter — was part of the "6×" scalability
//! work. This analogue models a transaction loop over a packed `srv_stats`
//! counter array (broken) vs a padded one (fixed).

use std::time::Duration;

use predator_core::{Callsite, Frame, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};
use rand::Rng;

fn stride_words(variant: Variant) -> usize {
    match variant {
        Variant::Broken => 1,
        Variant::Fixed => 16,
    }
}

/// Rows touched per simulated transaction.
const ROWS_PER_TXN: usize = 8;

/// The MySQL-like workload.
pub struct MysqlLike;

impl Workload for MysqlLike {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn expectation(&self) -> Expectation {
        Expectation::Observed
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let stride = stride_words(cfg.variant) as u64 * 8;

        // The packed per-thread transaction counters inside "srv_stats".
        let stats = s
            .malloc(
                main,
                cfg.threads as u64 * stride,
                Callsite::from_frames(vec![
                    Frame::new("storage/innobase/srv/srv0srv.cc", 781),
                    Frame::new("storage/innobase/trx/trx0trx.cc", 1408),
                ]),
            )
            .expect("srv_stats");

        // A buffer-pool-ish page area, read-heavy, per-thread pages.
        let pages = s
            .malloc(main, (cfg.threads * 4096) as u64, Callsite::here())
            .expect("buffer pool");

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();
        for _txn in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                // Row reads from the thread's page region.
                let page = pages.start + (t * 4096) as u64;
                let mut checksum = 0u64;
                for _ in 0..ROWS_PER_TXN {
                    let off = rngs[t].gen_range(0..512u64) * 8;
                    checksum = checksum.wrapping_add(s.read::<u64>(tid, page + off));
                }
                std::hint::black_box(checksum);
                // Commit: bump this thread's packed counter.
                let c = stats.start + t as u64 * stride;
                let cur = s.read::<u64>(tid, c);
                s.write::<u64>(tid, c, cur + 1);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let stride = stride_words(cfg.variant);
        let (stats, base) = SharedWords::aligned(cfg.threads * stride + 16, 0);
        let pages: Vec<u64> = (0..cfg.threads * 512).map(|i| i as u64).collect();
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                for _ in 0..cfg.iters {
                    let mut checksum = 0u64;
                    for _ in 0..ROWS_PER_TXN {
                        let off = rng.gen_range(0..512usize);
                        checksum = checksum.wrapping_add(pages[t * 512 + off]);
                    }
                    std::hint::black_box(checksum);
                    stats.add(base + t * stride, 1);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn broken_variant_observed_with_innodb_callsite() {
        let r = run_and_report(
            &MysqlLike,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(r.has_observed_false_sharing(), "{r}");
        let text = r.false_sharing().next().unwrap().to_string();
        assert!(text.contains("srv0srv.cc:781"), "{text}");
    }

    #[test]
    fn fixed_variant_is_clean() {
        let r = run_and_report(
            &MysqlLike,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick().with_variant(Variant::Fixed),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn transactions_all_committed() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 100,
            threads: 3,
            ..WorkloadConfig::quick()
        };
        MysqlLike.run_tracked(&s, &cfg);
        let stats = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == 3 * 8)
            .expect("stats object");
        for t in 0..3u64 {
            assert_eq!(s.read_untracked::<u64>(stats.start + t * 8), 100);
        }
    }

    #[test]
    fn native_run_completes() {
        assert!(MysqlLike.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
