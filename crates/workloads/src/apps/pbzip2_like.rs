//! pbzip2 analogue — clean.
//!
//! Parallel block compression: each worker pulls a block, transforms it in
//! a large private buffer, and publishes the compressed length into a
//! line-padded result slot. All heavy traffic is private; the paper found
//! no problems and low detector overhead (I/O-bound tier of Figure 7).

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Words per compression block.
const BLOCK_WORDS: usize = 512;

/// A mock "compression": RLE-flavoured mixing that returns a length.
fn compress_word(w: u64) -> u64 {
    (w ^ (w >> 7)).wrapping_mul(0x0101_0101_0101_0101) >> 56
}

/// The pbzip2-like workload.
pub struct Pbzip2Like;

impl Workload for Pbzip2Like {
    fn name(&self) -> &'static str {
        "pbzip2"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let blocks: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (BLOCK_WORDS * 8) as u64, Callsite::here())
                    .expect("block")
                    .start
            })
            .collect();
        let _ = main;
        // Per-thread result slots, owner-allocated (per-thread segments
        // guarantee line isolation).
        let results: Vec<u64> = tids
            .iter()
            .map(|&tid| s.malloc(tid, 64, Callsite::here()).expect("result").start)
            .collect();

        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();
        let rounds = (cfg.iters / BLOCK_WORDS as u64).max(1);
        for _round in 0..rounds {
            for w in 0..BLOCK_WORDS as u64 {
                for (t, &tid) in tids.iter().enumerate() {
                    let addr = blocks[t] + w * 8;
                    let raw: u64 = rngs[t].gen();
                    s.write::<u64>(tid, addr, raw);
                    let v = s.read::<u64>(tid, addr);
                    let len = compress_word(v);
                    let slot = results[t];
                    let cur = s.read::<u64>(tid, slot);
                    s.write::<u64>(tid, slot, cur.wrapping_add(len));
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let results = SharedWords::new(cfg.threads * 8 + 16);
        let rounds = (cfg.iters / BLOCK_WORDS as u64).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                let mut block = vec![0u64; BLOCK_WORDS * 16];
                for _ in 0..rounds {
                    let mut len = 0u64;
                    for b in block.iter_mut() {
                        *b = rng.gen();
                        len = len.wrapping_add(compress_word(*b));
                    }
                    results.add(t * 8, len);
                }
                std::hint::black_box(&block);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 1_024,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&Pbzip2Like, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn native_run_completes() {
        assert!(Pbzip2Like.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
