//! Memcached analogue — clean (the paper found no severe false sharing).
//!
//! Worker threads serve get/set requests against a sharded hash table;
//! per-worker statistics blocks are line-padded (memcached pads its
//! `thread_stats` with a mutex per worker), so the heavy counter traffic is
//! thread-local.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Hash-table slots per shard; one shard per worker.
const SHARD_SLOTS: usize = 512;
/// Padded stats block per worker: get_hits, get_misses, set_cmds + pad.
const STATS_WORDS: usize = 8;

/// The memcached-like workload.
pub struct MemcachedLike;

impl Workload for MemcachedLike {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let _main = s.register_thread();
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let shards: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (SHARD_SLOTS * 8) as u64, Callsite::here())
                    .expect("shard")
                    .start
            })
            .collect();
        let stats: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (STATS_WORDS * 8) as u64, Callsite::here())
                    .expect("stats")
                    .start
            })
            .collect();

        let mut rngs: Vec<_> = (0..cfg.threads).map(|t| thread_rng(cfg.seed, t)).collect();
        for _req in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let key: u64 = rngs[t].gen_range(0..4096);
                let slot = shards[t] + (key % SHARD_SLOTS as u64) * 8;
                if key.is_multiple_of(4) {
                    // set
                    s.write::<u64>(tid, slot, key);
                    let c = stats[t] + 16;
                    let cur = s.read::<u64>(tid, c);
                    s.write::<u64>(tid, c, cur + 1);
                } else {
                    // get
                    let v = s.read::<u64>(tid, slot);
                    let c = stats[t] + if v == key { 0 } else { 8 };
                    let cur = s.read::<u64>(tid, c);
                    s.write::<u64>(tid, c, cur + 1);
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let table = SharedWords::new(cfg.threads * SHARD_SLOTS + 16);
        let stats = SharedWords::new(cfg.threads * STATS_WORDS + 16);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut rng = thread_rng(cfg.seed, t);
                for _ in 0..cfg.iters {
                    let key: u64 = rng.gen_range(0..4096);
                    let slot = t * SHARD_SLOTS + (key % SHARD_SLOTS as u64) as usize;
                    if key.is_multiple_of(4) {
                        table.store(slot, key);
                        stats.add(t * STATS_WORDS + 2, 1);
                    } else {
                        let v = table.load(slot);
                        stats.add(t * STATS_WORDS + usize::from(v != key), 1);
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let r = run_and_report(
            &MemcachedLike,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn stats_account_for_every_request() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 200,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        MemcachedLike.run_tracked(&s, &cfg);
        let stats: Vec<_> = s
            .heap()
            .live_objects()
            .into_iter()
            .filter(|o| o.size == (STATS_WORDS * 8) as u64)
            .collect();
        assert_eq!(stats.len(), 2);
        for st in stats {
            let total: u64 = (0..3)
                .map(|w| s.read_untracked::<u64>(st.start + w * 8))
                .sum();
            assert_eq!(total, 200);
        }
    }

    #[test]
    fn native_run_completes() {
        assert!(
            MemcachedLike
                .run_native(&WorkloadConfig::quick())
                .as_nanos()
                > 0
        );
    }
}
