//! pfscan analogue — clean of *false* sharing, with deliberate *true*
//! sharing.
//!
//! The parallel file scanner pulls work units off a shared queue cursor —
//! one word that every worker atomically bumps. That is textbook true
//! sharing: heavy invalidation traffic on a single word, unfixable by
//! padding. The paper reports no false sharing for pfscan; this workload
//! doubles as the discrimination test (§2.3.2) at application scale.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{gen_words, run_threads, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};

/// Lines of "file" scanned per work unit.
const UNIT: u64 = 16;

/// The pfscan-like workload.
pub struct PfscanLike;

impl Workload for PfscanLike {
    fn name(&self) -> &'static str {
        "pfscan"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        // The shared queue cursor (one padded line — the sharing is on the
        // single word itself).
        let cursor = s
            .malloc(main, 64, Callsite::here())
            .expect("queue cursor")
            .start;
        // The scanned "file": read-only words derived from generated text.
        let corpus = gen_words(cfg.seed, 2048);
        let file = s.malloc(main, 2048 * 8, Callsite::here()).expect("file");
        for (i, w) in corpus.iter().enumerate() {
            let h = w.bytes().fold(0u64, |a, b| a.wrapping_mul(131) + b as u64);
            s.write_untracked::<u64>(file.start + (i as u64) * 8, h);
        }
        let needle = corpus[7]
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131) + b as u64);

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // Padded per-thread match counters.
        let matches: Vec<_> = tids
            .iter()
            .map(|&tid| s.malloc(tid, 64, Callsite::here()).expect("matches").start)
            .collect();

        let total_units = cfg.iters / UNIT;
        'outer: loop {
            for (t, &tid) in tids.iter().enumerate() {
                // Grab a unit: true sharing on the cursor word.
                let unit = s.fetch_add(tid, cursor, 1);
                if unit >= total_units {
                    break 'outer;
                }
                for k in 0..UNIT {
                    let idx = (unit * UNIT + k) % 2048;
                    let v = s.read::<u64>(tid, file.start + idx * 8);
                    if v == needle {
                        let m = matches[t];
                        let cur = s.read::<u64>(tid, m);
                        s.write::<u64>(tid, m, cur + 1);
                    }
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let corpus = gen_words(cfg.seed, 2048);
        let file: Vec<u64> = corpus
            .iter()
            .map(|w| w.bytes().fold(0u64, |a, b| a.wrapping_mul(131) + b as u64))
            .collect();
        let needle = file[7];
        let cursor = std::sync::atomic::AtomicU64::new(0);
        let matches = SharedWords::new(cfg.threads * 8 + 16);
        let total_units = cfg.iters / UNIT;
        time(|| {
            run_threads(cfg.threads, |t| loop {
                let unit = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if unit >= total_units {
                    break;
                }
                let mut found = 0;
                for k in 0..UNIT {
                    if file[((unit * UNIT + k) % 2048) as usize] == needle {
                        found += 1;
                    }
                }
                matches.add(t * 8, found);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::{DetectorConfig, SharingClass};

    #[test]
    fn queue_cursor_is_true_sharing_not_false() {
        let cfg = WorkloadConfig {
            iters: 4_096,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&PfscanLike, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "no false positives allowed: {r}");
        // The cursor shows up as true sharing at sensitive thresholds.
        assert!(
            r.findings
                .iter()
                .any(|f| f.class == SharingClass::TrueSharing),
            "expected the queue cursor as true sharing: {r}"
        );
    }

    #[test]
    fn all_units_processed_exactly_once() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 640,
            threads: 4,
            ..WorkloadConfig::quick()
        };
        PfscanLike.run_tracked(&s, &cfg);
        let cursor = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == 64 && o.owner.0 == 0)
            .unwrap();
        // Cursor ends ≥ total units (threads may over-grab at the end).
        assert!(s.read_untracked::<u64>(cursor.start) >= 640 / UNIT);
    }

    #[test]
    fn native_run_completes() {
        assert!(PfscanLike.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
