//! Boost analogue — the `boost::detail::spinlock_pool` false sharing.
//!
//! `spinlock_pool<2>` backs `shared_ptr` atomics with a static array of 41
//! one-word spinlocks; objects hash to locks by address. Eight or more
//! locks share every cache line, so threads spinning on *different* locks
//! invalidate each other constantly — the Stack Overflow report the paper
//! cites, worth ~40% when fixed by padding each lock to its own line.
//!
//! The pool is a *global*, so this workload also exercises PREDATOR's
//! global-variable reporting path (name/address/size, §2.3).

use std::time::Duration;

use predator_core::{Session, ThreadId};

use crate::common::{run_threads, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};

/// Boost's pool size.
const POOL_SIZE: usize = 41;

fn stride_words(variant: Variant) -> u64 {
    match variant {
        Variant::Broken => 1,
        Variant::Fixed => 8,
    }
}

/// Each thread's dedicated lock index (distinct objects hash to distinct
/// locks; collisions would be true sharing, which is not the bug here).
fn lock_of(thread: usize) -> u64 {
    ((thread * 7) % POOL_SIZE) as u64
}

/// The Boost-spinlock-pool workload.
pub struct BoostSpinlockPool;

impl Workload for BoostSpinlockPool {
    fn name(&self) -> &'static str {
        "boost"
    }

    fn suite(&self) -> Suite {
        Suite::App
    }

    fn expectation(&self) -> Expectation {
        Expectation::Observed
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let _main = s.register_thread();
        let stride = stride_words(cfg.variant);
        // The static pool — registered as a global variable.
        let pool = s.global(
            "boost::detail::spinlock_pool<2>::pool_",
            POOL_SIZE as u64 * stride * 8,
        );

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // Per-thread refcount words the locks protect (padded, private).
        let refcounts: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, 64, predator_core::Callsite::here())
                    .expect("refcount")
                    .start
            })
            .collect();

        for _ in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let lock = pool + lock_of(t) * stride * 8;
                // spinlock::lock() — CAS on the lock word (a write).
                while s.compare_exchange(tid, lock, 0, 1).is_err() {
                    // Round-robin scheduling makes the lock always free here,
                    // but keep the loop for fidelity.
                }
                // Critical section: shared_ptr refcount update.
                let rc = refcounts[t];
                let cur = s.read::<u64>(tid, rc);
                s.write::<u64>(tid, rc, cur + 1);
                // spinlock::unlock() — store release.
                s.write::<u64>(tid, lock, 0);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let stride = stride_words(cfg.variant) as usize;
        let (pool, base) = SharedWords::aligned(POOL_SIZE * stride + 16, 0);
        let refcounts = SharedWords::new(cfg.threads * 8 + 16);
        time(|| {
            run_threads(cfg.threads, |t| {
                let lock = base + lock_of(t) as usize * stride;
                for _ in 0..cfg.iters {
                    // CAS-acquire, bump refcount, store-release.
                    while pool.load(lock) != 0 {
                        std::hint::spin_loop();
                    }
                    pool.store(lock, 1);
                    refcounts.add(t * 8, 1);
                    pool.store(lock, 0);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::{DetectorConfig, SiteKind};

    #[test]
    fn broken_pool_reported_as_global_false_sharing() {
        let r = run_and_report(
            &BoostSpinlockPool,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(r.has_observed_false_sharing(), "{r}");
        let f = r.false_sharing().next().unwrap();
        match &f.object.site {
            SiteKind::Global { name } => {
                assert!(name.contains("spinlock_pool"), "{name}");
            }
            other => panic!("expected global attribution, got {other:?}"),
        }
        assert!(f.to_string().contains("GLOBAL VARIABLE"));
    }

    #[test]
    fn padded_pool_is_clean() {
        let r = run_and_report(
            &BoostSpinlockPool,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick().with_variant(Variant::Fixed),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn distinct_threads_use_distinct_locks() {
        let locks: std::collections::HashSet<u64> = (0..8).map(lock_of).collect();
        assert_eq!(locks.len(), 8, "hash must spread threads across locks");
    }

    #[test]
    fn refcounts_reflect_all_iterations() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 50,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        BoostSpinlockPool.run_tracked(&s, &cfg);
        let rcs: Vec<_> = s
            .heap()
            .live_objects()
            .into_iter()
            .filter(|o| o.size == 64 && o.owner.0 > 0)
            .collect();
        assert_eq!(rcs.len(), 2);
        for rc in rcs {
            assert_eq!(s.read_untracked::<u64>(rc.start), 50);
        }
    }

    #[test]
    fn native_run_completes() {
        assert!(
            BoostSpinlockPool
                .run_native(&WorkloadConfig::quick())
                .as_nanos()
                > 0
        );
    }
}
