//! Real-application analogues (§4.1.2).
//!
//! MySQL and Boost carry the two famous false-sharing bugs the paper
//! pinpoints ("we were able to improve MySQL performance by 6× with those
//! scalability fixes"; the Boost spinlock pool fix brought 40%). The other
//! four — memcached, aget, pbzip2, pfscan — are the paper's clean controls:
//! PREDATOR "does not identify any severe false sharing problems" in them.

pub mod aget_like;
pub mod boost_spinlock_pool;
pub mod memcached_like;
pub mod mysql_like;
pub mod pbzip2_like;
pub mod pfscan_like;
