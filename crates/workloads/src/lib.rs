//! # predator-workloads
//!
//! Re-creations of the PPoPP 2014 PREDATOR evaluation workloads: the Phoenix
//! and PARSEC benchmarks of Table 1 and the six real applications of §4.1.2.
//!
//! Each workload reproduces the *sharing pattern* the paper found (or the
//! absence of one), not the full application around it — the detector sees
//! only memory-access streams, so the pattern is what matters. Every
//! workload runs in two modes:
//!
//! * **tracked** — through a [`predator_core::Session`]: allocations carry
//!   the original source callsites (e.g. `linear_regression-pthread.c:133`),
//!   accesses notify the detector; this is what Table 1 and Figure 5 use;
//! * **native** — real `std::thread`s hammering real memory (relaxed
//!   atomics, so racy patterns stay defined behaviour), with wall-clock
//!   timing; this is what the Figure 2 alignment sweep and Table 1's
//!   "Improvement" column use.
//!
//! And in two variants:
//!
//! * [`Variant::Broken`] — the layout as shipped (false sharing present for
//!   the workloads the paper flags);
//! * [`Variant::Fixed`] — the paper's fix applied (padding / alignment /
//!   type widening).

pub mod apps;
pub mod common;
pub mod parsec;
pub mod phoenix;

use std::time::Duration;

use predator_core::{DetectorConfig, Report, Session};

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Phoenix MapReduce benchmarks.
    Phoenix,
    /// PARSEC benchmarks.
    Parsec,
    /// Real applications (§4.1.2).
    App,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Phoenix => f.write_str("Phoenix"),
            Suite::Parsec => f.write_str("PARSEC"),
            Suite::App => f.write_str("RealApplications"),
        }
    }
}

/// Broken (as-shipped) vs fixed (paper's fix applied) layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// Layout with the false-sharing bug (where the workload has one).
    #[default]
    Broken,
    /// Layout with the paper's fix applied.
    Fixed,
}

/// Run parameters shared by all workloads.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Per-thread work items (loop iterations / records / transactions).
    pub iters: u64,
    /// Seed for input generation.
    pub seed: u64,
    /// Broken or fixed layout.
    pub variant: Variant,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            iters: 20_000,
            seed: 42,
            variant: Variant::Broken,
        }
    }
}

impl WorkloadConfig {
    /// A quick configuration for unit tests.
    pub fn quick() -> Self {
        WorkloadConfig {
            threads: 4,
            iters: 2_000,
            seed: 42,
            variant: Variant::Broken,
        }
    }

    /// Same configuration with the variant replaced.
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Same configuration with the iteration count replaced.
    pub fn with_iters(mut self, iters: u64) -> Self {
        self.iters = iters;
        self
    }
}

/// How a workload's false sharing manifests (ground truth for Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// No false sharing in either variant.
    Clean,
    /// Physical-line false sharing, detectable without prediction.
    Observed,
    /// Latent false sharing, detectable only with prediction
    /// (the linear_regression case).
    PredictedOnly,
}

/// One evaluation workload.
pub trait Workload: Sync {
    /// Short name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Which suite the workload belongs to.
    fn suite(&self) -> Suite;

    /// Ground-truth expectation for the broken variant.
    fn expectation(&self) -> Expectation;

    /// Runs the instrumented workload inside `session`.
    fn run_tracked(&self, session: &Session, cfg: &WorkloadConfig);

    /// Runs the native (uninstrumented, real-memory) workload and returns
    /// its wall-clock time.
    fn run_native(&self, cfg: &WorkloadConfig) -> Duration;
}

/// All evaluation workloads, in the paper's presentation order.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        // Phoenix
        Box::new(phoenix::histogram::Histogram),
        Box::new(phoenix::kmeans::KMeans),
        Box::new(phoenix::linear_regression::LinearRegression),
        Box::new(phoenix::matrix_multiply::MatrixMultiply),
        Box::new(phoenix::pca::Pca),
        Box::new(phoenix::reverse_index::ReverseIndex),
        Box::new(phoenix::string_match::StringMatch),
        Box::new(phoenix::word_count::WordCount),
        // PARSEC
        Box::new(parsec::blackscholes::BlackScholes),
        Box::new(parsec::bodytrack::BodyTrack),
        Box::new(parsec::dedup::Dedup),
        Box::new(parsec::ferret::Ferret),
        Box::new(parsec::fluidanimate::FluidAnimate),
        Box::new(parsec::streamcluster::StreamCluster),
        Box::new(parsec::swaptions::Swaptions),
        // Real applications
        Box::new(apps::aget_like::AgetLike),
        Box::new(apps::boost_spinlock_pool::BoostSpinlockPool),
        Box::new(apps::memcached_like::MemcachedLike),
        Box::new(apps::mysql_like::MysqlLike),
        Box::new(apps::pbzip2_like::Pbzip2Like),
        Box::new(apps::pfscan_like::PfscanLike),
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all().into_iter().find(|w| w.name() == name)
}

/// Runs `workload` tracked under `det` and returns the detector report.
pub fn run_and_report(
    workload: &dyn Workload,
    det: DetectorConfig,
    cfg: &WorkloadConfig,
) -> Report {
    let session = Session::with_config(det);
    {
        let _span = predator_obs::span("interpret");
        workload.run_tracked(&session, cfg);
    }
    session.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_suites() {
        let ws = all();
        assert_eq!(ws.len(), 21);
        assert!(ws.iter().any(|w| w.suite() == Suite::Phoenix));
        assert!(ws.iter().any(|w| w.suite() == Suite::Parsec));
        assert!(ws.iter().any(|w| w.suite() == Suite::App));
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let ws = all();
        let mut names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
        for n in names {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn paper_flagged_workloads_present() {
        // The Table 1 rows and §4.1.2 findings.
        for name in [
            "histogram",
            "linear_regression",
            "reverse_index",
            "word_count",
            "streamcluster",
        ] {
            let w = by_name(name).unwrap();
            assert_ne!(w.expectation(), Expectation::Clean, "{name} must have FS");
        }
        assert_eq!(
            by_name("linear_regression").unwrap().expectation(),
            Expectation::PredictedOnly
        );
        assert_eq!(
            by_name("mysql").unwrap().expectation(),
            Expectation::Observed
        );
        assert_eq!(
            by_name("boost").unwrap().expectation(),
            Expectation::Observed
        );
        for name in ["memcached", "aget", "pbzip2", "pfscan"] {
            assert_eq!(
                by_name(name).unwrap().expectation(),
                Expectation::Clean,
                "{name}"
            );
        }
    }
}
