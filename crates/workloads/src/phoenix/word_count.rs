//! The `word_count` benchmark (Table 1, `word_count-pthread.c:136`).
//!
//! Workers tokenize chunks of generated text and maintain private hash
//! tables, but the per-thread `words_count` totals live packed in one shared
//! array — the same mild false sharing as `reverse_index` (0.14% improvement
//! in the paper). Fixed variant pads the totals to a line each.

use std::time::Duration;

use predator_core::{Callsite, Frame, Session, ThreadId};

use crate::common::{gen_words, run_threads, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};

fn stride_words(variant: Variant) -> usize {
    match variant {
        Variant::Broken => 1,
        Variant::Fixed => 16,
    }
}

fn hash_word(w: &str) -> u64 {
    w.bytes()
        .fold(5381u64, |h, b| h.wrapping_mul(33) ^ b as u64)
}

/// The `word_count` workload.
pub struct WordCount;

impl Workload for WordCount {
    fn name(&self) -> &'static str {
        "word_count"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Observed
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let stride = stride_words(cfg.variant) as u64 * 8;
        let words = gen_words(cfg.seed, 1024);

        let totals = s
            .malloc(
                main,
                cfg.threads as u64 * stride,
                Callsite::from_frames(vec![Frame::new("word_count-pthread.c", 136)]),
            )
            .expect("words_count");

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let tables: Vec<_> = tids
            .iter()
            .map(|&tid| s.malloc(tid, 8192, Callsite::here()).expect("hash table"))
            .collect();

        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let w = &words[((i * 5 + t as u64 * 11) % 1024) as usize];
                let h = hash_word(w);
                // Count in the private table…
                let slot = tables[t].start + (h % 1024) * 8;
                let cur = s.read::<u64>(tid, slot);
                s.write::<u64>(tid, slot, cur + 1);
                // …and bump the packed shared total.
                let c = totals.start + t as u64 * stride;
                let cur = s.read::<u64>(tid, c);
                s.write::<u64>(tid, c, cur + 1);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let stride = stride_words(cfg.variant);
        let words = gen_words(cfg.seed, 1024);
        let (totals, base) = SharedWords::aligned(cfg.threads * stride + 16, 0);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut table = vec![0u64; 1024];
                for i in 0..cfg.iters {
                    let w = &words[((i * 5 + t as u64 * 11) % 1024) as usize];
                    let h = hash_word(w);
                    table[(h % 1024) as usize] += 1;
                    totals.add(base + t * stride, 1);
                }
                std::hint::black_box(&table);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn broken_variant_observed() {
        let r = run_and_report(
            &WordCount,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(r.has_observed_false_sharing(), "{r}");
        assert!(r
            .false_sharing()
            .next()
            .unwrap()
            .to_string()
            .contains("word_count-pthread.c:136"));
    }

    #[test]
    fn fixed_variant_is_clean() {
        let r = run_and_report(
            &WordCount,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick().with_variant(Variant::Fixed),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn totals_match_private_tables() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 200,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        WordCount.run_tracked(&s, &cfg);
        let totals = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == 2 * 8)
            .expect("totals object");
        assert_eq!(s.read_untracked::<u64>(totals.start), 200);
        assert_eq!(s.read_untracked::<u64>(totals.start + 8), 200);
    }

    #[test]
    fn native_run_completes() {
        assert!(WordCount.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
