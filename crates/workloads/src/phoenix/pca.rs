//! The `pca` benchmark — no false sharing.
//!
//! Principal-component analysis over a generated matrix: workers compute
//! column means and covariance contributions into per-thread, line-padded
//! partial-sum buffers, then the main thread reduces. All heavy write
//! traffic is thread-local; only reads are shared.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Columns in the data matrix.
const COLS: usize = 16;
/// Padded per-thread partial buffer: COLS sums + pad, in whole lines.
const PARTIAL_WORDS: usize = 24; // 16 used + 8 pad = 3 lines exactly

/// The `pca` workload.
pub struct Pca;

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let rows = 256u64;
        let data = s
            .malloc(main, rows * COLS as u64 * 8, Callsite::here())
            .expect("data matrix");
        let mut rng = thread_rng(cfg.seed, 0);
        for i in 0..rows * COLS as u64 {
            s.write_untracked::<u64>(data.start + i * 8, rng.gen_range(0..1000));
        }

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // Per-thread padded partials — allocated by each owner thread, so
        // the allocator guarantees line disjointness too.
        let partials: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (PARTIAL_WORDS * 8) as u64, Callsite::here())
                    .expect("partials")
            })
            .collect();

        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let row = (i * cfg.threads as u64 + t as u64) % rows;
                for col in 0..COLS as u64 {
                    let v = s.read::<u64>(tid, data.start + (row * COLS as u64 + col) * 8);
                    let p = partials[t].start + col * 8;
                    let cur = s.read::<u64>(tid, p);
                    s.write::<u64>(tid, p, cur.wrapping_add(v));
                }
            }
        }

        // Reduction by the main thread (single-writer, no sharing).
        let means = s
            .malloc(main, COLS as u64 * 8, Callsite::here())
            .expect("means");
        for col in 0..COLS as u64 {
            let mut acc = 0u64;
            for p in &partials {
                acc = acc.wrapping_add(s.read::<u64>(main, p.start + col * 8));
            }
            s.write::<u64>(main, means.start + col * 8, acc);
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let rows = 4096usize;
        let mut rng = thread_rng(cfg.seed, 0);
        let data: Vec<u64> = (0..rows * COLS).map(|_| rng.gen_range(0..1000)).collect();
        let partials = SharedWords::new(cfg.threads * PARTIAL_WORDS + 16);
        time(|| {
            run_threads(cfg.threads, |t| {
                let base = t * PARTIAL_WORDS;
                for i in 0..cfg.iters {
                    let row = ((i * cfg.threads as u64 + t as u64) as usize) % rows;
                    for col in 0..COLS {
                        partials.add(base + col, data[row * COLS + col]);
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 400,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&Pca, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn reduction_totals_all_rows_processed() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 64,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        Pca.run_tracked(&s, &cfg);
        let objs = s.heap().live_objects();
        let means = objs
            .iter()
            .find(|o| o.size == COLS as u64 * 8)
            .expect("means");
        // Every column mean accumulated something.
        for col in 0..COLS as u64 {
            assert!(s.read_untracked::<u64>(means.start + col * 8) > 0);
        }
    }

    #[test]
    fn native_run_completes() {
        assert!(Pca.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
