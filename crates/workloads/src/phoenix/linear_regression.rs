//! The `linear_regression` benchmark — the paper's flagship prediction case
//! (Figures 2, 5, 6; §4.1.3).
//!
//! The main thread allocates an array of per-thread `lreg_args` elements —
//! 64 bytes each on a 64-bit build (Figure 6):
//!
//! ```c
//! struct {
//!     pthread_t tid;        // word 0
//!     POINT_T *points;      // word 1
//!     int num_elems;        // word 2
//!     long long SX;         // word 3   ← hot
//!     long long SY;         // word 4   ← hot
//!     long long SXX;        // word 5   ← hot
//!     long long SYY;        // word 6   ← hot
//!     long long SXY;        // word 7   ← hot
//! } lreg_args;
//! ```
//!
//! Each thread updates only its own element in a tight loop. Whether this
//! falsely shares depends entirely on where the array lands relative to
//! cache-line boundaries: at offsets 0 and 56 (hot tail within one line)
//! there is none; at offset 24 the hot words straddle lines and performance
//! drops ~15× (Figure 2). Under PREDATOR's isolating allocator the array is
//! line-aligned, so no false sharing *manifests* — only prediction (virtual
//! lines) catches the latent problem. That is this workload's expectation:
//! [`Expectation::PredictedOnly`].

use std::time::Duration;

use predator_core::{Callsite, Frame, Session, ThreadId};

use crate::common::{gen_points, run_threads, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};

/// Words per element: broken = exactly the 64-byte struct; fixed = padded
/// to two lines (the standard fix).
fn stride_words(variant: Variant) -> usize {
    match variant {
        Variant::Broken => 8,
        Variant::Fixed => 16,
    }
}

/// Word indices of the hot accumulator fields within an element.
const SX: u64 = 3;
const SY: u64 = 4;
const SXX: u64 = 5;
const SYY: u64 = 6;
const SXY: u64 = 7;

/// The `linear_regression` workload.
pub struct LinearRegression;

impl LinearRegression {
    /// Native run with the `lreg_args` array starting `offset` bytes past a
    /// cache-line boundary — the Figure 2 sweep. `offset` must be a multiple
    /// of 8 in `[0, 56]`.
    pub fn run_native_offset(&self, cfg: &WorkloadConfig, offset: usize) -> Duration {
        let stride = stride_words(cfg.variant);
        let points = gen_points(cfg.seed, 1024);
        let (arena, base) = SharedWords::aligned(cfg.threads * stride + 16, offset);
        time(|| {
            run_threads(cfg.threads, |t| {
                let e = base + t * stride;
                for i in 0..cfg.iters {
                    let (x, y) = points[(i as usize) & 1023];
                    let (x, y) = (x as u64, y as u64);
                    arena.add(e + SX as usize, x);
                    arena.add(e + SXX as usize, x.wrapping_mul(x));
                    arena.add(e + SY as usize, y);
                    arena.add(e + SYY as usize, y.wrapping_mul(y));
                    arena.add(e + SXY as usize, x.wrapping_mul(y));
                }
            });
        })
    }
}

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::PredictedOnly
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let stride = stride_words(cfg.variant) as u64 * 8;

        // Input points, shared read-only.
        let n_points = 1024usize;
        let points = s
            .malloc(main, (n_points * 16) as u64, Callsite::here())
            .expect("points allocation");
        let data = gen_points(cfg.seed, n_points);
        for (i, (x, y)) in data.iter().enumerate() {
            s.write_untracked::<i64>(points.start + (i as u64) * 16, *x);
            s.write_untracked::<i64>(points.start + (i as u64) * 16 + 8, *y);
        }

        // The lreg_args array — the Figure 5 victim object, allocated with
        // the paper's callsite stack.
        let args = s
            .malloc(
                main,
                cfg.threads as u64 * stride,
                Callsite::from_frames(vec![
                    Frame::new("./stddefines.h", 53),
                    Frame::new("./linear_regression-pthread.c", 133),
                ]),
            )
            .expect("lreg_args allocation");

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        for (t, &tid) in tids.iter().enumerate() {
            let e = args.start + t as u64 * stride;
            s.write(tid, e, tid.0 as u64); // tid field
            s.write(tid, e + 8, points.start); // points pointer
            s.write(tid, e + 16, cfg.iters); // num_elems
        }

        // Deterministic round-robin over logical threads: the adversarial
        // interleaving of §3.3, reproducibly.
        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let e = args.start + t as u64 * stride;
                // The Figure 6 loop body: bounds check reads num_elems, then
                // point loads and five read-modify-write accumulations.
                let _n = s.read::<u64>(tid, e + 16);
                let p = points.start + (i % n_points as u64) * 16;
                let x = s.read::<i64>(tid, p) as u64;
                let y = s.read::<i64>(tid, p + 8) as u64;
                for (w, v) in [
                    (SX, x),
                    (SXX, x.wrapping_mul(x)),
                    (SY, y),
                    (SYY, y.wrapping_mul(y)),
                    (SXY, x.wrapping_mul(y)),
                ] {
                    let cur = s.read::<u64>(tid, e + w * 8);
                    s.write::<u64>(tid, e + w * 8, cur.wrapping_add(v));
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        // Broken: the unlucky placement Figure 2 identifies as worst
        // (offset 24); fixed: padded elements at a clean offset.
        let offset = match cfg.variant {
            Variant::Broken => 24,
            Variant::Fixed => 0,
        };
        self.run_native_offset(cfg, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    fn quick() -> WorkloadConfig {
        WorkloadConfig {
            iters: 600,
            ..WorkloadConfig::quick()
        }
    }

    #[test]
    fn broken_variant_is_predicted_not_observed() {
        let r = run_and_report(&LinearRegression, DetectorConfig::sensitive(), &quick());
        assert!(
            !r.has_observed_false_sharing(),
            "isolating allocator hides the physical sharing"
        );
        assert!(
            r.has_predicted_false_sharing(),
            "prediction must catch it:\n{r}"
        );
        // The report attributes the paper's callsite.
        let f = r.false_sharing().next().unwrap();
        let text = f.to_string();
        assert!(text.contains("linear_regression-pthread.c:133"), "{text}");
    }

    #[test]
    fn broken_variant_missed_without_prediction() {
        // The whole point of the paper: PREDATOR-NP cannot see this.
        let mut det = DetectorConfig::sensitive();
        det.prediction = false;
        let r = run_and_report(&LinearRegression, det, &quick());
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn fixed_variant_is_clean() {
        let r = run_and_report(
            &LinearRegression,
            DetectorConfig::sensitive(),
            &quick().with_variant(Variant::Fixed),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn native_offset_sweep_runs() {
        let cfg = WorkloadConfig {
            iters: 10_000,
            ..WorkloadConfig::quick()
        };
        for offset in [0usize, 24, 56] {
            let d = LinearRegression.run_native_offset(&cfg, offset);
            assert!(d.as_nanos() > 0);
        }
    }

    #[test]
    fn tracked_run_computes_correct_sums() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 100,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        LinearRegression.run_tracked(&s, &cfg);
        // Recompute SX for thread 0 from the same deterministic input.
        let data = gen_points(cfg.seed, 1024);
        let expect_sx: u64 = (0..100).map(|i| data[i % 1024].0 as u64).sum();
        let args = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == 2 * 64)
            .expect("lreg_args object");
        assert_eq!(s.read_untracked::<u64>(args.start + SX * 8), expect_sx);
    }
}
