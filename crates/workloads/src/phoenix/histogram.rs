//! The `histogram` benchmark — one of the two false-sharing problems the
//! paper was first to report (Table 1, `histogram-pthread.c:213`; ~46%
//! improvement from the fix).
//!
//! "Multiple threads simultaneously modify different locations of the same
//! heap object, `thread_arg_t`." Each worker's argument record carries its
//! private red/green/blue pixel counters; the records are only 24 bytes, so
//! two to three workers land on every cache line of the argument array, and
//! every pixel processed writes the shared line. Padding the structure to a
//! full line eliminates the sharing.

use std::time::Duration;

use predator_core::{Callsite, Frame, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};
use rand::Rng;

/// Words per `thread_arg_t`: broken = 3 (r/g/b counters, 24 bytes);
/// fixed = 8 (padded to a cache line).
fn stride_words(variant: Variant) -> usize {
    match variant {
        Variant::Broken => 3,
        Variant::Fixed => 16,
    }
}

/// The `histogram` workload.
pub struct Histogram;

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Observed
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let stride = stride_words(cfg.variant) as u64 * 8;

        // Input "image": one byte per pixel, shared read-only.
        let n_pixels = 4096u64;
        let img = s.malloc(main, n_pixels, Callsite::here()).expect("image");
        let mut rng = thread_rng(cfg.seed, 0);
        for i in 0..n_pixels {
            s.write_untracked::<u8>(img.start + i, rng.gen());
        }

        // The thread_arg_t array — the paper's victim.
        let args = s
            .malloc(
                main,
                cfg.threads as u64 * stride,
                Callsite::from_frames(vec![Frame::new("histogram-pthread.c", 213)]),
            )
            .expect("thread args");

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let e = args.start + t as u64 * stride;
                let px = s.read::<u8>(tid, img.start + (i * 7 + t as u64) % n_pixels) as u64;
                // Bucket by channel value, bump the thread's private counter
                // — which lives on a line shared with its neighbors.
                let w = px % 3;
                let cur = s.read::<u64>(tid, e + w * 8);
                s.write::<u64>(tid, e + w * 8, cur + 1);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let stride = stride_words(cfg.variant);
        let (arena, base) = SharedWords::aligned(cfg.threads * stride + 16, 0);
        let pixels: Vec<u8> = {
            let mut rng = thread_rng(cfg.seed, 0);
            (0..4096).map(|_| rng.gen()).collect()
        };
        time(|| {
            run_threads(cfg.threads, |t| {
                let e = base + t * stride;
                for i in 0..cfg.iters {
                    let px = pixels[((i * 7 + t as u64) % 4096) as usize] as usize;
                    arena.add(e + px % 3, 1);
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::{DetectorConfig, FindingKind};

    #[test]
    fn broken_variant_observed_without_prediction() {
        let mut det = DetectorConfig::sensitive();
        det.prediction = false;
        let r = run_and_report(&Histogram, det, &WorkloadConfig::quick());
        assert!(r.has_observed_false_sharing(), "{r}");
        let f = r.false_sharing().next().unwrap();
        assert_eq!(f.kind, FindingKind::Observed);
        assert!(f.to_string().contains("histogram-pthread.c:213"));
    }

    #[test]
    fn broken_variant_observed_with_prediction_too() {
        // Table 1 checks both columns for histogram.
        let r = run_and_report(
            &Histogram,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(r.has_observed_false_sharing(), "{r}");
    }

    #[test]
    fn fixed_variant_is_clean() {
        let r = run_and_report(
            &Histogram,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick().with_variant(Variant::Fixed),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn counters_total_matches_work() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 500,
            threads: 3,
            ..WorkloadConfig::quick()
        };
        Histogram.run_tracked(&s, &cfg);
        let args = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == 3 * 24)
            .expect("args object");
        let total: u64 = (0..9)
            .map(|w| s.read_untracked::<u64>(args.start + w * 8))
            .sum();
        assert_eq!(total, 500 * 3, "every pixel counted exactly once");
    }

    #[test]
    fn native_run_completes() {
        let d = Histogram.run_native(&WorkloadConfig {
            iters: 5_000,
            ..WorkloadConfig::quick()
        });
        assert!(d.as_nanos() > 0);
    }
}
