//! The `kmeans` benchmark — no false sharing, but heavy tracked traffic.
//!
//! Lloyd's iterations with per-thread, line-padded centroid accumulators.
//! The paper singles kmeans out for high *detector overhead* (Figure 7,
//! >8×) without any sharing problem: many lines cross the tracking
//! > threshold from legitimate single-thread write volume. This workload
//! > reproduces that profile.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{gen_points, run_threads, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};

/// Number of clusters.
const K: usize = 8;
/// Words per padded per-thread accumulator block: K × (sum_x, sum_y, count)
/// rounded up to whole lines.
const ACC_WORDS: usize = 3 * K + (8 - (3 * K) % 8) % 8;

fn dist2(ax: i64, ay: i64, bx: i64, by: i64) -> i64 {
    let (dx, dy) = (ax - bx, ay - by);
    dx * dx + dy * dy
}

/// The `kmeans` workload.
pub struct KMeans;

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let n_points = 512usize;
        let pts = gen_points(cfg.seed, n_points);
        let points = s
            .malloc(main, (n_points * 16) as u64, Callsite::here())
            .expect("points");
        for (i, (x, y)) in pts.iter().enumerate() {
            s.write_untracked::<i64>(points.start + (i as u64) * 16, *x);
            s.write_untracked::<i64>(points.start + (i as u64) * 16 + 8, *y);
        }

        // Centroids, updated only by the main thread between rounds.
        let centroids = s
            .malloc(main, (K * 16) as u64, Callsite::here())
            .expect("centroids");
        for c in 0..K {
            s.write_untracked::<i64>(centroids.start + (c as u64) * 16, pts[c * 13 % n_points].0);
            s.write_untracked::<i64>(
                centroids.start + (c as u64) * 16 + 8,
                pts[c * 13 % n_points].1,
            );
        }

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let accs: Vec<_> = tids
            .iter()
            .map(|&tid| {
                s.malloc(tid, (ACC_WORDS * 8) as u64, Callsite::here())
                    .expect("acc")
            })
            .collect();

        let rounds = (cfg.iters / n_points as u64).max(1);
        for _round in 0..rounds {
            // Assignment + accumulation, round-robin across logical threads.
            for i in 0..n_points {
                let t = i % cfg.threads;
                let tid = tids[t];
                let px = s.read::<i64>(tid, points.start + (i as u64) * 16);
                let py = s.read::<i64>(tid, points.start + (i as u64) * 16 + 8);
                let mut best = 0usize;
                let mut best_d = i64::MAX;
                for c in 0..K {
                    let cx = s.read::<i64>(tid, centroids.start + (c as u64) * 16);
                    let cy = s.read::<i64>(tid, centroids.start + (c as u64) * 16 + 8);
                    let d = dist2(px, py, cx, cy);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                let a = accs[t].start + (best as u64) * 24;
                for (off, v) in [(0, px as u64), (8, py as u64), (16, 1u64)] {
                    let cur = s.read::<u64>(tid, a + off);
                    s.write::<u64>(tid, a + off, cur.wrapping_add(v));
                }
            }
            // Main-thread reduction + centroid update.
            for c in 0..K as u64 {
                let (mut sx, mut sy, mut n) = (0u64, 0u64, 0u64);
                for (t, acc) in accs.iter().enumerate() {
                    let a = acc.start + c * 24;
                    sx = sx.wrapping_add(s.read::<u64>(main, a));
                    sy = sy.wrapping_add(s.read::<u64>(main, a + 8));
                    n += s.read::<u64>(main, a + 16);
                    // Clear for next round.
                    for off in [0, 8, 16] {
                        s.write::<u64>(tids[t], a + off, 0);
                    }
                }
                if let (Some(cx), Some(cy)) = (sx.checked_div(n), sy.checked_div(n)) {
                    s.write::<i64>(main, centroids.start + c * 16, cx as i64);
                    s.write::<i64>(main, centroids.start + c * 16 + 8, cy as i64);
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let n_points = 8192usize;
        let pts = gen_points(cfg.seed, n_points);
        let accs = SharedWords::new(cfg.threads * ACC_WORDS + 16);
        let mut centroids: Vec<(i64, i64)> = (0..K).map(|c| pts[c * 13 % n_points]).collect();
        let rounds = (cfg.iters / 512).max(1);
        time(|| {
            for _ in 0..rounds {
                run_threads(cfg.threads, |t| {
                    let base = t * ACC_WORDS;
                    let chunk = n_points / cfg.threads;
                    for &(px, py) in pts.iter().skip(t * chunk).take(chunk) {
                        let best = (0..K)
                            .min_by_key(|&c| dist2(px, py, centroids[c].0, centroids[c].1))
                            .unwrap();
                        accs.add(base + best * 3, px as u64);
                        accs.add(base + best * 3 + 1, py as u64);
                        accs.add(base + best * 3 + 2, 1);
                    }
                });
                for (c, centroid) in centroids.iter_mut().enumerate() {
                    let (mut sx, mut sy, mut n) = (0u64, 0u64, 0u64);
                    for t in 0..cfg.threads {
                        let base = t * ACC_WORDS + c * 3;
                        sx = sx.wrapping_add(accs.load(base));
                        sy = sy.wrapping_add(accs.load(base + 1));
                        n += accs.load(base + 2);
                        accs.store(base, 0);
                        accs.store(base + 1, 0);
                        accs.store(base + 2, 0);
                    }
                    if let (Some(cx), Some(cy)) = (sx.checked_div(n), sy.checked_div(n)) {
                        *centroid = (cx as i64, cy as i64);
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 1024,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&KMeans, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn tracks_many_lines_without_problems() {
        // The kmeans overhead profile: plenty of tracked lines, no findings.
        let s = Session::with_config(DetectorConfig::sensitive());
        KMeans.run_tracked(
            &s,
            &WorkloadConfig {
                iters: 1024,
                ..WorkloadConfig::quick()
            },
        );
        assert!(s.runtime().tracked_lines() > 0);
    }

    #[test]
    fn native_converges_and_completes() {
        let d = KMeans.run_native(&WorkloadConfig {
            iters: 1024,
            ..WorkloadConfig::quick()
        });
        assert!(d.as_nanos() > 0);
    }
}
