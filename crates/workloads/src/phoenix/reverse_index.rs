//! The `reverse_index` benchmark (Table 1, `reverseindex-pthread.c:511`).
//!
//! Workers scan generated documents for links and append them to private
//! buckets, but bump a per-thread length counter in a shared, packed
//! `use_len` array on every insertion. The counters are 8 bytes apiece, so
//! all workers share one or two lines — real false sharing, though with
//! most time spent hashing links the measured improvement from fixing it is
//! tiny (0.09% in the paper). Fixed variant pads the counters.

use std::time::Duration;

use predator_core::{Callsite, Frame, Session, ThreadId};

use crate::common::{gen_words, run_threads, time, SharedWords};
use crate::{Expectation, Suite, Variant, Workload, WorkloadConfig};

fn stride_words(variant: Variant) -> usize {
    match variant {
        Variant::Broken => 1,
        Variant::Fixed => 16,
    }
}

/// Cheap stand-in for the benchmark's link hashing.
fn hash_word(w: &str) -> u64 {
    w.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The `reverse_index` workload.
pub struct ReverseIndex;

impl Workload for ReverseIndex {
    fn name(&self) -> &'static str {
        "reverse_index"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Observed
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let stride = stride_words(cfg.variant) as u64 * 8;
        let links = gen_words(cfg.seed, 512);

        // The packed use_len counter array.
        let use_len = s
            .malloc(
                main,
                cfg.threads as u64 * stride,
                Callsite::from_frames(vec![Frame::new("reverseindex-pthread.c", 511)]),
            )
            .expect("use_len");

        // Private per-thread buckets (large, line-disjoint by allocator).
        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        let buckets: Vec<_> = tids
            .iter()
            .map(|&tid| s.malloc(tid, 4096, Callsite::here()).expect("bucket"))
            .collect();

        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let link = &links[((i * 3 + t as u64) % 512) as usize];
                let h = hash_word(link);
                // Append into the private bucket…
                let slot = buckets[t].start + (h % 512) * 8;
                s.write::<u64>(tid, slot, h);
                // …and bump the shared, packed length counter.
                let c = use_len.start + t as u64 * stride;
                let cur = s.read::<u64>(tid, c);
                s.write::<u64>(tid, c, cur + 1);
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let stride = stride_words(cfg.variant);
        let links = gen_words(cfg.seed, 512);
        let (counters, base) = SharedWords::aligned(cfg.threads * stride + 16, 0);
        time(|| {
            run_threads(cfg.threads, |t| {
                let mut bucket = vec![0u64; 512];
                for i in 0..cfg.iters {
                    let link = &links[((i * 3 + t as u64) % 512) as usize];
                    let h = hash_word(link);
                    bucket[(h % 512) as usize] = h;
                    counters.add(base + t * stride, 1);
                }
                std::hint::black_box(&bucket);
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn broken_variant_observed() {
        let r = run_and_report(
            &ReverseIndex,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(r.has_observed_false_sharing(), "{r}");
        assert!(r
            .false_sharing()
            .next()
            .unwrap()
            .to_string()
            .contains("reverseindex-pthread.c:511"));
    }

    #[test]
    fn fixed_variant_is_clean() {
        let r = run_and_report(
            &ReverseIndex,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick().with_variant(Variant::Fixed),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn counters_add_up() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 300,
            threads: 4,
            ..WorkloadConfig::quick()
        };
        ReverseIndex.run_tracked(&s, &cfg);
        let use_len = s
            .heap()
            .live_objects()
            .into_iter()
            .find(|o| o.size == 4 * 8)
            .expect("use_len object");
        for t in 0..4u64 {
            assert_eq!(s.read_untracked::<u64>(use_len.start + t * 8), 300);
        }
    }

    #[test]
    fn native_run_completes() {
        let d = ReverseIndex.run_native(&WorkloadConfig::quick());
        assert!(d.as_nanos() > 0);
    }
}
