//! The `matrix_multiply` benchmark — no false sharing.
//!
//! Classic row-partitioned `C = A × B`: every worker writes a disjoint band
//! of output rows, and a row (≥ 8 doubles) spans whole cache lines, so no
//! line has two writers. The paper lists it among the low-overhead,
//! problem-free workloads ("I/O-bound" tier of Figure 7).

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{run_threads, thread_rng, time};
use crate::{Expectation, Suite, Workload, WorkloadConfig};
use rand::Rng;

/// Matrix dimension (square): small enough to keep tracked runs quick,
/// large enough that a row spans multiple cache lines.
const N: usize = 24;

/// The `matrix_multiply` workload.
pub struct MatrixMultiply;

impl Workload for MatrixMultiply {
    fn name(&self) -> &'static str {
        "matrix_multiply"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let bytes = (N * N * 8) as u64;
        let a = s.malloc(main, bytes, Callsite::here()).expect("A");
        let b = s.malloc(main, bytes, Callsite::here()).expect("B");
        let c = s.malloc(main, bytes, Callsite::here()).expect("C");
        let mut rng = thread_rng(cfg.seed, 0);
        for i in 0..(N * N) as u64 {
            s.write_untracked::<u64>(a.start + i * 8, rng.gen_range(0..64));
            s.write_untracked::<u64>(b.start + i * 8, rng.gen_range(0..64));
        }

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        // `iters` controls how many times the multiply repeats (the Phoenix
        // benchmark loops over blocks; repetition models the access volume).
        let reps = (cfg.iters / 64).max(1);
        for _ in 0..reps {
            for row in 0..N {
                let t = row % cfg.threads;
                let tid = tids[t];
                for col in 0..N {
                    let mut acc = 0u64;
                    for k in 0..N {
                        let av = s.read::<u64>(tid, a.start + ((row * N + k) as u64) * 8);
                        let bv = s.read::<u64>(tid, b.start + ((k * N + col) as u64) * 8);
                        acc = acc.wrapping_add(av.wrapping_mul(bv));
                    }
                    s.write::<u64>(tid, c.start + ((row * N + col) as u64) * 8, acc);
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let mut rng = thread_rng(cfg.seed, 0);
        let n = 128usize;
        let a: Vec<u64> = (0..n * n).map(|_| rng.gen_range(0..64)).collect();
        let b: Vec<u64> = (0..n * n).map(|_| rng.gen_range(0..64)).collect();
        let c = crate::common::SharedWords::new(n * n);
        let reps = (cfg.iters / 2_000).max(1);
        time(|| {
            run_threads(cfg.threads, |t| {
                for _ in 0..reps {
                    let mut row = t;
                    while row < n {
                        for col in 0..n {
                            let mut acc = 0u64;
                            for k in 0..n {
                                acc = acc.wrapping_add(a[row * n + k].wrapping_mul(b[k * n + col]));
                            }
                            c.store(row * n + col, acc);
                        }
                        row += cfg.threads;
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let cfg = WorkloadConfig {
            iters: 128,
            ..WorkloadConfig::quick()
        };
        let r = run_and_report(&MatrixMultiply, DetectorConfig::sensitive(), &cfg);
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn result_matches_reference() {
        let s = Session::with_config(DetectorConfig::sensitive());
        let cfg = WorkloadConfig {
            iters: 64,
            threads: 2,
            ..WorkloadConfig::quick()
        };
        MatrixMultiply.run_tracked(&s, &cfg);
        // Identify A, B, C by allocation order among the three N×N objects.
        let objs = s.heap().live_objects();
        let mut mats: Vec<_> = objs
            .iter()
            .filter(|o| o.size == (N * N * 8) as u64)
            .collect();
        mats.sort_by_key(|o| o.seq);
        assert_eq!(mats.len(), 3);
        let read = |o: &predator_core::ObjectInfo, i: usize| {
            s.read_untracked::<u64>(o.start + (i as u64) * 8)
        };
        // Reference multiply for one element.
        let (row, col) = (3, 5);
        let mut acc = 0u64;
        for k in 0..N {
            acc = acc
                .wrapping_add(read(mats[0], row * N + k).wrapping_mul(read(mats[1], k * N + col)));
        }
        assert_eq!(read(mats[2], row * N + col), acc);
    }

    #[test]
    fn native_run_completes() {
        let d = MatrixMultiply.run_native(&WorkloadConfig {
            iters: 2_000,
            threads: 2,
            ..WorkloadConfig::quick()
        });
        assert!(d.as_nanos() > 0);
    }
}
