//! The `string_match` benchmark — no false sharing (absent from Table 1).
//!
//! Workers compare generated candidate strings against a small key set and
//! record at most a handful of match flags. Writes to shared memory are so
//! rare that no cache line ever crosses the tracking threshold: the workload
//! is the detector's *negative control* for write-starved programs.

use std::time::Duration;

use predator_core::{Callsite, Session, ThreadId};

use crate::common::{gen_words, run_threads, time, SharedWords};
use crate::{Expectation, Suite, Workload, WorkloadConfig};

/// The `string_match` workload.
pub struct StringMatch;

impl Workload for StringMatch {
    fn name(&self) -> &'static str {
        "string_match"
    }

    fn suite(&self) -> Suite {
        Suite::Phoenix
    }

    fn expectation(&self) -> Expectation {
        Expectation::Clean
    }

    fn run_tracked(&self, s: &Session, cfg: &WorkloadConfig) {
        let main = s.register_thread();
        let keys = gen_words(cfg.seed ^ 0x6b65, 4);
        let candidates = gen_words(cfg.seed, 1024);

        // Store candidates in simulated memory so scanning produces reads.
        let cand_bytes: u64 = 1024 * 8;
        let buf = s
            .malloc(main, cand_bytes, Callsite::here())
            .expect("candidates");
        for (i, c) in candidates.iter().enumerate() {
            // First 8 bytes (padded) of each candidate, as a word.
            let mut w = [0u8; 8];
            for (j, b) in c.bytes().take(8).enumerate() {
                w[j] = b;
            }
            s.write_untracked::<u64>(buf.start + (i as u64) * 8, u64::from_le_bytes(w));
        }
        let key_words: Vec<u64> = keys
            .iter()
            .map(|k| {
                let mut w = [0u8; 8];
                for (j, b) in k.bytes().take(8).enumerate() {
                    w[j] = b;
                }
                u64::from_le_bytes(w)
            })
            .collect();

        // Per-thread match flags: written at most once per key — far below
        // any tracking threshold.
        let flags = s
            .malloc(main, cfg.threads as u64 * 8, Callsite::here())
            .expect("match flags");

        let tids: Vec<ThreadId> = (0..cfg.threads).map(|_| s.register_thread()).collect();
        for i in 0..cfg.iters {
            for (t, &tid) in tids.iter().enumerate() {
                let c = s.read::<u64>(tid, buf.start + ((i + t as u64 * 13) % 1024) * 8);
                if key_words.contains(&c) {
                    s.write::<u64>(tid, flags.start + t as u64 * 8, i);
                }
            }
        }
    }

    fn run_native(&self, cfg: &WorkloadConfig) -> Duration {
        let keys = gen_words(cfg.seed ^ 0x6b65, 4);
        let candidates = gen_words(cfg.seed, 1024);
        let flags = SharedWords::new(cfg.threads * 8);
        time(|| {
            run_threads(cfg.threads, |t| {
                for i in 0..cfg.iters {
                    let c = &candidates[((i + t as u64 * 13) % 1024) as usize];
                    if keys.iter().any(|k| k == c) {
                        flags.store(t * 8, i);
                    }
                }
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_report;
    use predator_core::DetectorConfig;

    #[test]
    fn no_false_sharing_reported() {
        let r = run_and_report(
            &StringMatch,
            DetectorConfig::sensitive(),
            &WorkloadConfig::quick(),
        );
        assert!(!r.has_false_sharing(), "{r}");
    }

    #[test]
    fn read_heavy_lines_stay_untracked() {
        let s = Session::with_config(DetectorConfig::sensitive());
        StringMatch.run_tracked(&s, &WorkloadConfig::quick());
        // The candidate buffer is only read; reads never advance the
        // threshold, so the whole workload tracks (almost) nothing.
        assert_eq!(
            s.runtime().tracked_lines(),
            0,
            "no line should reach the threshold"
        );
    }

    #[test]
    fn native_run_completes() {
        assert!(StringMatch.run_native(&WorkloadConfig::quick()).as_nanos() > 0);
    }
}
