//! Phoenix benchmark suite analogues (Table 1, upper half).
//!
//! Tracked runs interleave the logical threads round-robin on the calling
//! thread — the deterministic, adversarial schedule PREDATOR conservatively
//! assumes (§3.3) — so detection results and invalidation counts are exactly
//! reproducible. Native runs use real OS threads and real memory for
//! wall-clock measurements (Figure 2, Table 1's Improvement column).

pub mod histogram;
pub mod kmeans;
pub mod linear_regression;
pub mod matrix_multiply;
pub mod pca;
pub mod reverse_index;
pub mod string_match;
pub mod word_count;
