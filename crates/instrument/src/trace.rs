//! Access-trace recording and replay.
//!
//! Decouples event collection from analysis: record a run once (to memory or
//! a JSON-lines file), replay it into differently-configured detectors —
//! e.g. to compare sampling rates (Figure 10) or prediction on/off
//! (Figure 7) on *identical* access streams, something the paper's live-only
//! runtime cannot do.

use std::io::{BufRead, Write};

use std::sync::Mutex;

use predator_core::Predator;
use predator_sim::{Access, AccessKind, ThreadId};

use crate::interp::AccessSink;

/// An [`AccessSink`] that appends every event to an in-memory trace.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<Access>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the recorded events, in arrival order.
    pub fn events(&self) -> Vec<Access> {
        self.events.lock().unwrap().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_events(self) -> Vec<Access> {
        self.events.into_inner().unwrap()
    }
}

impl AccessSink for TraceRecorder {
    fn access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        self.events.lock().unwrap().push(Access { tid, addr, size, kind });
    }
}

/// Writes a trace as JSON lines (one [`Access`] per line).
pub fn save_jsonl<W: Write>(events: &[Access], mut w: W) -> std::io::Result<()> {
    for e in events {
        serde_json::to_writer(&mut w, e)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON-lines trace; blank lines are skipped.
pub fn load_jsonl<R: BufRead>(r: R) -> std::io::Result<Vec<Access>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line)?);
    }
    Ok(out)
}

/// Replays a trace into a detector runtime, in order.
pub fn replay(events: &[Access], rt: &Predator) {
    for e in events {
        rt.handle_access(e.tid, e.addr, e.size, e.kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::DetectorConfig;

    fn ping_pong_trace(n: u64, base: u64) -> Vec<Access> {
        (0..n)
            .map(|i| Access::write(ThreadId((i % 2) as u16), base + (i % 2) * 8, 8))
            .collect()
    }

    #[test]
    fn recorder_preserves_order() {
        let rec = TraceRecorder::new();
        rec.access(ThreadId(0), 0x100, 8, AccessKind::Write);
        rec.access(ThreadId(1), 0x108, 4, AccessKind::Read);
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0], Access::write(ThreadId(0), 0x100, 8));
        assert_eq!(ev[1], Access::read(ThreadId(1), 0x108, 4));
        assert_eq!(rec.into_events().len(), 2);
    }

    #[test]
    fn jsonl_roundtrip() {
        let trace = ping_pong_trace(10, 0x4000_0000);
        let mut buf = Vec::new();
        save_jsonl(&trace, &mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 10);
        let back = load_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let input = b"\n\n".to_vec();
        assert!(load_jsonl(std::io::Cursor::new(input)).unwrap().is_empty());
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let input = b"not json\n".to_vec();
        assert!(load_jsonl(std::io::Cursor::new(input)).is_err());
    }

    #[test]
    fn replay_reproduces_detection() {
        let base = 0x4000_0000;
        let trace = ping_pong_trace(400, base);
        let rt = Predator::new(DetectorConfig::sensitive(), base, 1 << 16);
        replay(&trace, &rt);
        let snap = rt.line_snapshot(0).unwrap();
        // 4 pre-threshold writes, then strict alternation.
        assert_eq!(snap.invalidations, 395);
        assert_eq!(rt.events(), 400);
    }

    #[test]
    fn same_trace_different_configs() {
        // The decoupling the module exists for: one trace, two detectors.
        let base = 0x4000_0000;
        let trace = ping_pong_trace(400, base);
        let with = Predator::new(DetectorConfig::sensitive(), base, 1 << 16);
        let mut cfg = DetectorConfig::sensitive();
        cfg.instrument_reads = false;
        let without_reads = Predator::new(cfg, base, 1 << 16);
        replay(&trace, &with);
        replay(&trace, &without_reads);
        // All-write trace: identical results either way.
        assert_eq!(
            with.line_snapshot(0).unwrap().invalidations,
            without_reads.line_snapshot(0).unwrap().invalidations
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let rec = std::sync::Arc::new(TraceRecorder::new());
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        rec.access(ThreadId(t), 0x100, 8, AccessKind::Write);
                    }
                });
            }
        });
        assert_eq!(rec.len(), 4000);
    }
}
