//! Access-trace recording and replay.
//!
//! Decouples event collection from analysis: record a run once (to memory,
//! a JSON-lines file, or a binary `.ptrace` file via [`predator_trace`]),
//! replay it into differently-configured detectors — e.g. to compare
//! sampling rates (Figure 10) or prediction on/off (Figure 7) on
//! *identical* access streams, something the paper's live-only runtime
//! cannot do.
//!
//! [`TraceRecorder`] buffers events in thread-local segments
//! ([`predator_trace::SegmentedSink`]) instead of taking one global mutex
//! per event, so recording threads no longer contend on the hot path. The
//! trade: cross-thread event order is now segment-granular — each thread's
//! events stay in issue order, but two threads' events interleave only
//! where their segments happened to flush. The per-line detector state
//! never depends on cross-thread order, so replay results are unaffected;
//! tests asserting global interleavings would be (none do — the
//! concurrency test asserts counts).

use std::sync::{Arc, Mutex};

use predator_core::Predator;
use predator_sim::{Access, AccessKind, ThreadId};
use predator_trace::{BatchSink, SegmentedSink};

// JSONL codecs live in `predator-trace` now; re-exported here so existing
// `predator_instrument::{load_jsonl, save_jsonl}` paths keep working.
pub use predator_trace::{load_jsonl, save_jsonl, JsonlIter};

use crate::interp::AccessSink;

/// Append-only store the segments drain into; one lock per *segment*, not
/// per event.
struct StoreBatch(Arc<Mutex<Vec<Access>>>);

impl BatchSink for StoreBatch {
    fn batch(&self, events: &mut Vec<Access>) {
        self.0.lock().unwrap().append(events);
    }
}

/// An [`AccessSink`] that appends every event to an in-memory trace,
/// buffered through thread-local segments.
///
/// Readers ([`events`](Self::events), [`len`](Self::len),
/// [`into_events`](Self::into_events)) drain every thread's segment first,
/// so anything recorded before the call is visible — no explicit flush
/// needed. See the module docs for the cross-thread ordering caveat.
pub struct TraceRecorder {
    store: Arc<Mutex<Vec<Access>>>,
    seg: SegmentedSink,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        let store = Arc::new(Mutex::new(Vec::new()));
        let seg = SegmentedSink::new(Box::new(StoreBatch(store.clone())));
        TraceRecorder { store, seg }
    }

    /// A copy of the recorded events (all threads' segments drained first).
    pub fn events(&self) -> Vec<Access> {
        self.seg.flush_all();
        self.store.lock().unwrap().clone()
    }

    /// Number of recorded events (all threads' segments drained first).
    pub fn len(&self) -> usize {
        self.seg.flush_all();
        self.store.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_events(self) -> Vec<Access> {
        self.seg.flush_all();
        drop(self.seg); // releases the sink's clone of the store
        match Arc::try_unwrap(self.store) {
            Ok(m) => m.into_inner().unwrap(),
            Err(arc) => arc.lock().unwrap().clone(),
        }
    }
}

impl AccessSink for TraceRecorder {
    #[inline]
    fn access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        self.seg.access(tid, addr, size, kind);
    }
}

/// Replays a trace into a detector runtime, in order.
pub fn replay(events: &[Access], rt: &Predator) {
    for e in events {
        rt.handle_access(e.tid, e.addr, e.size, e.kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::DetectorConfig;

    fn ping_pong_trace(n: u64, base: u64) -> Vec<Access> {
        (0..n)
            .map(|i| Access::write(ThreadId((i % 2) as u16), base + (i % 2) * 8, 8))
            .collect()
    }

    #[test]
    fn recorder_preserves_order() {
        let rec = TraceRecorder::new();
        rec.access(ThreadId(0), 0x100, 8, AccessKind::Write);
        rec.access(ThreadId(1), 0x108, 4, AccessKind::Read);
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0], Access::write(ThreadId(0), 0x100, 8));
        assert_eq!(ev[1], Access::read(ThreadId(1), 0x108, 4));
        assert_eq!(rec.into_events().len(), 2);
    }

    #[test]
    fn jsonl_roundtrip() {
        let trace = ping_pong_trace(10, 0x4000_0000);
        let mut buf = Vec::new();
        save_jsonl(&trace, &mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 10);
        let back = load_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let input = b"\n\n".to_vec();
        assert!(load_jsonl(std::io::Cursor::new(input)).unwrap().is_empty());
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let input = b"not json\n".to_vec();
        assert!(load_jsonl(std::io::Cursor::new(input)).is_err());
    }

    #[test]
    fn replay_reproduces_detection() {
        let base = 0x4000_0000;
        let trace = ping_pong_trace(400, base);
        let rt = Predator::new(DetectorConfig::sensitive(), base, 1 << 16);
        replay(&trace, &rt);
        let snap = rt.line_snapshot(0).unwrap();
        // 4 pre-threshold writes, then strict alternation.
        assert_eq!(snap.invalidations, 395);
        assert_eq!(rt.events(), 400);
    }

    #[test]
    fn same_trace_different_configs() {
        // The decoupling the module exists for: one trace, two detectors.
        let base = 0x4000_0000;
        let trace = ping_pong_trace(400, base);
        let with = Predator::new(DetectorConfig::sensitive(), base, 1 << 16);
        let mut cfg = DetectorConfig::sensitive();
        cfg.instrument_reads = false;
        let without_reads = Predator::new(cfg, base, 1 << 16);
        replay(&trace, &with);
        replay(&trace, &without_reads);
        // All-write trace: identical results either way.
        assert_eq!(
            with.line_snapshot(0).unwrap().invalidations,
            without_reads.line_snapshot(0).unwrap().invalidations
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Cross-thread *order* is segment-granular (see module docs); the
        // count is exact: len() drains every thread's segment first.
        let rec = std::sync::Arc::new(TraceRecorder::new());
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        rec.access(ThreadId(t), 0x100, 8, AccessKind::Write);
                    }
                });
            }
        });
        assert_eq!(rec.len(), 4000);
    }

    #[test]
    fn recorder_keeps_per_thread_order_across_segments() {
        let rec = TraceRecorder::new();
        std::thread::scope(|s| {
            for t in 0..2u16 {
                let rec = &rec;
                s.spawn(move || {
                    // Far more than one segment's worth, to force flushes.
                    for i in 0..10_000u64 {
                        rec.access(ThreadId(t), i * 8, 8, AccessKind::Write);
                    }
                });
            }
        });
        let ev = rec.into_events();
        assert_eq!(ev.len(), 20_000);
        for t in 0..2u16 {
            let addrs: Vec<u64> = ev
                .iter()
                .filter(|a| a.tid == ThreadId(t))
                .map(|a| a.addr)
                .collect();
            assert!(
                addrs.windows(2).all(|w| w[1] > w[0]),
                "thread {t} reordered"
            );
        }
    }
}
