//! Block-local optimization passes.
//!
//! The paper places its instrumentation pass "at the very end of the LLVM
//! optimization passes so that only those memory accesses surviving all
//! previous LLVM optimization passes are instrumented" (§2.2) — the
//! optimizer removes accesses, and the instrumenter must run afterwards to
//! avoid probing ghosts. These passes give the mini-IR the same property to
//! demonstrate and test that ordering:
//!
//! * [`constant_fold`] — `op imm, imm` becomes `mov` of the result;
//! * [`copy_propagate`] — uses of a register that was `mov`ed from an
//!   immediate or another register read the source directly (block-local);
//! * [`redundant_load_elim`] — a reload of the same `(base, offset, size)`
//!   with no intervening store or base redefinition becomes a `mov` from
//!   the previous load's destination (block-local, conservative: any store
//!   kills all remembered loads);
//! * [`dead_store_elim`] — a store fully overwritten by a later store to
//!   the identical `(base, offset, size)` in the same block, with no
//!   intervening load, call, or probe, is removed.
//!
//! Instrumenting after [`optimize`] therefore yields strictly fewer probes
//! on code with redundant loads than instrumenting before it (see tests).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ir::{Block, Inst, Module, Operand, Reg};

/// What the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Binary operations folded to constants.
    pub folded: usize,
    /// Operand uses rewritten by copy propagation.
    pub propagated: usize,
    /// Loads replaced by register moves.
    pub loads_eliminated: usize,
    /// Stores removed as dead (fully overwritten in-block).
    pub stores_eliminated: usize,
}

/// Runs all passes over every block of `module` until a fixpoint, returning
/// cumulative statistics.
pub fn optimize(module: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    loop {
        let mut round = OptStats::default();
        for func in &mut module.functions {
            for block in &mut func.blocks {
                round.propagated += copy_propagate(block);
                round.folded += constant_fold(block);
                round.loads_eliminated += redundant_load_elim(block);
                round.stores_eliminated += dead_store_elim(block);
            }
        }
        total.folded += round.folded;
        total.propagated += round.propagated;
        total.loads_eliminated += round.loads_eliminated;
        total.stores_eliminated += round.stores_eliminated;
        if round == OptStats::default() {
            return total;
        }
    }
}

/// Folds `Bin` instructions with two immediate operands into `Mov`s.
pub fn constant_fold(block: &mut Block) -> usize {
    let mut n = 0;
    for inst in &mut block.insts {
        if let Inst::Bin {
            op,
            dst,
            a: Operand::Imm(a),
            b: Operand::Imm(b),
        } = *inst
        {
            if let Some(v) = super::interp::apply_for_opt(op, a, b) {
                *inst = Inst::Mov {
                    dst,
                    src: Operand::Imm(v),
                };
                n += 1;
            }
        }
    }
    n
}

/// Rewrites operand uses through block-local `Mov` chains.
pub fn copy_propagate(block: &mut Block) -> usize {
    let mut copies: HashMap<Reg, Operand> = HashMap::new();
    let mut n = 0;

    let resolve = |copies: &HashMap<Reg, Operand>, op: Operand, n: &mut usize| -> Operand {
        if let Operand::Reg(r) = op {
            if let Some(&src) = copies.get(&r) {
                *n += 1;
                return src;
            }
        }
        op
    };

    for inst in &mut block.insts {
        // Rewrite uses first.
        match inst {
            Inst::Mov { src, .. } => *src = resolve(&copies, *src, &mut n),
            Inst::Bin { a, b, .. } => {
                *a = resolve(&copies, *a, &mut n);
                *b = resolve(&copies, *b, &mut n);
            }
            Inst::Load { base, .. } | Inst::Probe { base, .. } => {
                *base = resolve(&copies, *base, &mut n);
            }
            Inst::Store { src, base, .. } => {
                *src = resolve(&copies, *src, &mut n);
                *base = resolve(&copies, *base, &mut n);
            }
            Inst::Br { cond, .. } => *cond = resolve(&copies, *cond, &mut n),
            Inst::Ret { value: Some(v) } => *v = resolve(&copies, *v, &mut n),
            Inst::Call { args, argc, .. } => {
                for a in args.iter_mut().take(*argc as usize) {
                    *a = resolve(&copies, *a, &mut n);
                }
            }
            Inst::Ret { value: None } | Inst::Jmp { .. } => {}
        }
        // Then update definitions.
        match *inst {
            Inst::Mov { dst, src } => {
                // Invalidate copies that referenced dst.
                copies.retain(|_, v| *v != Operand::Reg(dst));
                if src != Operand::Reg(dst) {
                    copies.insert(dst, src);
                } else {
                    copies.remove(&dst);
                }
            }
            Inst::Bin { dst, .. } | Inst::Load { dst, .. } => {
                copies.remove(&dst);
                copies.retain(|_, v| *v != Operand::Reg(dst));
            }
            Inst::Call { dst: Some(dst), .. } => {
                copies.remove(&dst);
                copies.retain(|_, v| *v != Operand::Reg(dst));
            }
            _ => {}
        }
    }
    n
}

/// Replaces reloads of an address already loaded in this block (with no
/// intervening store or base redefinition) with a `Mov` from the earlier
/// destination.
pub fn redundant_load_elim(block: &mut Block) -> usize {
    type Key = (Operand, i64, u8);
    let mut known: HashMap<Key, Reg> = HashMap::new();
    let mut n = 0;
    for inst in &mut block.insts {
        match *inst {
            Inst::Load {
                dst,
                base,
                offset,
                size,
            } => {
                if let Some(&prev) = known.get(&(base, offset, size)) {
                    if prev != dst {
                        *inst = Inst::Mov {
                            dst,
                            src: Operand::Reg(prev),
                        };
                        n += 1;
                        // dst redefinition invalidates entries using it.
                        known.retain(|(b, _, _), v| *v != dst && *b != Operand::Reg(dst));
                        continue;
                    }
                }
                // Redefining dst invalidates remembered loads into/based on it.
                known.retain(|(b, _, _), v| *v != dst && *b != Operand::Reg(dst));
                known.insert((base, offset, size), dst);
            }
            Inst::Store { .. } | Inst::Call { .. } => {
                // Conservative: any store — or any callee, which may store
                // anywhere — invalidates all remembered loads. A call also
                // clobbers its destination register, handled below via the
                // full clear.
                known.clear();
            }
            Inst::Mov { dst, .. } | Inst::Bin { dst, .. } => {
                known.retain(|(b, _, _), v| *v != dst && *b != Operand::Reg(dst));
            }
            _ => {}
        }
    }
    n
}

/// Removes stores fully overwritten by a later store to the identical
/// `(base, offset, size)` within the block, with no intervening load, call,
/// or probe (any of which could observe the earlier value; a differently
/// shaped store does not count as full overwrite and blocks nothing).
pub fn dead_store_elim(block: &mut Block) -> usize {
    type Key = (Operand, i64, u8);
    let mut overwritten: std::collections::HashSet<Key> = std::collections::HashSet::new();
    let mut remove = vec![false; block.insts.len()];
    for (i, inst) in block.insts.iter().enumerate().rev() {
        match *inst {
            Inst::Store {
                base, offset, size, ..
            } => {
                if overwritten.contains(&(base, offset, size)) {
                    remove[i] = true;
                } else {
                    overwritten.insert((base, offset, size));
                }
            }
            // Anything that might read memory — or redefine a base register
            // an overwriting store depends on — invalidates the set.
            Inst::Load { .. } | Inst::Call { .. } | Inst::Probe { .. } => overwritten.clear(),
            Inst::Mov { dst, .. } | Inst::Bin { dst, .. } => {
                overwritten.retain(|(b, _, _)| *b != Operand::Reg(dst));
            }
            Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. } => {}
        }
    }
    let n = remove.iter().filter(|&&r| r).count();
    if n > 0 {
        let mut i = 0;
        block.insts.retain(|_| {
            let keep = !remove[i];
            i += 1;
            keep
        });
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, FunctionBuilder, Module};
    use crate::pass::{instrument_module, InstrumentOptions};

    fn single_block(insts: Vec<Inst>) -> Block {
        Block { insts }
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = single_block(vec![
            Inst::Bin {
                op: BinOp::Add,
                dst: 0,
                a: Operand::Imm(2),
                b: Operand::Imm(3),
            },
            Inst::Bin {
                op: BinOp::Mul,
                dst: 1,
                a: Operand::Reg(0),
                b: Operand::Imm(3),
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(constant_fold(&mut b), 1);
        assert_eq!(
            b.insts[0],
            Inst::Mov {
                dst: 0,
                src: Operand::Imm(5)
            }
        );
        // Register operand not folded.
        assert!(matches!(b.insts[1], Inst::Bin { .. }));
    }

    #[test]
    fn fold_skips_division_by_zero() {
        let mut b = single_block(vec![
            Inst::Bin {
                op: BinOp::Div,
                dst: 0,
                a: Operand::Imm(1),
                b: Operand::Imm(0),
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(
            constant_fold(&mut b),
            0,
            "UB-producing folds must not happen"
        );
    }

    #[test]
    fn propagates_copies_through_uses() {
        let mut b = single_block(vec![
            Inst::Mov {
                dst: 0,
                src: Operand::Imm(7),
            },
            Inst::Bin {
                op: BinOp::Add,
                dst: 1,
                a: Operand::Reg(0),
                b: Operand::Reg(0),
            },
            Inst::Ret {
                value: Some(Operand::Reg(1)),
            },
        ]);
        assert_eq!(copy_propagate(&mut b), 2);
        assert_eq!(
            b.insts[1],
            Inst::Bin {
                op: BinOp::Add,
                dst: 1,
                a: Operand::Imm(7),
                b: Operand::Imm(7)
            }
        );
    }

    #[test]
    fn propagation_respects_redefinition() {
        let mut b = single_block(vec![
            Inst::Mov {
                dst: 0,
                src: Operand::Imm(7),
            },
            Inst::Mov {
                dst: 0,
                src: Operand::Imm(9),
            },
            Inst::Ret {
                value: Some(Operand::Reg(0)),
            },
        ]);
        copy_propagate(&mut b);
        assert_eq!(
            b.insts[2],
            Inst::Ret {
                value: Some(Operand::Imm(9))
            }
        );
    }

    #[test]
    fn propagation_invalidated_when_source_changes() {
        let mut b = single_block(vec![
            Inst::Mov {
                dst: 1,
                src: Operand::Reg(0),
            }, // r1 = r0
            Inst::Mov {
                dst: 0,
                src: Operand::Imm(5),
            }, // r0 changes!
            Inst::Ret {
                value: Some(Operand::Reg(1)),
            }, // must NOT become r0/5
        ]);
        copy_propagate(&mut b);
        assert_eq!(
            b.insts[2],
            Inst::Ret {
                value: Some(Operand::Reg(1))
            }
        );
    }

    #[test]
    fn eliminates_redundant_loads() {
        let mut b = single_block(vec![
            Inst::Load {
                dst: 1,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Load {
                dst: 2,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret {
                value: Some(Operand::Reg(2)),
            },
        ]);
        assert_eq!(redundant_load_elim(&mut b), 1);
        assert_eq!(
            b.insts[1],
            Inst::Mov {
                dst: 2,
                src: Operand::Reg(1)
            }
        );
    }

    #[test]
    fn stores_kill_remembered_loads() {
        let mut b = single_block(vec![
            Inst::Load {
                dst: 1,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Store {
                src: Operand::Imm(1),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Load {
                dst: 2,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(
            redundant_load_elim(&mut b),
            0,
            "store invalidates the reload"
        );
    }

    #[test]
    fn base_redefinition_kills_remembered_loads() {
        let mut b = single_block(vec![
            Inst::Load {
                dst: 1,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Bin {
                op: BinOp::Add,
                dst: 0,
                a: Operand::Reg(0),
                b: Operand::Imm(8),
            },
            Inst::Load {
                dst: 2,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(redundant_load_elim(&mut b), 0);
    }

    #[test]
    fn dead_store_removed() {
        let mut b = single_block(vec![
            Inst::Store {
                src: Operand::Imm(1),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Store {
                src: Operand::Imm(2),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(dead_store_elim(&mut b), 1);
        assert_eq!(b.insts.len(), 2);
        assert_eq!(
            b.insts[0],
            Inst::Store {
                src: Operand::Imm(2),
                base: Operand::Reg(0),
                offset: 0,
                size: 8
            }
        );
    }

    #[test]
    fn intervening_load_keeps_the_store() {
        let mut b = single_block(vec![
            Inst::Store {
                src: Operand::Imm(1),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Load {
                dst: 1,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Store {
                src: Operand::Imm(2),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(dead_store_elim(&mut b), 0);
    }

    #[test]
    fn different_size_store_is_not_a_full_overwrite() {
        let mut b = single_block(vec![
            Inst::Store {
                src: Operand::Imm(1),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Store {
                src: Operand::Imm(2),
                base: Operand::Reg(0),
                offset: 0,
                size: 4,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(dead_store_elim(&mut b), 0);
    }

    #[test]
    fn base_redefinition_between_stores_keeps_both() {
        // r0 changes between the stores: they hit different addresses.
        let mut b = single_block(vec![
            Inst::Store {
                src: Operand::Imm(1),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Bin {
                op: BinOp::Add,
                dst: 0,
                a: Operand::Reg(0),
                b: Operand::Imm(64),
            },
            Inst::Store {
                src: Operand::Imm(2),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(dead_store_elim(&mut b), 0);
    }

    #[test]
    fn last_store_always_survives() {
        let mut b = single_block(vec![
            Inst::Store {
                src: Operand::Imm(1),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Store {
                src: Operand::Imm(2),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Store {
                src: Operand::Imm(3),
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ]);
        assert_eq!(dead_store_elim(&mut b), 2);
        assert_eq!(
            b.insts[0],
            Inst::Store {
                src: Operand::Imm(3),
                base: Operand::Reg(0),
                offset: 0,
                size: 8
            }
        );
    }

    /// A function that reloads the same address three times per iteration.
    fn chatty_module() -> Module {
        let mut fb = FunctionBuilder::new("chatty", 2);
        let i = fb.reg();
        fb.mov(i, 0i64);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.select_block(head);
        let c = fb.bin(BinOp::Lt, i, Operand::Reg(1));
        fb.br(c, body, exit);
        fb.select_block(body);
        let a = fb.load(0u32, 0);
        let b = fb.load(0u32, 0); // redundant
        let c2 = fb.load(0u32, 0); // redundant
        let s1 = fb.bin(BinOp::Add, a, b);
        let s2 = fb.bin(BinOp::Add, s1, c2);
        fb.store(0u32, 0, Operand::Reg(s2));
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.mov(i, Operand::Reg(i2));
        fb.jmp(head);
        fb.select_block(exit);
        fb.ret(None);
        Module {
            functions: vec![fb.finish().unwrap()],
        }
    }

    #[test]
    fn optimize_reaches_fixpoint_and_preserves_validity() {
        let mut m = chatty_module();
        let stats = optimize(&mut m);
        assert_eq!(stats.loads_eliminated, 2);
        m.validate().unwrap();
    }

    #[test]
    fn instrumenting_after_optimization_probes_fewer_accesses() {
        // The §2.2 pass-ordering property, as a test: the optimizer removes
        // two redundant loads, so instrumenting afterwards emits fewer
        // probes than instrumenting first. (With the per-block dedup both
        // orders already insert one read probe; disable dedup to measure the
        // raw access count the pass sees.)
        let raw = InstrumentOptions {
            no_selective: true,
            ..Default::default()
        };

        let mut before = chatty_module();
        let stats_before = instrument_module(&mut before, &raw);

        let mut after = chatty_module();
        optimize(&mut after);
        let stats_after = instrument_module(&mut after, &raw);

        assert_eq!(stats_before.accesses_seen, 4, "3 loads + 1 store");
        assert_eq!(stats_after.accesses_seen, 2, "1 load + 1 store survive");
        assert!(stats_after.probes_inserted < stats_before.probes_inserted);
    }

    #[test]
    fn optimization_preserves_program_results() {
        use crate::interp::{Machine, NullSink, StepSchedule, ThreadSpec};
        use predator_shadow::SimSpace;
        use predator_sim::ThreadId;

        let run = |m: &Module| -> i64 {
            let space = SimSpace::new(4096);
            space.store::<u64>(space.base(), 100);
            let machine = Machine::new(m, &space, &NullSink).unwrap();
            machine
                .run(
                    &[ThreadSpec {
                        tid: ThreadId(0),
                        function: "chatty".into(),
                        args: vec![space.base() as i64, 5],
                    }],
                    StepSchedule::RoundRobin { quantum: 1 },
                    100_000,
                )
                .unwrap();
            space.load::<u64>(space.base()) as i64
        };
        let plain = chatty_module();
        let mut opt = chatty_module();
        optimize(&mut opt);
        assert_eq!(
            run(&plain),
            run(&opt),
            "optimization must not change semantics"
        );
    }
}
