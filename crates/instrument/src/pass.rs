//! The instrumentation pass (§2.2, §2.4.2).
//!
//! Walks every function and inserts an [`Inst::Probe`] immediately before
//! each memory access, so the interpreter notifies the runtime with the
//! access address and type — the IR analogue of PREDATOR's LLVM pass, which
//! runs "at the very end of the LLVM optimization passes so that only those
//! memory accesses surviving all previous LLVM optimization passes are
//! instrumented".
//!
//! Selection rules, straight from the paper:
//!
//! * **Per-block dedup** — "PREDATOR only adds instrumentation once for each
//!   type of memory access on each address in the same basic block." The
//!   dedup key is `(kind, base operand, offset, size)` — the static address
//!   expression.
//! * **Write-only mode** — instrument only stores; detects write-write
//!   false sharing at lower overhead, "as SHERIFF does".
//! * **Blacklist / whitelist** — skip named functions, or instrument only
//!   named functions.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use predator_sim::AccessKind;

use crate::ir::{Block, Inst, Module, Operand};

/// Which access kinds to instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstrumentMode {
    /// Probe reads and writes (full detection).
    ReadsAndWrites,
    /// Probe writes only (write-write false sharing, lower overhead).
    WritesOnly,
    /// Probe nothing (baseline for overhead measurements).
    None,
}

/// Pass options.
#[derive(Debug, Clone, Default)]
pub struct InstrumentOptions {
    /// Access kinds to probe.
    pub mode: Option<InstrumentMode>,
    /// Functions never instrumented.
    pub blacklist: Vec<String>,
    /// If set, only these functions are instrumented.
    pub whitelist: Option<Vec<String>>,
    /// Disable the per-block dedup (ablation switch; the paper's selective
    /// instrumentation corresponds to `false`).
    pub no_selective: bool,
}

impl InstrumentOptions {
    fn effective_mode(&self) -> InstrumentMode {
        self.mode.unwrap_or(InstrumentMode::ReadsAndWrites)
    }

    fn function_enabled(&self, name: &str) -> bool {
        if self.blacklist.iter().any(|b| b == name) {
            return false;
        }
        match &self.whitelist {
            Some(wl) => wl.iter().any(|w| w == name),
            None => true,
        }
    }
}

/// What the pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentStats {
    /// Memory accesses seen.
    pub accesses_seen: usize,
    /// Probes inserted.
    pub probes_inserted: usize,
    /// Accesses skipped by the per-block dedup.
    pub deduped: usize,
    /// Accesses skipped by mode/blacklist/whitelist.
    pub filtered: usize,
}

/// Instruments `module` in place; returns statistics.
pub fn instrument_module(module: &mut Module, opts: &InstrumentOptions) -> InstrumentStats {
    let _span = predator_obs::span("instrument");
    let mut stats = InstrumentStats::default();
    let mode = opts.effective_mode();
    for func in &mut module.functions {
        let enabled = opts.function_enabled(&func.name);
        for block in &mut func.blocks {
            instrument_block(block, mode, enabled, opts.no_selective, &mut stats);
        }
    }
    stats
}

fn instrument_block(
    block: &mut Block,
    mode: InstrumentMode,
    enabled: bool,
    no_selective: bool,
    stats: &mut InstrumentStats,
) {
    // Dedup key: static address expression + access type.
    type Key = (AccessKind, Operand, i64, u8);
    let mut seen: HashSet<Key> = HashSet::new();
    let mut out = Vec::with_capacity(block.insts.len());
    for inst in block.insts.drain(..) {
        if let Some((kind, base, offset, size)) = inst.memory_access() {
            stats.accesses_seen += 1;
            let mode_ok = match mode {
                InstrumentMode::ReadsAndWrites => true,
                InstrumentMode::WritesOnly => kind == AccessKind::Write,
                InstrumentMode::None => false,
            };
            if !enabled || !mode_ok {
                stats.filtered += 1;
            } else if !no_selective && !seen.insert((kind, base, offset, size)) {
                stats.deduped += 1;
            } else {
                out.push(Inst::Probe {
                    kind,
                    base,
                    offset,
                    size,
                });
                stats.probes_inserted += 1;
            }
        }
        out.push(inst);
    }
    block.insts = out;
}

/// Counts probes in a module (test/bench helper).
pub fn probe_count(module: &Module) -> usize {
    module
        .functions
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Probe { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Operand};

    /// A block with: load x2 from same address, store to same address,
    /// load from a different offset.
    fn sample_module() -> Module {
        let mut fb = FunctionBuilder::new("work", 1);
        let base = 0u32; // param
        fb.load(base, 0);
        fb.load(base, 0); // duplicate read, same block
        fb.store(base, 0, 7i64); // write to same address: different kind
        fb.load(base, 8); // different offset
        fb.ret(None);
        Module {
            functions: vec![fb.finish().unwrap()],
        }
    }

    #[test]
    fn inserts_probe_before_each_unique_access() {
        let mut m = sample_module();
        let stats = instrument_module(&mut m, &InstrumentOptions::default());
        assert_eq!(stats.accesses_seen, 4);
        assert_eq!(stats.probes_inserted, 3, "duplicate read deduped");
        assert_eq!(stats.deduped, 1);
        assert_eq!(stats.filtered, 0);
        assert_eq!(probe_count(&m), 3);
        m.validate().unwrap();
        // Each probe sits immediately before its access.
        let insts = &m.functions[0].blocks[0].insts;
        for (i, inst) in insts.iter().enumerate() {
            if matches!(inst, Inst::Probe { .. }) {
                assert!(insts[i + 1].memory_access().is_some());
            }
        }
    }

    #[test]
    fn dedup_is_per_block() {
        // Same access in two blocks: instrumented in both.
        let mut fb = FunctionBuilder::new("two_blocks", 1);
        fb.load(0u32, 0);
        let b1 = fb.new_block();
        fb.jmp(b1);
        fb.select_block(b1);
        fb.load(0u32, 0);
        fb.ret(None);
        let mut m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let stats = instrument_module(&mut m, &InstrumentOptions::default());
        assert_eq!(stats.probes_inserted, 2);
        assert_eq!(stats.deduped, 0);
    }

    #[test]
    fn different_sizes_are_distinct_accesses() {
        let mut fb = FunctionBuilder::new("sizes", 1);
        fb.load_sized(0u32, 0, 4);
        fb.load_sized(0u32, 0, 8);
        fb.ret(None);
        let mut m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let stats = instrument_module(&mut m, &InstrumentOptions::default());
        assert_eq!(stats.probes_inserted, 2);
    }

    #[test]
    fn writes_only_mode_filters_reads() {
        let mut m = sample_module();
        let stats = instrument_module(
            &mut m,
            &InstrumentOptions {
                mode: Some(InstrumentMode::WritesOnly),
                ..Default::default()
            },
        );
        assert_eq!(stats.probes_inserted, 1);
        assert_eq!(stats.filtered, 3);
        let probes: Vec<_> = m.functions[0].blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Probe { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(probes, vec![AccessKind::Write]);
    }

    #[test]
    fn none_mode_inserts_nothing() {
        let mut m = sample_module();
        let before = m.clone();
        let stats = instrument_module(
            &mut m,
            &InstrumentOptions {
                mode: Some(InstrumentMode::None),
                ..Default::default()
            },
        );
        assert_eq!(stats.probes_inserted, 0);
        assert_eq!(m, before, "module unchanged");
    }

    #[test]
    fn blacklist_skips_named_functions() {
        let mut m = sample_module();
        let stats = instrument_module(
            &mut m,
            &InstrumentOptions {
                blacklist: vec!["work".into()],
                ..Default::default()
            },
        );
        assert_eq!(stats.probes_inserted, 0);
        assert_eq!(stats.filtered, 4);
    }

    #[test]
    fn whitelist_restricts_to_named_functions() {
        let mut m = sample_module();
        m.functions.push({
            let mut fb = FunctionBuilder::new("other", 1);
            fb.load(0u32, 0);
            fb.ret(None);
            fb.finish().unwrap()
        });
        let stats = instrument_module(
            &mut m,
            &InstrumentOptions {
                whitelist: Some(vec!["other".into()]),
                ..Default::default()
            },
        );
        assert_eq!(stats.probes_inserted, 1, "only `other` instrumented");
    }

    #[test]
    fn no_selective_probes_every_access() {
        let mut m = sample_module();
        let stats = instrument_module(
            &mut m,
            &InstrumentOptions {
                no_selective: true,
                ..Default::default()
            },
        );
        assert_eq!(stats.probes_inserted, 4);
        assert_eq!(stats.deduped, 0);
    }

    #[test]
    fn register_bases_with_same_index_dedup() {
        // Two loads through the same register operand dedup even when the
        // register could hold different values — the pass is static, exactly
        // like the paper's (it reasons about address *expressions*).
        let mut fb = FunctionBuilder::new("dyn", 1);
        fb.load(0u32, 0);
        let t = fb.bin(crate::ir::BinOp::Add, Operand::Reg(0), 64i64);
        fb.mov(0, Operand::Reg(t));
        fb.load(0u32, 0); // same expression, new runtime value
        fb.ret(None);
        let mut m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let stats = instrument_module(&mut m, &InstrumentOptions::default());
        assert_eq!(stats.probes_inserted, 1);
        assert_eq!(stats.deduped, 1);
    }
}
