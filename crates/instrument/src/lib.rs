//! # predator-instrument
//!
//! The compiler-instrumentation substrate of the PREDATOR false-sharing
//! detector (§2.2, §2.4.2).
//!
//! The paper instruments memory accesses with an LLVM pass placed at the end
//! of the optimization pipeline, inserting a runtime call per surviving
//! access, with *selective instrumentation*: only one probe per (address,
//! access type) per basic block, optional write-only mode, and black/white
//! lists. Reproducing an LLVM pass verbatim is out of scope for a pure-Rust
//! build, so this crate provides the same pipeline over a miniature typed IR:
//!
//! * [`ir`] — modules, functions, basic blocks, a register machine with
//!   loads/stores/ALU/branches, and a builder API;
//! * [`pass`] — the instrumentation pass: walks every block and inserts
//!   [`ir::Inst::Probe`] before memory accesses, implementing exactly the
//!   §2.4.2 selection rules;
//! * [`interp`] — a multi-threaded interpreter executing instrumented IR
//!   against a `SimSpace` under a *deterministic, seedable* schedule, so the
//!   interleaving the paper conservatively assumes can be produced on
//!   demand and exact invalidation counts asserted in tests;
//! * [`trace`] — access-trace recording and replay (JSON-lines), decoupling
//!   trace collection from analysis.
//!
//! The detector consumes only the event stream `(thread, address, size,
//! kind)`; a program lowered to this IR and instrumented here produces the
//! same streams the LLVM pass would arrange for the equivalent C program.

pub mod interp;
pub mod ir;
pub mod opt;
pub mod pass;
pub mod textual;
pub mod trace;

pub use interp::{AccessSink, ExecError, Machine, NullSink, StepSchedule, ThreadSpec};
pub use ir::{BinOp, Block, BlockId, Function, FunctionBuilder, Inst, Module, Operand, Reg};
pub use opt::{optimize, OptStats};
pub use pass::{instrument_module, InstrumentMode, InstrumentOptions, InstrumentStats};
pub use textual::{parse_module, print_module, ParseError};
pub use trace::{load_jsonl, replay, save_jsonl, TraceRecorder};
