//! A miniature typed IR: the stand-in for LLVM IR that the instrumentation
//! pass of [`crate::pass`] rewrites.
//!
//! The IR is a register machine over `i64` values. A [`Function`] is a list
//! of [`Block`]s; every block ends in exactly one terminator (`Jmp`, `Br`,
//! or `Ret`). Memory operands are `base + offset` with an explicit access
//! size, which is what gives the instrumentation pass its per-block
//! "(address expression, access type)" dedup key — the same notion of
//! redundancy LLVM-level PREDATOR uses inside a basic block.

use serde::{Deserialize, Serialize};

use predator_sim::AccessKind;

/// Virtual register index.
pub type Reg = u32;

/// Basic-block index within a function.
pub type BlockId = u32;

/// A value operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// A constant.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Binary ALU / comparison operations. Comparisons yield 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = a <op> b`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = mem[base + offset]` (`size` bytes, zero-extended).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address operand.
        base: Operand,
        /// Constant byte offset.
        offset: i64,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
    },
    /// `mem[base + offset] = src` (`size` bytes).
    Store {
        /// Value to store.
        src: Operand,
        /// Base address operand.
        base: Operand,
        /// Constant byte offset.
        offset: i64,
        /// Access size in bytes.
        size: u8,
    },
    /// Runtime notification inserted by the instrumentation pass — the
    /// "function call to invoke the runtime system with the memory access
    /// address and access type" of §2.2. Never written by front ends.
    Probe {
        /// Read or write.
        kind: AccessKind,
        /// Base address operand (evaluated at probe time).
        base: Operand,
        /// Constant byte offset.
        offset: i64,
        /// Access size in bytes.
        size: u8,
    },
    /// Unconditional jump (terminator).
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch (terminator): nonzero → `then_bb`.
    Br {
        /// Condition operand.
        cond: Operand,
        /// Taken target.
        then_bb: BlockId,
        /// Fallthrough target.
        else_bb: BlockId,
    },
    /// Function return (terminator).
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
    /// Direct call: `dst = functions[func](args[..argc])`. Not a terminator;
    /// execution resumes at the next instruction when the callee returns.
    Call {
        /// Register receiving the return value (ignored if the callee
        /// returns nothing).
        dst: Option<Reg>,
        /// Callee index into [`Module::functions`].
        func: u32,
        /// Argument operands (first `argc` entries are meaningful).
        args: [Operand; MAX_CALL_ARGS],
        /// Number of arguments passed.
        argc: u8,
    },
}

/// Maximum arguments per [`Inst::Call`] (keeps `Inst: Copy`).
pub const MAX_CALL_ARGS: usize = 4;

impl Inst {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. })
    }

    /// The memory access this instruction performs, if any:
    /// `(kind, base, offset, size)`.
    pub fn memory_access(&self) -> Option<(AccessKind, Operand, i64, u8)> {
        match *self {
            Inst::Load {
                base, offset, size, ..
            } => Some((AccessKind::Read, base, offset, size)),
            Inst::Store {
                base, offset, size, ..
            } => Some((AccessKind::Write, base, offset, size)),
            _ => None,
        }
    }
}

/// A basic block: straight-line instructions ending in one terminator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Instructions; the last one must be a terminator.
    pub insts: Vec<Inst>,
}

/// A function: `params` registers are pre-filled from thread arguments,
/// execution starts at block 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name (used by black/white lists).
    pub name: String,
    /// Number of leading registers filled from the caller's arguments.
    pub params: u32,
    /// Total virtual registers used.
    pub num_regs: u32,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Validates structural invariants: non-empty blocks, each ending in a
    /// terminator, with in-range targets and registers.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("function {}: no blocks", self.name));
        }
        let nblocks = self.blocks.len() as u32;
        let check_op = |op: Operand| -> Result<(), String> {
            if let Operand::Reg(r) = op {
                if r >= self.num_regs {
                    return Err(format!(
                        "function {}: register r{} out of range",
                        self.name, r
                    ));
                }
            }
            Ok(())
        };
        for (bi, b) in self.blocks.iter().enumerate() {
            let Some(last) = b.insts.last() else {
                return Err(format!("function {}: block {} is empty", self.name, bi));
            };
            if !last.is_terminator() {
                return Err(format!(
                    "function {}: block {} lacks a terminator",
                    self.name, bi
                ));
            }
            for (ii, inst) in b.insts.iter().enumerate() {
                if inst.is_terminator() && ii + 1 != b.insts.len() {
                    return Err(format!(
                        "function {}: block {} has a terminator mid-block",
                        self.name, bi
                    ));
                }
                match *inst {
                    Inst::Bin { dst, a, b, .. } => {
                        check_op(Operand::Reg(dst))?;
                        check_op(a)?;
                        check_op(b)?;
                    }
                    Inst::Mov { dst, src } => {
                        check_op(Operand::Reg(dst))?;
                        check_op(src)?;
                    }
                    Inst::Load {
                        dst, base, size, ..
                    } => {
                        check_op(Operand::Reg(dst))?;
                        check_op(base)?;
                        check_size(&self.name, size)?;
                    }
                    Inst::Store {
                        src, base, size, ..
                    } => {
                        check_op(src)?;
                        check_op(base)?;
                        check_size(&self.name, size)?;
                    }
                    Inst::Probe { base, size, .. } => {
                        check_op(base)?;
                        check_size(&self.name, size)?;
                    }
                    Inst::Jmp { target } => {
                        if target >= nblocks {
                            return Err(format!(
                                "function {}: jump to missing block {}",
                                self.name, target
                            ));
                        }
                    }
                    Inst::Br {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        check_op(cond)?;
                        if then_bb >= nblocks || else_bb >= nblocks {
                            return Err(format!("function {}: branch to missing block", self.name));
                        }
                    }
                    Inst::Ret { value } => {
                        if let Some(v) = value {
                            check_op(v)?;
                        }
                    }
                    Inst::Call {
                        dst, args, argc, ..
                    } => {
                        if argc as usize > MAX_CALL_ARGS {
                            return Err(format!(
                                "function {}: call passes {argc} args (max {MAX_CALL_ARGS})",
                                self.name
                            ));
                        }
                        if let Some(d) = dst {
                            check_op(Operand::Reg(d))?;
                        }
                        for a in args.iter().take(argc as usize) {
                            check_op(*a)?;
                        }
                        // Callee index validated at module level.
                    }
                }
            }
        }
        if self.params > self.num_regs {
            return Err(format!(
                "function {}: more params than registers",
                self.name
            ));
        }
        Ok(())
    }
}

fn check_size(fname: &str, size: u8) -> Result<(), String> {
    if matches!(size, 1 | 2 | 4 | 8) {
        Ok(())
    } else {
        Err(format!("function {fname}: invalid access size {size}"))
    }
}

/// A compilation unit: named functions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// The functions of the module.
    pub functions: Vec<Function>,
}

impl Module {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Validates every function, plus cross-function call targets and
    /// argument counts.
    pub fn validate(&self) -> Result<(), String> {
        self.functions.iter().try_for_each(Function::validate)?;
        for f in &self.functions {
            for inst in f.blocks.iter().flat_map(|b| &b.insts) {
                if let Inst::Call { func, argc, .. } = *inst {
                    let Some(callee) = self.functions.get(func as usize) else {
                        return Err(format!(
                            "function {}: call to missing function index {func}",
                            f.name
                        ));
                    };
                    if argc as u32 > callee.params {
                        return Err(format!(
                            "function {}: call passes {argc} args but `{}` takes {}",
                            f.name, callee.name, callee.params
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total instruction count (for instrumentation-overhead statistics).
    pub fn inst_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.insts.len())
            .sum()
    }
}

/// Convenience builder producing structurally valid functions.
///
/// ```
/// use predator_instrument::ir::{BinOp, FunctionBuilder, Operand};
///
/// // fn sum_to(n) { s = 0; for i in 0..n { s += i }; return s }
/// let mut fb = FunctionBuilder::new("sum_to", 1);
/// let n = 0; // param register
/// let s = fb.reg();
/// let i = fb.reg();
/// fb.mov(s, 0i64);
/// fb.mov(i, 0i64);
/// let loop_head = fb.new_block();
/// fb.jmp(loop_head);
/// fb.select_block(loop_head);
/// let cond = fb.bin(BinOp::Lt, Operand::Reg(i), Operand::Reg(n));
/// let body = fb.new_block();
/// let exit = fb.new_block();
/// fb.br(cond, body, exit);
/// fb.select_block(body);
/// let s2 = fb.bin(BinOp::Add, Operand::Reg(s), Operand::Reg(i));
/// fb.mov(s, Operand::Reg(s2));
/// let i2 = fb.bin(BinOp::Add, Operand::Reg(i), 1i64);
/// fb.mov(i, Operand::Reg(i2));
/// fb.jmp(loop_head);
/// fb.select_block(exit);
/// fb.ret(Some(Operand::Reg(s)));
/// let f = fb.finish().unwrap();
/// assert_eq!(f.blocks.len(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: u32,
    next_reg: u32,
    blocks: Vec<Block>,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a function with `params` argument registers (registers
    /// `0..params` are pre-filled at call time). The entry block is current.
    pub fn new(name: impl Into<String>, params: u32) -> Self {
        FunctionBuilder {
            name: name.into(),
            params,
            next_reg: params,
            blocks: vec![Block::default()],
            current: 0,
        }
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Creates a new (empty) block and returns its id; does not switch to it.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        (self.blocks.len() - 1) as BlockId
    }

    /// Makes `id` the insertion point.
    pub fn select_block(&mut self, id: BlockId) {
        assert!((id as usize) < self.blocks.len(), "no such block");
        self.current = id;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Appends a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.blocks[self.current as usize].insts.push(inst);
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `fresh = a <op> b`; returns the fresh destination register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `fresh = mem[base + offset]` (8 bytes); returns the destination.
    pub fn load(&mut self, base: impl Into<Operand>, offset: i64) -> Reg {
        self.load_sized(base, offset, 8)
    }

    /// Sized load.
    pub fn load_sized(&mut self, base: impl Into<Operand>, offset: i64, size: u8) -> Reg {
        let dst = self.reg();
        self.push(Inst::Load {
            dst,
            base: base.into(),
            offset,
            size,
        });
        dst
    }

    /// `mem[base + offset] = src` (8 bytes).
    pub fn store(&mut self, base: impl Into<Operand>, offset: i64, src: impl Into<Operand>) {
        self.store_sized(base, offset, src, 8)
    }

    /// Sized store.
    pub fn store_sized(
        &mut self,
        base: impl Into<Operand>,
        offset: i64,
        src: impl Into<Operand>,
        size: u8,
    ) {
        self.push(Inst::Store {
            src: src.into(),
            base: base.into(),
            offset,
            size,
        });
    }

    /// Unconditional jump terminator.
    pub fn jmp(&mut self, target: BlockId) {
        self.push(Inst::Jmp { target });
    }

    /// Conditional branch terminator.
    pub fn br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.push(Inst::Br {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    /// Return terminator.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.push(Inst::Ret { value });
    }

    /// Direct call to function index `func`; returns the fresh destination
    /// register holding the callee's return value.
    pub fn call(&mut self, func: u32, args: &[Operand]) -> Reg {
        assert!(args.len() <= MAX_CALL_ARGS, "too many call arguments");
        let dst = self.reg();
        let mut padded = [Operand::Imm(0); MAX_CALL_ARGS];
        padded[..args.len()].copy_from_slice(args);
        self.push(Inst::Call {
            dst: Some(dst),
            func,
            args: padded,
            argc: args.len() as u8,
        });
        dst
    }

    /// Validates and produces the function.
    pub fn finish(self) -> Result<Function, String> {
        let f = Function {
            name: self.name,
            params: self.params,
            num_regs: self.next_reg,
            blocks: self.blocks,
        };
        f.validate()?;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial() -> Function {
        let mut fb = FunctionBuilder::new("t", 0);
        fb.ret(None);
        fb.finish().unwrap()
    }

    #[test]
    fn builder_produces_valid_function() {
        let f = trivial();
        assert_eq!(f.name, "t");
        assert_eq!(f.blocks.len(), 1);
        f.validate().unwrap();
    }

    #[test]
    fn validation_rejects_missing_terminator() {
        let f = Function {
            name: "bad".into(),
            params: 0,
            num_regs: 1,
            blocks: vec![Block {
                insts: vec![Inst::Mov {
                    dst: 0,
                    src: Operand::Imm(1),
                }],
            }],
        };
        assert!(f.validate().unwrap_err().contains("terminator"));
    }

    #[test]
    fn validation_rejects_mid_block_terminator() {
        let f = Function {
            name: "bad".into(),
            params: 0,
            num_regs: 0,
            blocks: vec![Block {
                insts: vec![Inst::Ret { value: None }, Inst::Ret { value: None }],
            }],
        };
        assert!(f.validate().unwrap_err().contains("mid-block"));
    }

    #[test]
    fn validation_rejects_out_of_range_register() {
        let f = Function {
            name: "bad".into(),
            params: 0,
            num_regs: 1,
            blocks: vec![Block {
                insts: vec![
                    Inst::Mov {
                        dst: 0,
                        src: Operand::Reg(5),
                    },
                    Inst::Ret { value: None },
                ],
            }],
        };
        assert!(f.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validation_rejects_bad_jump_target() {
        let f = Function {
            name: "bad".into(),
            params: 0,
            num_regs: 0,
            blocks: vec![Block {
                insts: vec![Inst::Jmp { target: 7 }],
            }],
        };
        assert!(f.validate().unwrap_err().contains("missing block"));
    }

    #[test]
    fn validation_rejects_bad_access_size() {
        let f = Function {
            name: "bad".into(),
            params: 1,
            num_regs: 2,
            blocks: vec![Block {
                insts: vec![
                    Inst::Load {
                        dst: 1,
                        base: Operand::Reg(0),
                        offset: 0,
                        size: 3,
                    },
                    Inst::Ret { value: None },
                ],
            }],
        };
        assert!(f.validate().unwrap_err().contains("invalid access size"));
    }

    #[test]
    fn memory_access_extraction() {
        let l = Inst::Load {
            dst: 0,
            base: Operand::Reg(1),
            offset: 8,
            size: 4,
        };
        assert_eq!(
            l.memory_access(),
            Some((predator_sim::AccessKind::Read, Operand::Reg(1), 8, 4))
        );
        let s = Inst::Store {
            src: Operand::Imm(0),
            base: Operand::Reg(1),
            offset: 8,
            size: 4,
        };
        assert_eq!(
            s.memory_access().unwrap().0,
            predator_sim::AccessKind::Write
        );
        assert_eq!(Inst::Ret { value: None }.memory_access(), None);
    }

    #[test]
    fn module_lookup_and_counts() {
        let m = Module {
            functions: vec![trivial()],
        };
        assert!(m.function("t").is_some());
        assert_eq!(m.function_index("t"), Some(0));
        assert!(m.function("nope").is_none());
        assert_eq!(m.inst_count(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn operand_conversions() {
        let r: Operand = 3u32.into();
        assert_eq!(r, Operand::Reg(3));
        let i: Operand = (-5i64).into();
        assert_eq!(i, Operand::Imm(-5));
    }
}
