//! A textual format for the mini-IR: assembler and printer.
//!
//! Lets instrumented programs be written, versioned and inspected as plain
//! text (the `predator ir` CLI subcommand executes these files). The format
//! is line-oriented:
//!
//! ```text
//! fn worker(params=2) {
//! bb0:
//!   mov r2, 0
//!   jmp bb1
//! bb1:
//!   lt r3, r2, r1
//!   br r3, bb2, bb3
//! bb2:
//!   load r4, [r0+0], 8
//!   add r5, r4, r2
//!   store [r0+0], r5, 8
//!   add r6, r2, 1
//!   mov r2, r6
//!   jmp bb1
//! bb3:
//!   ret r5
//! }
//! ```
//!
//! Operands are `rN` (register) or decimal immediates (negative allowed).
//! `probe` lines (`probe read, [r0+8], 8`) are printed for instrumented
//! modules and parse back, so print → parse is the identity on any module.

use std::collections::HashMap;

use crate::ir::{BinOp, Block, BlockId, Function, Inst, Module, Operand, Reg};
use predator_sim::AccessKind;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
    }
}

fn binop_from(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        "le" => BinOp::Le,
        "gt" => BinOp::Gt,
        "ge" => BinOp::Ge,
        _ => return None,
    })
}

fn fmt_operand(op: Operand) -> String {
    match op {
        Operand::Reg(r) => format!("r{r}"),
        Operand::Imm(v) => v.to_string(),
    }
}

fn fmt_mem(base: Operand, offset: i64) -> String {
    if offset >= 0 {
        format!("[{}+{}]", fmt_operand(base), offset)
    } else {
        format!("[{}{}]", fmt_operand(base), offset)
    }
}

/// Renders a module in the textual format.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for (fi, func) in module.functions.iter().enumerate() {
        if fi > 0 {
            out.push('\n');
        }
        out.push_str(&format!("fn {}(params={}) {{\n", func.name, func.params));
        for (bi, block) in func.blocks.iter().enumerate() {
            out.push_str(&format!("bb{bi}:\n"));
            for inst in &block.insts {
                out.push_str("  ");
                out.push_str(&print_inst(inst));
                out.push('\n');
            }
        }
        out.push_str("}\n");
    }
    out
}

fn print_inst(inst: &Inst) -> String {
    match *inst {
        Inst::Mov { dst, src } => format!("mov r{dst}, {}", fmt_operand(src)),
        Inst::Bin { op, dst, a, b } => format!(
            "{} r{dst}, {}, {}",
            binop_name(op),
            fmt_operand(a),
            fmt_operand(b)
        ),
        Inst::Load {
            dst,
            base,
            offset,
            size,
        } => {
            format!("load r{dst}, {}, {size}", fmt_mem(base, offset))
        }
        Inst::Store {
            src,
            base,
            offset,
            size,
        } => {
            format!(
                "store {}, {}, {size}",
                fmt_mem(base, offset),
                fmt_operand(src)
            )
        }
        Inst::Probe {
            kind,
            base,
            offset,
            size,
        } => {
            let k = match kind {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
            };
            format!("probe {k}, {}, {size}", fmt_mem(base, offset))
        }
        Inst::Jmp { target } => format!("jmp bb{target}"),
        Inst::Br {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("br {}, bb{then_bb}, bb{else_bb}", fmt_operand(cond))
        }
        Inst::Ret { value } => match value {
            Some(v) => format!("ret {}", fmt_operand(v)),
            None => "ret".to_string(),
        },
        Inst::Call {
            dst,
            func,
            args,
            argc,
        } => {
            let args: Vec<String> = args
                .iter()
                .take(argc as usize)
                .map(|a| fmt_operand(*a))
                .collect();
            match dst {
                Some(d) => format!("call r{d}, @{func}({})", args.join(", ")),
                None => format!("call @{func}({})", args.join(", ")),
            }
        }
    }
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line: line + 1,
        message: message.into(),
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if let Some(r) = tok.strip_prefix('r') {
        if let Ok(idx) = r.parse::<Reg>() {
            return Ok(Operand::Reg(idx));
        }
    }
    tok.parse::<i64>()
        .map(Operand::Imm)
        .map_err(|_| err(line, format!("bad operand `{tok}`")))
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    match parse_operand(tok, line)? {
        Operand::Reg(r) => Ok(r),
        Operand::Imm(_) => Err(err(line, format!("expected a register, got `{tok}`"))),
    }
}

fn parse_block_id(tok: &str, line: usize) -> Result<BlockId, ParseError> {
    tok.strip_prefix("bb")
        .and_then(|n| n.parse::<BlockId>().ok())
        .ok_or_else(|| err(line, format!("bad block label `{tok}`")))
}

/// Parses `[rN+K]` / `[rN-K]` / `[imm+K]`.
fn parse_mem(tok: &str, line: usize) -> Result<(Operand, i64), ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("bad memory operand `{tok}`")))?;
    // Split at the last '+' or '-' that is not the leading sign.
    let split = inner[1..]
        .rfind(['+', '-'])
        .map(|i| i + 1)
        .ok_or_else(|| err(line, format!("memory operand `{tok}` needs `+offset`")))?;
    let (base_s, off_s) = inner.split_at(split);
    let base = parse_operand(base_s, line)?;
    let offset: i64 = off_s
        .parse()
        .map_err(|_| err(line, format!("bad offset `{off_s}`")))?;
    Ok((base, offset))
}

fn parse_size(tok: &str, line: usize) -> Result<u8, ParseError> {
    match tok.parse::<u8>() {
        Ok(s @ (1 | 2 | 4 | 8)) => Ok(s),
        _ => Err(err(line, format!("bad access size `{tok}` (1/2/4/8)"))),
    }
}

impl<'a> Parser<'a> {
    fn parse_module(text: &'a str) -> Result<Module, ParseError> {
        let mut p = Parser {
            lines: text.lines().enumerate(),
        };
        let mut functions = Vec::new();
        while let Some((ln, raw)) = p.lines.next() {
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("fn ") {
                functions.push(p.parse_function(rest, ln)?);
            } else {
                return Err(err(ln, format!("expected `fn`, got `{line}`")));
            }
        }
        let module = Module { functions };
        module.validate().map_err(|m| ParseError {
            line: 0,
            message: m,
        })?;
        Ok(module)
    }

    fn parse_function(&mut self, header: &str, ln: usize) -> Result<Function, ParseError> {
        // `name(params=N) {`
        let header = header
            .trim()
            .strip_suffix('{')
            .map(str::trim)
            .ok_or_else(|| err(ln, "function header must end with `{`"))?;
        let open = header
            .find('(')
            .ok_or_else(|| err(ln, "missing `(` in header"))?;
        let name = header[..open].trim().to_string();
        let args = header[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| err(ln, "missing `)` in header"))?;
        let params = args
            .trim()
            .strip_prefix("params=")
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| err(ln, "expected `params=N`"))?;

        let mut blocks: Vec<Block> = Vec::new();
        let mut labels: HashMap<String, usize> = HashMap::new();
        let mut max_reg: u32 = params.saturating_sub(1);
        let track = |r: Reg, max_reg: &mut u32| {
            *max_reg = (*max_reg).max(r);
        };

        loop {
            let Some((ln, raw)) = self.lines.next() else {
                return Err(err(ln, "unterminated function (missing `}`)"));
            };
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                let idx = blocks.len();
                let expected = parse_block_id(label, ln)? as usize;
                if expected != idx {
                    return Err(err(
                        ln,
                        format!("blocks must be in order: `{label}` is block {idx}"),
                    ));
                }
                labels.insert(label.to_string(), idx);
                blocks.push(Block::default());
                continue;
            }
            let Some(block) = blocks.last_mut() else {
                return Err(err(ln, "instruction before the first block label"));
            };
            let inst = parse_inst(line, ln)?;
            // Track register usage for num_regs.
            for op in inst_operands(&inst) {
                if let Operand::Reg(r) = op {
                    track(r, &mut max_reg);
                }
            }
            block.insts.push(inst);
        }

        Ok(Function {
            name,
            params,
            num_regs: max_reg + 1,
            blocks,
        })
    }
}

fn strip_comment(raw: &str) -> &str {
    raw.split(';').next().unwrap_or("").trim()
}

fn inst_operands(inst: &Inst) -> Vec<Operand> {
    match *inst {
        Inst::Mov { dst, src } => vec![Operand::Reg(dst), src],
        Inst::Bin { dst, a, b, .. } => vec![Operand::Reg(dst), a, b],
        Inst::Load { dst, base, .. } => vec![Operand::Reg(dst), base],
        Inst::Store { src, base, .. } => vec![src, base],
        Inst::Probe { base, .. } => vec![base],
        Inst::Br { cond, .. } => vec![cond],
        Inst::Ret { value } => value.into_iter().collect(),
        Inst::Call {
            dst, args, argc, ..
        } => {
            let mut v: Vec<Operand> = args.iter().take(argc as usize).copied().collect();
            if let Some(d) = dst {
                v.push(Operand::Reg(d));
            }
            v
        }
        Inst::Jmp { .. } => vec![],
    }
}

fn parse_inst(line: &str, ln: usize) -> Result<Inst, ParseError> {
    let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let need = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                ln,
                format!("`{op}` expects {n} operands, got {}", args.len()),
            ))
        }
    };
    match op {
        "mov" => {
            need(2)?;
            Ok(Inst::Mov {
                dst: parse_reg(args[0], ln)?,
                src: parse_operand(args[1], ln)?,
            })
        }
        "load" => {
            need(3)?;
            let (base, offset) = parse_mem(args[1], ln)?;
            Ok(Inst::Load {
                dst: parse_reg(args[0], ln)?,
                base,
                offset,
                size: parse_size(args[2], ln)?,
            })
        }
        "store" => {
            need(3)?;
            let (base, offset) = parse_mem(args[0], ln)?;
            Ok(Inst::Store {
                src: parse_operand(args[1], ln)?,
                base,
                offset,
                size: parse_size(args[2], ln)?,
            })
        }
        "probe" => {
            need(3)?;
            let kind = match args[0] {
                "read" => AccessKind::Read,
                "write" => AccessKind::Write,
                other => return Err(err(ln, format!("bad probe kind `{other}`"))),
            };
            let (base, offset) = parse_mem(args[1], ln)?;
            Ok(Inst::Probe {
                kind,
                base,
                offset,
                size: parse_size(args[2], ln)?,
            })
        }
        "jmp" => {
            need(1)?;
            Ok(Inst::Jmp {
                target: parse_block_id(args[0], ln)?,
            })
        }
        "br" => {
            need(3)?;
            Ok(Inst::Br {
                cond: parse_operand(args[0], ln)?,
                then_bb: parse_block_id(args[1], ln)?,
                else_bb: parse_block_id(args[2], ln)?,
            })
        }
        "call" => {
            // `call rD, @F(a, b)` or `call @F(a, b)`; note the argument
            // list is parenthesized, so re-split the raw rest string.
            let rest = rest.trim();
            let (dst, callee_part) = match rest.split_once(',') {
                Some((d, tail))
                    if d.trim().starts_with('r') && tail.trim_start().starts_with('@') =>
                {
                    (Some(parse_reg(d.trim(), ln)?), tail.trim())
                }
                _ => (None, rest),
            };
            let callee_part = callee_part.trim();
            let open = callee_part
                .find('(')
                .ok_or_else(|| err(ln, "call needs `(args)`"))?;
            let func: u32 = callee_part[..open]
                .trim()
                .strip_prefix('@')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| err(ln, "call target must be `@<index>`"))?;
            let arg_str = callee_part[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| err(ln, "call needs closing `)`"))?;
            let parsed: Vec<Operand> = arg_str
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| parse_operand(s, ln))
                .collect::<Result<_, _>>()?;
            if parsed.len() > crate::ir::MAX_CALL_ARGS {
                return Err(err(ln, "too many call arguments"));
            }
            let mut padded = [Operand::Imm(0); crate::ir::MAX_CALL_ARGS];
            padded[..parsed.len()].copy_from_slice(&parsed);
            Ok(Inst::Call {
                dst,
                func,
                args: padded,
                argc: parsed.len() as u8,
            })
        }
        "ret" => match args.len() {
            0 => Ok(Inst::Ret { value: None }),
            1 => Ok(Inst::Ret {
                value: Some(parse_operand(args[0], ln)?),
            }),
            n => Err(err(ln, format!("`ret` expects 0 or 1 operands, got {n}"))),
        },
        other => {
            let bin = binop_from(other)
                .ok_or_else(|| err(ln, format!("unknown instruction `{other}`")))?;
            need(3)?;
            Ok(Inst::Bin {
                op: bin,
                dst: parse_reg(args[0], ln)?,
                a: parse_operand(args[1], ln)?,
                b: parse_operand(args[2], ln)?,
            })
        }
    }
}

/// Parses the textual format into a validated [`Module`].
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let _span = predator_obs::span("parse");
    Parser::parse_module(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FunctionBuilder;
    use crate::pass::{instrument_module, InstrumentOptions};

    const WORKER: &str = "\
fn worker(params=2) {
bb0:
  mov r2, 0
  jmp bb1
bb1:
  lt r3, r2, r1
  br r3, bb2, bb3
bb2:
  load r4, [r0+0], 8
  add r5, r4, r2
  store [r0+0], r5, 8
  add r6, r2, 1
  mov r2, r6
  jmp bb1
bb3:
  ret r5
}
";

    #[test]
    fn parses_the_reference_program() {
        let m = parse_module(WORKER).unwrap();
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.name, "worker");
        assert_eq!(f.params, 2);
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.num_regs, 7);
        f.validate().unwrap();
    }

    #[test]
    fn print_parse_is_identity() {
        let m = parse_module(WORKER).unwrap();
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m, m2);
        assert_eq!(print_module(&m2), text, "printer is a fixpoint");
    }

    #[test]
    fn instrumented_modules_roundtrip() {
        let mut m = parse_module(WORKER).unwrap();
        instrument_module(&mut m, &InstrumentOptions::default());
        let text = print_module(&m);
        assert!(text.contains("probe read, [r0+0], 8"), "{text}");
        assert!(text.contains("probe write, [r0+0], 8"), "{text}");
        let m2 = parse_module(&text).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
; leading comment
fn t(params=0) {
bb0:
  ret   ; trailing comment

}
";
        let m = parse_module(text).unwrap();
        assert_eq!(
            m.functions[0].blocks[0].insts,
            vec![Inst::Ret { value: None }]
        );
    }

    #[test]
    fn negative_offsets_and_immediates() {
        let text = "\
fn t(params=1) {
bb0:
  mov r1, -5
  load r2, [r0-8], 4
  ret r2
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(
            m.functions[0].blocks[0].insts[1],
            Inst::Load {
                dst: 2,
                base: Operand::Reg(0),
                offset: -8,
                size: 4
            }
        );
        let roundtrip = parse_module(&print_module(&m)).unwrap();
        assert_eq!(m, roundtrip);
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "fn t(params=0) {\nbb0:\n  bogus r1, r2\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn error_on_wrong_operand_count() {
        let text = "fn t(params=0) {\nbb0:\n  mov r1\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("expects 2 operands"), "{e}");
    }

    #[test]
    fn error_on_out_of_order_blocks() {
        let text = "fn t(params=0) {\nbb1:\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("in order"), "{e}");
    }

    #[test]
    fn error_on_instruction_outside_block() {
        let text = "fn t(params=0) {\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("before the first block"), "{e}");
    }

    #[test]
    fn error_on_unterminated_function() {
        let text = "fn t(params=0) {\nbb0:\n  ret\n";
        assert!(parse_module(text).is_err());
    }

    #[test]
    fn validation_failures_surface() {
        // Missing terminator in bb0.
        let text = "fn t(params=0) {\nbb0:\n  mov r0, 1\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn builder_output_prints_and_reparses() {
        let mut fb = FunctionBuilder::new("gen", 1);
        let v = fb.load_sized(0u32, 16, 4);
        fb.store_sized(0u32, 24, v, 2);
        fb.ret(Some(Operand::Reg(v)));
        let m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let text = print_module(&m);
        assert_eq!(parse_module(&text).unwrap(), m);
    }
}
