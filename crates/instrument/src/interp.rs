//! A deterministic multi-threaded IR interpreter.
//!
//! Executes instrumented [`Module`]s against a [`SimSpace`], delivering every
//! [`Inst::Probe`] to an [`AccessSink`] (normally the detector runtime).
//! Threads are stepped under an explicit [`StepSchedule`], so the adversarial
//! interleaving PREDATOR conservatively assumes (§3.3) — or any other — can
//! be produced reproducibly, and tests can assert *exact* invalidation
//! counts through the whole compiler-instrumentation → runtime pipeline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use predator_shadow::SimSpace;
use predator_sim::ThreadId;

use crate::ir::{BinOp, Function, Inst, Module, Operand};

// The sink interface lives with the event vocabulary in `predator-sim`
// (the detector runtime implements it in `predator-core`); re-exported here
// so existing `predator_instrument::interp::AccessSink` paths keep working.
pub use predator_sim::{AccessSink, NullSink};

/// How threads are interleaved, one instruction at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepSchedule {
    /// Each live thread runs `quantum` instructions, then the next thread.
    /// `quantum: 1` is maximal interleaving — the paper's conservative
    /// assumption; a huge quantum approximates run-to-completion.
    RoundRobin {
        /// Instructions per turn.
        quantum: u64,
    },
    /// Seeded uniform random choice of the next thread each step.
    Seeded(u64),
}

/// One thread to run: entry function and arguments.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Detector-visible thread id.
    pub tid: ThreadId,
    /// Entry function name.
    pub function: String,
    /// Values for the function's parameter registers.
    pub args: Vec<i64>,
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A thread spec names a function the module lacks.
    UnknownFunction(String),
    /// Integer division or remainder by zero.
    DivByZero {
        /// Function name.
        function: String,
    },
    /// The global step budget ran out (likely an IR-level infinite loop).
    StepLimitExceeded,
    /// A thread exceeded the maximum call depth (runaway recursion).
    CallDepthExceeded {
        /// Function name at the top of the stack.
        function: String,
    },
    /// The module failed structural validation.
    Validation(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::DivByZero { function } => write!(f, "division by zero in `{function}`"),
            ExecError::StepLimitExceeded => f.write_str("step limit exceeded"),
            ExecError::CallDepthExceeded { function } => {
                write!(f, "call depth exceeded in `{function}`")
            }
            ExecError::Validation(e) => write!(f, "invalid module: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One activation record.
struct Frame<'m> {
    func: &'m Function,
    regs: Vec<i64>,
    block: usize,
    ip: usize,
    /// Caller register receiving the return value (None in the entry frame
    /// or for value-discarding calls).
    ret_to: Option<u32>,
}

/// Maximum call depth per thread (guards runaway recursion).
const MAX_CALL_DEPTH: usize = 256;

struct ThreadState<'m> {
    tid: ThreadId,
    stack: Vec<Frame<'m>>,
    result: Option<i64>,
    done: bool,
}

/// The interpreter: a module bound to a memory space and an event sink.
pub struct Machine<'a> {
    module: &'a Module,
    space: &'a SimSpace,
    sink: &'a dyn AccessSink,
}

impl<'a> Machine<'a> {
    /// Validates the module and builds a machine.
    pub fn new(
        module: &'a Module,
        space: &'a SimSpace,
        sink: &'a dyn AccessSink,
    ) -> Result<Self, ExecError> {
        module.validate().map_err(ExecError::Validation)?;
        Ok(Machine {
            module,
            space,
            sink,
        })
    }

    /// Runs `threads` to completion under `schedule`, with a global budget of
    /// `max_steps` instructions. Returns each thread's return value.
    pub fn run(
        &self,
        threads: &[ThreadSpec],
        schedule: StepSchedule,
        max_steps: u64,
    ) -> Result<Vec<Option<i64>>, ExecError> {
        let _span = predator_obs::span("interpret");
        let mut states: Vec<ThreadState<'_>> = threads
            .iter()
            .map(|spec| {
                let func = self
                    .module
                    .function(&spec.function)
                    .ok_or_else(|| ExecError::UnknownFunction(spec.function.clone()))?;
                let mut regs = vec![0i64; func.num_regs as usize];
                for (i, &a) in spec.args.iter().take(func.params as usize).enumerate() {
                    regs[i] = a;
                }
                Ok(ThreadState {
                    tid: spec.tid,
                    stack: vec![Frame {
                        func,
                        regs,
                        block: 0,
                        ip: 0,
                        ret_to: None,
                    }],
                    result: None,
                    done: func.blocks.is_empty(),
                })
            })
            .collect::<Result<_, ExecError>>()?;

        let mut steps = 0u64;
        let mut rng = match schedule {
            StepSchedule::Seeded(seed) => Some(SmallRng::seed_from_u64(seed)),
            StepSchedule::RoundRobin { .. } => None,
        };
        // Trace-timeline lanes: one duration span per simulated thread
        // (named after its entry function) plus an activity marker every
        // ACTIVITY_SLICE executed instructions, so interleaving is visible
        // without a per-instruction event flood. Both hooks are behind a
        // single boolean resolved once per run.
        let tl = predator_obs::timeline();
        let tl_on = tl.enabled();
        let mut started = vec![false; states.len()];
        let mut executed = vec![0u64; states.len()];
        const ACTIVITY_SLICE: u64 = 256;
        // Self-profiler: every `period`-th interpreted instruction samples
        // the IR call stack (captured *before* the step so the leaf is the
        // sampled instruction's frame) with weight = period. A sampled
        // `Probe` additionally consumes the runtime cost-center mark the
        // detector leaves behind while handling the access.
        let prof = predator_obs::profiler();
        let prof_period = if prof.enabled() { prof.period() } else { 0 };
        let mut turn = 0usize;
        while states.iter().any(|s| !s.done) {
            let live: Vec<usize> = (0..states.len()).filter(|&i| !states[i].done).collect();
            let (pick, quantum) = match schedule {
                StepSchedule::RoundRobin { quantum } => {
                    let pick = live[turn % live.len()];
                    turn += 1;
                    (pick, quantum.max(1))
                }
                StepSchedule::Seeded(_) => {
                    let rng = rng.as_mut().expect("rng present for seeded schedule");
                    (live[rng.gen_range(0..live.len())], 1)
                }
            };
            let lane = states[pick].tid.index() as u64;
            for _ in 0..quantum {
                if states[pick].done {
                    break;
                }
                if steps >= max_steps {
                    return Err(ExecError::StepLimitExceeded);
                }
                steps += 1;
                if tl_on {
                    if !started[pick] {
                        started[pick] = true;
                        tl.begin(&threads[pick].function, "interp", lane);
                    }
                    executed[pick] += 1;
                    if executed[pick].is_multiple_of(ACTIVITY_SLICE) {
                        tl.instant(
                            "executed",
                            "interp",
                            lane,
                            vec![("steps", predator_obs::ArgVal::U64(executed[pick]))],
                        );
                    }
                }
                let sampled = prof_period != 0 && steps.is_multiple_of(prof_period);
                let (stack, was_probe) = if sampled {
                    (
                        Some(collapse_stack(&states[pick])),
                        peek_is_probe(&states[pick]),
                    )
                } else {
                    (None, false)
                };
                self.step(&mut states[pick])?;
                if let Some(mut stack) = stack {
                    if was_probe {
                        if let Some(center) = predator_obs::profile::take_mark() {
                            stack.push(';');
                            stack.push_str(center.label());
                        }
                    }
                    prof.record(stack, prof_period);
                }
            }
            if tl_on && states[pick].done && started[pick] {
                tl.end(&threads[pick].function, "interp", lane);
            }
        }
        predator_obs::static_counter!("interp_instructions_total").add(steps);
        Ok(states.into_iter().map(|s| s.result).collect())
    }

    fn step<'m>(&'m self, st: &mut ThreadState<'m>) -> Result<(), ExecError> {
        let tid = st.tid;
        let depth = st.stack.len();
        let frame = st.stack.last_mut().expect("live thread has a frame");
        let inst = frame.func.blocks[frame.block].insts[frame.ip];
        frame.ip += 1;
        match inst {
            Inst::Mov { dst, src } => {
                frame.regs[dst as usize] = eval(&frame.regs, src);
            }
            Inst::Bin { op, dst, a, b } => {
                let (a, b) = (eval(&frame.regs, a), eval(&frame.regs, b));
                frame.regs[dst as usize] = apply(op, a, b).ok_or_else(|| ExecError::DivByZero {
                    function: frame.func.name.clone(),
                })?;
            }
            Inst::Load {
                dst,
                base,
                offset,
                size,
            } => {
                let addr = mem_addr(&frame.regs, base, offset);
                frame.regs[dst as usize] = self.load_sized(addr, size);
            }
            Inst::Store {
                src,
                base,
                offset,
                size,
            } => {
                let addr = mem_addr(&frame.regs, base, offset);
                self.store_sized(addr, size, eval(&frame.regs, src));
            }
            Inst::Probe {
                kind,
                base,
                offset,
                size,
            } => {
                let addr = mem_addr(&frame.regs, base, offset);
                self.sink.access(tid, addr, size, kind);
            }
            Inst::Jmp { target } => {
                frame.block = target as usize;
                frame.ip = 0;
            }
            Inst::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                frame.block = if eval(&frame.regs, cond) != 0 {
                    then_bb as usize
                } else {
                    else_bb as usize
                };
                frame.ip = 0;
            }
            Inst::Call {
                dst,
                func,
                args,
                argc,
            } => {
                if depth >= MAX_CALL_DEPTH {
                    return Err(ExecError::CallDepthExceeded {
                        function: frame.func.name.clone(),
                    });
                }
                let callee = &self.module.functions[func as usize];
                let mut regs = vec![0i64; callee.num_regs as usize];
                for (i, a) in args.iter().take(argc as usize).enumerate() {
                    regs[i] = eval(&frame.regs, *a);
                }
                st.stack.push(Frame {
                    func: callee,
                    regs,
                    block: 0,
                    ip: 0,
                    ret_to: dst,
                });
            }
            Inst::Ret { value } => {
                let v = value.map(|v| eval(&frame.regs, v));
                let ret_to = frame.ret_to;
                st.stack.pop();
                match st.stack.last_mut() {
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (ret_to, v) {
                            caller.regs[dst as usize] = v;
                        }
                    }
                    None => {
                        st.result = v;
                        st.done = true;
                    }
                }
            }
        }
        Ok(())
    }

    fn load_sized(&self, addr: u64, size: u8) -> i64 {
        match size {
            1 => self.space.load::<u8>(addr) as i64,
            2 => self.space.load::<u16>(addr) as i64,
            4 => self.space.load::<u32>(addr) as i64,
            _ => self.space.load::<u64>(addr) as i64,
        }
    }

    fn store_sized(&self, addr: u64, size: u8, value: i64) {
        match size {
            1 => self.space.store::<u8>(addr, value as u8),
            2 => self.space.store::<u16>(addr, value as u16),
            4 => self.space.store::<u32>(addr, value as u32),
            _ => self.space.store::<u64>(addr, value as u64),
        }
    }
}

/// Collapses a thread's IR call stack into a `func@bbN;func@bbN` frame
/// string (outermost first), the profiler's sample key.
fn collapse_stack(st: &ThreadState<'_>) -> String {
    let mut out = String::with_capacity(st.stack.len() * 16);
    for (i, frame) in st.stack.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(&frame.func.name);
        out.push_str("@bb");
        out.push_str(&frame.block.to_string());
    }
    out
}

/// True when the thread's next instruction is a `Probe` — the one kind
/// that enters the detector runtime and can leave a cost-center mark.
fn peek_is_probe(st: &ThreadState<'_>) -> bool {
    st.stack.last().is_some_and(|frame| {
        matches!(
            frame.func.blocks[frame.block].insts[frame.ip],
            Inst::Probe { .. }
        )
    })
}

#[inline]
fn eval(regs: &[i64], op: Operand) -> i64 {
    match op {
        Operand::Reg(r) => regs[r as usize],
        Operand::Imm(v) => v,
    }
}

#[inline]
fn mem_addr(regs: &[i64], base: Operand, offset: i64) -> u64 {
    (eval(regs, base)).wrapping_add(offset) as u64
}

/// Constant-folding hook for the optimizer: evaluates `op` on immediates,
/// returning `None` for division/remainder by zero (which must stay a
/// runtime error, not a compile-time fold).
pub(crate) fn apply_for_opt(op: BinOp, a: i64, b: i64) -> Option<i64> {
    apply(op, a, b)
}

fn apply(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => (a as u64).wrapping_shr(b as u32 & 63) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FunctionBuilder;
    use crate::pass::{instrument_module, InstrumentOptions};
    use crate::trace::TraceRecorder;
    use predator_core::{DetectorConfig, Predator};
    use predator_sim::Access;

    /// `fn sum_to(n) -> 0+1+…+(n-1)` — pure compute, no memory.
    fn sum_to() -> Module {
        let mut fb = FunctionBuilder::new("sum_to", 1);
        let s = fb.reg();
        let i = fb.reg();
        fb.mov(s, 0i64);
        fb.mov(i, 0i64);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.select_block(head);
        let c = fb.bin(BinOp::Lt, i, Operand::Reg(0));
        fb.br(c, body, exit);
        fb.select_block(body);
        let s2 = fb.bin(BinOp::Add, s, i);
        fb.mov(s, Operand::Reg(s2));
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.mov(i, Operand::Reg(i2));
        fb.jmp(head);
        fb.select_block(exit);
        fb.ret(Some(Operand::Reg(s)));
        Module {
            functions: vec![fb.finish().unwrap()],
        }
    }

    /// `fn writer(base, n)` — stores `n` times to `mem[base]`.
    fn writer_module() -> Module {
        let mut fb = FunctionBuilder::new("writer", 2);
        let i = fb.reg();
        fb.mov(i, 0i64);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.select_block(head);
        let c = fb.bin(BinOp::Lt, i, Operand::Reg(1));
        fb.br(c, body, exit);
        fb.select_block(body);
        fb.store(0u32, 0, i);
        let i2 = fb.bin(BinOp::Add, i, 1i64);
        fb.mov(i, Operand::Reg(i2));
        fb.jmp(head);
        fb.select_block(exit);
        fb.ret(None);
        Module {
            functions: vec![fb.finish().unwrap()],
        }
    }

    fn space() -> SimSpace {
        SimSpace::new(1 << 16)
    }

    #[test]
    fn computes_loop_sum() {
        let m = sum_to();
        let sp = space();
        let machine = Machine::new(&m, &sp, &NullSink).unwrap();
        let r = machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(0),
                    function: "sum_to".into(),
                    args: vec![10],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                100_000,
            )
            .unwrap();
        assert_eq!(r, vec![Some(45)]);
    }

    #[test]
    fn stores_reach_memory() {
        let m = writer_module();
        let sp = space();
        let machine = Machine::new(&m, &sp, &NullSink).unwrap();
        machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(0),
                    function: "writer".into(),
                    args: vec![sp.base() as i64, 5],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                100_000,
            )
            .unwrap();
        assert_eq!(sp.load::<u64>(sp.base()), 4, "last stored value");
    }

    #[test]
    fn probes_fire_exactly_per_executed_access() {
        let mut m = writer_module();
        instrument_module(&mut m, &InstrumentOptions::default());
        let sp = space();
        let rec = TraceRecorder::new();
        let machine = Machine::new(&m, &sp, &rec).unwrap();
        machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(3),
                    function: "writer".into(),
                    args: vec![sp.base() as i64, 7],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                100_000,
            )
            .unwrap();
        let events = rec.events();
        assert_eq!(events.len(), 7, "one probe per loop iteration");
        assert!(events
            .iter()
            .all(|e| *e == Access::write(ThreadId(3), sp.base(), 8)));
    }

    #[test]
    fn quantum_one_interleaving_gives_exact_invalidations() {
        // Two writers ping-pong adjacent words of one line. Each loop body
        // is 4 instructions (probe, store, add, mov, jmp = 5 with jmp); with
        // quantum large enough to cover one iteration but not two, writes
        // strictly alternate. We use quantum exactly one body length.
        let mut m = writer_module();
        instrument_module(&mut m, &InstrumentOptions::default());
        let sp = space();
        let cfg = DetectorConfig {
            tracking_threshold: 1,
            report_threshold: 1,
            sampling: false,
            ..DetectorConfig::sensitive()
        };
        let rt = Predator::for_space(cfg, &sp);
        let machine = Machine::new(&m, &sp, &rt).unwrap();
        let n = 100i64;
        machine
            .run(
                &[
                    ThreadSpec {
                        tid: ThreadId(0),
                        function: "writer".into(),
                        args: vec![sp.base() as i64, n],
                    },
                    ThreadSpec {
                        tid: ThreadId(1),
                        function: "writer".into(),
                        args: vec![(sp.base() + 8) as i64, n],
                    },
                ],
                StepSchedule::RoundRobin { quantum: 7 },
                1_000_000,
            )
            .unwrap();
        let snap = rt.line_snapshot(0).unwrap();
        // The very first write is consumed by the CacheWrites threshold
        // counter (tracking_threshold = 1) before the track exists; the
        // remaining 199 alternating writes are all tracked.
        assert_eq!(snap.writes, 199);
        // Strict alternation: every tracked write after the first
        // invalidates the other thread's copy.
        assert_eq!(snap.invalidations, 198);
    }

    #[test]
    fn run_to_completion_schedule_hides_sharing() {
        let mut m = writer_module();
        instrument_module(&mut m, &InstrumentOptions::default());
        let sp = space();
        let cfg = DetectorConfig {
            tracking_threshold: 1,
            report_threshold: 1,
            sampling: false,
            ..DetectorConfig::sensitive()
        };
        let rt = Predator::for_space(cfg, &sp);
        let machine = Machine::new(&m, &sp, &rt).unwrap();
        machine
            .run(
                &[
                    ThreadSpec {
                        tid: ThreadId(0),
                        function: "writer".into(),
                        args: vec![sp.base() as i64, 100],
                    },
                    ThreadSpec {
                        tid: ThreadId(1),
                        function: "writer".into(),
                        args: vec![(sp.base() + 8) as i64, 100],
                    },
                ],
                StepSchedule::RoundRobin { quantum: u64::MAX },
                1_000_000,
            )
            .unwrap();
        // One hand-off → exactly one invalidation.
        assert_eq!(rt.line_snapshot(0).unwrap().invalidations, 1);
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let mut m = writer_module();
        instrument_module(&mut m, &InstrumentOptions::default());
        let runs: Vec<Vec<Access>> = (0..2)
            .map(|_| {
                let sp = space();
                let rec = TraceRecorder::new();
                let machine = Machine::new(&m, &sp, &rec).unwrap();
                machine
                    .run(
                        &[
                            ThreadSpec {
                                tid: ThreadId(0),
                                function: "writer".into(),
                                args: vec![sp.base() as i64, 50],
                            },
                            ThreadSpec {
                                tid: ThreadId(1),
                                function: "writer".into(),
                                args: vec![(sp.base() + 8) as i64, 50],
                            },
                        ],
                        StepSchedule::Seeded(1234),
                        1_000_000,
                    )
                    .unwrap();
                rec.events()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let m = sum_to();
        let sp = space();
        let machine = Machine::new(&m, &sp, &NullSink).unwrap();
        let err = machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(0),
                    function: "nope".into(),
                    args: vec![],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                100,
            )
            .unwrap_err();
        assert_eq!(err, ExecError::UnknownFunction("nope".into()));
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let mut fb = FunctionBuilder::new("spin", 0);
        let b = fb.current_block();
        fb.jmp(b);
        let m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let sp = space();
        let machine = Machine::new(&m, &sp, &NullSink).unwrap();
        let err = machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(0),
                    function: "spin".into(),
                    args: vec![],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                1_000,
            )
            .unwrap_err();
        assert_eq!(err, ExecError::StepLimitExceeded);
    }

    #[test]
    fn div_by_zero_is_reported() {
        let mut fb = FunctionBuilder::new("crash", 0);
        let _ = fb.bin(BinOp::Div, 1i64, 0i64);
        fb.ret(None);
        let m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let sp = space();
        let machine = Machine::new(&m, &sp, &NullSink).unwrap();
        let err = machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(0),
                    function: "crash".into(),
                    args: vec![],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                100,
            )
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::DivByZero {
                function: "crash".into()
            }
        );
    }

    #[test]
    fn invalid_module_rejected_at_construction() {
        let m = Module {
            functions: vec![crate::ir::Function {
                name: "bad".into(),
                params: 0,
                num_regs: 0,
                blocks: vec![],
            }],
        };
        let sp = space();
        assert!(matches!(
            Machine::new(&m, &sp, &NullSink),
            Err(ExecError::Validation(_))
        ));
    }

    #[test]
    fn sized_loads_and_stores_roundtrip() {
        let mut fb = FunctionBuilder::new("sizes", 1);
        fb.store_sized(0u32, 0, 0x1ffi64, 1); // truncates to 0xff
        let v = fb.load_sized(0u32, 0, 1);
        fb.ret(Some(Operand::Reg(v)));
        let m = Module {
            functions: vec![fb.finish().unwrap()],
        };
        let sp = space();
        let machine = Machine::new(&m, &sp, &NullSink).unwrap();
        let r = machine
            .run(
                &[ThreadSpec {
                    tid: ThreadId(0),
                    function: "sizes".into(),
                    args: vec![sp.base() as i64],
                }],
                StepSchedule::RoundRobin { quantum: 1 },
                100,
            )
            .unwrap();
        assert_eq!(r, vec![Some(0xff)]);
    }
}
