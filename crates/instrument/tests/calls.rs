//! Function-call machinery: multi-function programs through the whole
//! pipeline — argument passing, recursion with depth guards, per-function
//! instrumentation blacklists actually exercised at runtime, and the
//! textual format for calls.

use predator_core::{build_report, DetectorConfig, Predator};
use predator_instrument::{
    instrument_module, parse_module, print_module, BinOp, FunctionBuilder, Inst, InstrumentOptions,
    Machine, Module, NullSink, Operand, StepSchedule, ThreadSpec, TraceRecorder,
};
use predator_shadow::SimSpace;
use predator_sim::ThreadId;

/// Module with: `bump(addr) -> *addr += 1` (index 0) and
/// `worker(base, n) { for i in 0..n { bump(base) } }` (index 1).
fn bump_module() -> Module {
    let mut bump = FunctionBuilder::new("bump", 1);
    let v = bump.load(0u32, 0);
    let v2 = bump.bin(BinOp::Add, v, 1i64);
    bump.store(0u32, 0, Operand::Reg(v2));
    bump.ret(Some(Operand::Reg(v2)));

    let mut worker = FunctionBuilder::new("worker", 2);
    let i = worker.reg();
    worker.mov(i, 0i64);
    let head = worker.new_block();
    let body = worker.new_block();
    let exit = worker.new_block();
    worker.jmp(head);
    worker.select_block(head);
    let c = worker.bin(BinOp::Lt, i, Operand::Reg(1));
    worker.br(c, body, exit);
    worker.select_block(body);
    let last = worker.call(0, &[Operand::Reg(0)]);
    let i2 = worker.bin(BinOp::Add, i, 1i64);
    worker.mov(i, Operand::Reg(i2));
    worker.jmp(head);
    worker.select_block(exit);
    worker.ret(Some(Operand::Reg(last)));

    Module {
        functions: vec![bump.finish().unwrap(), worker.finish().unwrap()],
    }
}

/// `fact(n) = n <= 1 ? 1 : n * fact(n - 1)` — self-recursive (index 0).
fn fact_module() -> Module {
    let mut fb = FunctionBuilder::new("fact", 1);
    let cond = fb.bin(BinOp::Le, Operand::Reg(0), 1i64);
    let base = fb.new_block();
    let rec = fb.new_block();
    fb.br(cond, base, rec);
    fb.select_block(base);
    fb.ret(Some(Operand::Imm(1)));
    fb.select_block(rec);
    let nm1 = fb.bin(BinOp::Sub, Operand::Reg(0), 1i64);
    let sub = fb.call(0, &[Operand::Reg(nm1)]);
    let prod = fb.bin(BinOp::Mul, Operand::Reg(0), Operand::Reg(sub));
    fb.ret(Some(Operand::Reg(prod)));
    Module {
        functions: vec![fb.finish().unwrap()],
    }
}

#[test]
fn calls_pass_arguments_and_return_values() {
    let m = bump_module();
    m.validate().unwrap();
    let space = SimSpace::new(4096);
    let machine = Machine::new(&m, &space, &NullSink).unwrap();
    let r = machine
        .run(
            &[ThreadSpec {
                tid: ThreadId(0),
                function: "worker".into(),
                args: vec![space.base() as i64, 100],
            }],
            StepSchedule::RoundRobin { quantum: 1 },
            1_000_000,
        )
        .unwrap();
    assert_eq!(space.load::<u64>(space.base()), 100);
    assert_eq!(r, vec![Some(100)], "worker returns bump's last value");
}

#[test]
fn recursion_computes_and_depth_guard_fires() {
    let m = fact_module();
    let space = SimSpace::new(64);
    let machine = Machine::new(&m, &space, &NullSink).unwrap();
    let run = |n: i64| {
        machine.run(
            &[ThreadSpec {
                tid: ThreadId(0),
                function: "fact".into(),
                args: vec![n],
            }],
            StepSchedule::RoundRobin { quantum: 1 },
            10_000_000,
        )
    };
    assert_eq!(run(10).unwrap(), vec![Some(3_628_800)]);
    // Depth 300 exceeds MAX_CALL_DEPTH (256).
    let err = run(300).unwrap_err();
    assert!(
        matches!(
            err,
            predator_instrument::ExecError::CallDepthExceeded { .. }
        ),
        "{err}"
    );
}

#[test]
fn false_sharing_detected_through_call_boundaries() {
    // Both threads do their writes inside the callee — attribution and
    // detection must be unaffected by the call indirection.
    let mut m = bump_module();
    instrument_module(&mut m, &InstrumentOptions::default());
    let space = SimSpace::new(4096);
    let cfg = DetectorConfig {
        tracking_threshold: 1,
        report_threshold: 1,
        sampling: false,
        ..DetectorConfig::sensitive()
    };
    let rt = Predator::for_space(cfg, &space);
    let machine = Machine::new(&m, &space, &rt).unwrap();
    machine
        .run(
            &[
                ThreadSpec {
                    tid: ThreadId(0),
                    function: "worker".into(),
                    args: vec![space.base() as i64, 1_000],
                },
                ThreadSpec {
                    tid: ThreadId(1),
                    function: "worker".into(),
                    args: vec![(space.base() + 8) as i64, 1_000],
                },
            ],
            StepSchedule::RoundRobin { quantum: 9 },
            10_000_000,
        )
        .unwrap();
    let report = build_report(&rt, None);
    assert!(report.has_observed_false_sharing(), "{report}");
}

#[test]
fn blacklisting_the_callee_silences_its_accesses() {
    // The §2.4.2 blacklist, end to end: bump does all the memory traffic;
    // blacklisting it leaves the program observable-silent.
    let mut m = bump_module();
    instrument_module(
        &mut m,
        &InstrumentOptions {
            blacklist: vec!["bump".into()],
            ..Default::default()
        },
    );
    let space = SimSpace::new(4096);
    let rec = TraceRecorder::new();
    let machine = Machine::new(&m, &space, &rec).unwrap();
    machine
        .run(
            &[ThreadSpec {
                tid: ThreadId(0),
                function: "worker".into(),
                args: vec![space.base() as i64, 50],
            }],
            StepSchedule::RoundRobin { quantum: 1 },
            1_000_000,
        )
        .unwrap();
    assert!(rec.is_empty(), "blacklisted callee must emit no events");
    // The program still ran.
    assert_eq!(space.load::<u64>(space.base()), 50);
}

#[test]
fn calls_roundtrip_through_the_textual_format() {
    let m = bump_module();
    let text = print_module(&m);
    assert!(text.contains("call r"), "{text}");
    assert!(text.contains("@0("), "{text}");
    let back = parse_module(&text).unwrap();
    assert_eq!(back, m);
    assert_eq!(print_module(&back), text);
}

#[test]
fn textual_call_without_destination() {
    let text = "\
fn noop(params=0) {
bb0:
  ret
}

fn main(params=0) {
bb0:
  call @0()
  ret
}
";
    let m = parse_module(text).unwrap();
    let main = m.function("main").unwrap();
    assert!(matches!(
        main.blocks[0].insts[0],
        Inst::Call {
            dst: None,
            func: 0,
            argc: 0,
            ..
        }
    ));
    assert_eq!(parse_module(&print_module(&m)).unwrap(), m);
}

#[test]
fn module_validation_rejects_bad_calls() {
    // Missing callee index.
    let mut fb = FunctionBuilder::new("f", 0);
    fb.call(7, &[]);
    fb.ret(None);
    let m = Module {
        functions: vec![fb.finish().unwrap()],
    };
    assert!(m.validate().unwrap_err().contains("missing function index"));

    // Too many arguments for the callee.
    let mut callee = FunctionBuilder::new("one_arg", 1);
    callee.ret(None);
    let mut caller = FunctionBuilder::new("caller", 0);
    caller.call(0, &[Operand::Imm(1), Operand::Imm(2)]);
    caller.ret(None);
    let m = Module {
        functions: vec![callee.finish().unwrap(), caller.finish().unwrap()],
    };
    assert!(m.validate().unwrap_err().contains("takes 1"));
}

#[test]
fn optimizer_treats_calls_as_memory_barriers() {
    use predator_instrument::opt::redundant_load_elim;
    let mut b = predator_instrument::Block {
        insts: vec![
            Inst::Load {
                dst: 1,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Call {
                dst: Some(2),
                func: 0,
                args: [Operand::Imm(0); predator_instrument::ir::MAX_CALL_ARGS],
                argc: 0,
            },
            Inst::Load {
                dst: 3,
                base: Operand::Reg(0),
                offset: 0,
                size: 8,
            },
            Inst::Ret { value: None },
        ],
    };
    assert_eq!(redundant_load_elim(&mut b), 0, "a call may store anywhere");
}
