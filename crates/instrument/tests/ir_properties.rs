//! Property tests over randomly generated IR programs: the textual format
//! is lossless, the optimizer preserves semantics, instrumenting after
//! optimization never probes more than before, and execution is
//! deterministic.

use proptest::prelude::*;

use predator_instrument::{
    instrument_module, optimize, parse_module, print_module, BinOp, FunctionBuilder,
    InstrumentOptions, Machine, Module, NullSink, Operand, StepSchedule, ThreadSpec, TraceRecorder,
};
use predator_shadow::SimSpace;
use predator_sim::ThreadId;

/// One randomly chosen body instruction, in a closed form the generator can
/// always make valid.
#[derive(Debug, Clone)]
enum BodyOp {
    /// `dst_fresh = a <op> b` with operands drawn from live regs/immediates.
    Bin(BinOp, u8, u8),
    /// Fresh register = load from `[base + 8*slot]`.
    Load(u8),
    /// Store a live value to `[base + 8*slot]`.
    Store(u8, u8),
    /// Copy a live value into a fresh register.
    Mov(u8),
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    // Div/Rem excluded: a generated divisor could be zero, which is a
    // legitimate runtime error, not a property violation.
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Lt),
    ]
}

fn arb_body() -> impl Strategy<Value = Vec<BodyOp>> {
    proptest::collection::vec(
        prop_oneof![
            (arb_binop(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| BodyOp::Bin(o, a, b)),
            any::<u8>().prop_map(BodyOp::Load),
            (any::<u8>(), any::<u8>()).prop_map(|(s, v)| BodyOp::Store(s, v)),
            any::<u8>().prop_map(BodyOp::Mov),
        ],
        1..24,
    )
}

/// Lowers a random body into `fn worker(base, n) { for i in 0..n { body } }`.
fn build_program(body: &[BodyOp]) -> Module {
    let mut fb = FunctionBuilder::new("worker", 2);
    let i = fb.reg();
    fb.mov(i, 0i64);
    let head = fb.new_block();
    let bodyb = fb.new_block();
    let exit = fb.new_block();
    fb.jmp(head);
    fb.select_block(head);
    let c = fb.bin(BinOp::Lt, i, Operand::Reg(1));
    fb.br(c, bodyb, exit);
    fb.select_block(bodyb);

    // Live values the body can draw from; starts with the loop counter.
    let mut live: Vec<Operand> = vec![Operand::Reg(i), Operand::Imm(3)];
    let pick = |live: &[Operand], k: u8| live[k as usize % live.len()];
    for op in body {
        match *op {
            BodyOp::Bin(o, a, b) => {
                let dst = fb.bin(o, pick(&live, a), pick(&live, b));
                live.push(Operand::Reg(dst));
            }
            BodyOp::Load(slot) => {
                let dst = fb.load(0u32, (slot % 8) as i64 * 8);
                live.push(Operand::Reg(dst));
            }
            BodyOp::Store(slot, v) => {
                let val = pick(&live, v);
                fb.store(0u32, (slot % 8) as i64 * 8, val);
            }
            BodyOp::Mov(v) => {
                let dst = fb.reg();
                fb.mov(dst, pick(&live, v));
                live.push(Operand::Reg(dst));
            }
        }
    }
    let i2 = fb.bin(BinOp::Add, i, 1i64);
    fb.mov(i, Operand::Reg(i2));
    fb.jmp(head);
    fb.select_block(exit);
    let ret = *live.last().unwrap();
    fb.ret(Some(ret));
    Module {
        functions: vec![fb.finish().expect("generated module is valid")],
    }
}

/// Runs `m` single-threaded and returns (return value, final memory words).
fn run_program(m: &Module, iters: i64) -> (Option<i64>, Vec<u64>) {
    let space = SimSpace::new(4096);
    // Deterministic non-trivial initial memory.
    for w in 0..8u64 {
        space.store::<u64>(space.base() + w * 8, w.wrapping_mul(0x9E37_79B9) + 1);
    }
    let machine = Machine::new(m, &space, &NullSink).unwrap();
    let r = machine
        .run(
            &[ThreadSpec {
                tid: ThreadId(0),
                function: "worker".into(),
                args: vec![space.base() as i64, iters],
            }],
            StepSchedule::RoundRobin { quantum: 1 },
            5_000_000,
        )
        .expect("generated program terminates");
    let mem = (0..8u64)
        .map(|w| space.load::<u64>(space.base() + w * 8))
        .collect();
    (r[0], mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print → parse is the identity on arbitrary (instrumented or not)
    /// generated modules.
    #[test]
    fn prop_textual_roundtrip(body in arb_body(), instrumented in any::<bool>()) {
        let mut m = build_program(&body);
        if instrumented {
            instrument_module(&mut m, &InstrumentOptions::default());
        }
        let text = print_module(&m);
        let back = parse_module(&text).expect("printed module parses");
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(print_module(&back), text);
    }

    /// The optimizer never changes a program's observable behaviour
    /// (return value and final memory).
    #[test]
    fn prop_optimizer_preserves_semantics(body in arb_body()) {
        let plain = build_program(&body);
        let mut opt = plain.clone();
        optimize(&mut opt);
        opt.validate().expect("optimized module stays valid");
        prop_assert_eq!(run_program(&plain, 7), run_program(&opt, 7));
    }

    /// Instrumenting after optimization can only reduce the accesses seen
    /// (the §2.2 pass-ordering property).
    #[test]
    fn prop_optimize_then_instrument_never_probes_more(body in arb_body()) {
        let raw = InstrumentOptions { no_selective: true, ..Default::default() };
        let mut before = build_program(&body);
        let sb = instrument_module(&mut before, &raw);
        let mut after = build_program(&body);
        optimize(&mut after);
        let sa = instrument_module(&mut after, &raw);
        prop_assert!(sa.accesses_seen <= sb.accesses_seen,
            "optimization added accesses: {} > {}", sa.accesses_seen, sb.accesses_seen);
    }

    /// Execution of instrumented programs is deterministic: two runs produce
    /// identical event traces.
    #[test]
    fn prop_execution_is_deterministic(body in arb_body()) {
        let mut m = build_program(&body);
        instrument_module(&mut m, &InstrumentOptions::default());
        let trace = |seed: u64| {
            let space = SimSpace::new(4096);
            let rec = TraceRecorder::new();
            let machine = Machine::new(&m, &space, &rec).unwrap();
            machine
                .run(
                    &[
                        ThreadSpec {
                            tid: ThreadId(0),
                            function: "worker".into(),
                            args: vec![space.base() as i64, 5],
                        },
                        ThreadSpec {
                            tid: ThreadId(1),
                            function: "worker".into(),
                            args: vec![(space.base() + 64) as i64, 5],
                        },
                    ],
                    StepSchedule::Seeded(seed),
                    5_000_000,
                )
                .unwrap();
            rec.into_events()
        };
        prop_assert_eq!(trace(11), trace(11));
    }

    /// The optimizer is idempotent: a second pass finds nothing.
    #[test]
    fn prop_optimizer_is_idempotent(body in arb_body()) {
        let mut m = build_program(&body);
        optimize(&mut m);
        let second = optimize(&mut m);
        prop_assert_eq!(second, Default::default());
    }
}
