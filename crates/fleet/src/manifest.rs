//! The corpus store: a directory of `.ptrace` files plus a
//! schema-versioned `corpus.json` manifest.
//!
//! The manifest is the corpus's single source of truth. Each member trace is
//! identified by a **content id** — file stem plus the CRC32 of the raw file
//! bytes — so the corpus behaves as a *set*: re-ingesting a file is a no-op,
//! and every merged view is a pure function of the member set, independent
//! of ingest order. Per-trace analysis results (findings + run stats) are
//! stored inline; findings are small once the flight recorder is off, and
//! keeping them in the manifest means `fleet report` and `fleet trend` never
//! have to re-stream raw traces.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use predator_core::{DetectorConfig, Finding, RunStats};
use predator_trace::LossStats;

use crate::merge::CallsiteAggregate;

/// Manifest schema tag; bump on incompatible layout changes.
pub const CORPUS_SCHEMA: &str = "predator-corpus/1";

/// Manifest file name inside the corpus directory.
pub const MANIFEST_FILE: &str = "corpus.json";

/// One ingested trace: identity, provenance, and its analysis results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Content id: `<stem>-<crc32 of the raw bytes, hex>`.
    pub id: String,
    /// File name inside the corpus directory.
    pub file: String,
    /// Ingest sequence number (monotonic; drives compaction retention).
    pub seq: u64,
    /// Events delivered to the analyzer.
    pub events: u64,
    /// Corruption accounting from the analysis read.
    pub loss: LossStats,
    /// The run's ranked findings, exactly as `predator analyze` produced
    /// them (the `obs` section is process-global and not stored).
    pub findings: Vec<Finding>,
    /// The run's aggregate statistics.
    pub stats: RunStats,
}

/// Aggregates retained from traces whose raw files were compacted away.
/// Merging is associative, so these fold into live entries losslessly at
/// the aggregate level (per-trace provenance of dropped runs is gone — that
/// is the price of retention).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Compacted {
    /// Runs folded in.
    pub runs: u64,
    /// Events those runs contributed.
    pub events: u64,
    /// Summed corruption accounting of the dropped runs.
    pub chunks_skipped: u64,
    /// Records lost in the dropped runs.
    pub records_lost: u64,
    /// Bytes skipped in the dropped runs.
    pub bytes_skipped: u64,
    /// Dropped runs whose trace was truncated.
    pub truncated_runs: u64,
    /// Merged callsite aggregates (provenance lists stripped).
    pub aggregates: Vec<CallsiteAggregate>,
}

/// The `corpus.json` manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema tag ([`CORPUS_SCHEMA`]).
    pub schema: String,
    /// Next ingest sequence number.
    pub seq: u64,
    /// Detector configuration every member was analyzed with. Findings from
    /// different configurations are not comparable, so ingest refuses a
    /// mismatch rather than silently mixing them.
    pub config: DetectorConfig,
    /// Live member traces.
    pub traces: Vec<TraceEntry>,
    /// Aggregates retained from compacted-away traces.
    pub compacted: Option<Compacted>,
}

impl Manifest {
    /// A fresh, empty manifest pinned to `config`.
    pub fn new(config: DetectorConfig) -> Self {
        Manifest {
            schema: CORPUS_SCHEMA.to_string(),
            seq: 0,
            config,
            traces: Vec::new(),
            compacted: None,
        }
    }

    /// Path of the manifest file for a corpus directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Loads the manifest from `dir`, or `None` if the corpus does not
    /// exist yet. A present-but-unreadable manifest is an error: silently
    /// starting a new corpus over a damaged one would discard history.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let path = Self::path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let m: Manifest = serde_json::from_str(&text)
            .map_err(|e| format!("{}: not a corpus manifest: {e}", path.display()))?;
        if m.schema != CORPUS_SCHEMA {
            return Err(format!(
                "{}: unsupported corpus schema `{}` (this build reads `{CORPUS_SCHEMA}`)",
                path.display(),
                m.schema
            ));
        }
        Ok(Some(m))
    }

    /// Loads the manifest, erroring when the corpus does not exist.
    pub fn load_required(dir: &Path) -> Result<Manifest, String> {
        Self::load(dir)?.ok_or_else(|| {
            format!(
                "{}: no corpus here (run `fleet ingest` first)",
                Self::path(dir).display()
            )
        })
    }

    /// Saves atomically: write a temp file in the same directory, then
    /// rename over the manifest, so a crash never leaves a torn corpus.json.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| format!("manifest serialization failed: {e}"))?;
        std::fs::write(&tmp, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        let path = Self::path(dir);
        std::fs::rename(&tmp, &path).map_err(|e| format!("cannot replace {}: {e}", path.display()))
    }

    /// Rejects a detector configuration that differs from the corpus's.
    pub fn check_config(&self, det: &DetectorConfig) -> Result<(), String> {
        if self.config != *det {
            return Err(format!(
                "detector configuration mismatch: corpus was built with {}, ingest asked for {} \
                 (findings across configurations are not comparable — use a separate corpus)",
                serde_json::to_string(&self.config).unwrap_or_default(),
                serde_json::to_string(det).unwrap_or_default(),
            ));
        }
        Ok(())
    }

    /// Member entry by content id.
    pub fn find(&self, id: &str) -> Option<&TraceEntry> {
        self.traces.iter().find(|t| t.id == id)
    }

    /// Total runs represented (live members + compacted-away runs).
    pub fn runs(&self) -> u64 {
        self.traces.len() as u64 + self.compacted.as_ref().map_or(0, |c| c.runs)
    }

    /// Total events represented.
    pub fn events(&self) -> u64 {
        self.traces.iter().map(|t| t.events).sum::<u64>()
            + self.compacted.as_ref().map_or(0, |c| c.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("predator-fleet-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let mut m = Manifest::new(DetectorConfig::sensitive());
        m.seq = 3;
        m.traces.push(TraceEntry {
            id: "run-deadbeef".into(),
            file: "run-deadbeef.ptrace".into(),
            seq: 2,
            events: 100,
            loss: LossStats {
                records_lost: 7,
                ..Default::default()
            },
            findings: Vec::new(),
            stats: RunStats::default(),
        });
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(back, m);
        assert_eq!(back.runs(), 1);
        assert!(back.find("run-deadbeef").is_some());
        assert!(back.find("other").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let m = Manifest::new(DetectorConfig::sensitive());
        assert!(m.check_config(&DetectorConfig::sensitive()).is_ok());
        let err = m.check_config(&DetectorConfig::paper()).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn wrong_schema_is_a_clean_error() {
        let dir =
            std::env::temp_dir().join(format!("predator-fleet-schema-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = Manifest::new(DetectorConfig::sensitive());
        m.schema = "predator-corpus/99".into();
        m.save(&dir).unwrap();
        let err = Manifest::load(&dir).unwrap_err();
        assert!(err.contains("unsupported corpus schema"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
