//! Retention: `fleet compact` keeps the newest N raw traces and folds the
//! rest into the manifest's [`Compacted`] section — merged aggregates stay,
//! raw `.ptrace` files and per-trace provenance go.
//!
//! Because the merge is associative (see [`crate::merge`]), folding dropped
//! runs into `Compacted` and later merging that section with the surviving
//! live entries yields exactly the aggregate totals the full corpus would
//! have produced. What compaction loses is *resolution*, not *mass*: you
//! can no longer ask which specific dropped run contributed what, or
//! re-analyze dropped traces under a new detector configuration.
//!
//! [`Compacted`]: crate::manifest::Compacted

use std::path::Path;

use crate::manifest::{Manifest, TraceEntry};
use crate::merge::{aggregate_entry, merge_aggregates};

/// What one `fleet compact` did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Raw traces dropped.
    pub dropped: u64,
    /// Raw traces kept.
    pub kept: u64,
    /// Bytes of raw trace files reclaimed.
    pub bytes_reclaimed: u64,
}

/// Compacts the corpus at `dir` down to its `keep` newest members (by
/// ingest sequence). Older members' aggregates fold into the manifest's
/// compacted section; their raw files are deleted.
pub fn compact(dir: &Path, keep: usize) -> Result<CompactOutcome, String> {
    let _span = predator_obs::span("fleet_compact");
    let mut m = Manifest::load_required(dir)?;
    if m.traces.len() <= keep {
        m.save(dir)?;
        return Ok(CompactOutcome {
            dropped: 0,
            kept: m.traces.len() as u64,
            bytes_reclaimed: 0,
        });
    }
    // Newest-first by ingest sequence; everything past `keep` folds away.
    m.traces.sort_by_key(|t| std::cmp::Reverse(t.seq));
    let dropped: Vec<TraceEntry> = m.traces.split_off(keep);

    let mut c = m.compacted.take().unwrap_or_default();
    c.runs += dropped.len() as u64;
    for t in &dropped {
        c.events += t.events;
        c.chunks_skipped += t.loss.chunks_skipped;
        c.records_lost += t.loss.records_lost;
        c.bytes_skipped += t.loss.bytes_skipped;
        c.truncated_runs += t.loss.truncated as u64;
    }
    let folded = dropped.iter().flat_map(aggregate_entry);
    let previous = std::mem::take(&mut c.aggregates);
    c.aggregates = merge_aggregates(folded.chain(previous));
    for a in &mut c.aggregates {
        a.provenance.clear(); // per-run resolution is what compaction spends
    }
    m.compacted = Some(c);
    canonicalize(&mut m);

    // Manifest first: if a file delete fails we have an orphan .ptrace on
    // disk, not a manifest entry pointing at nothing.
    m.save(dir)?;
    let mut bytes_reclaimed = 0;
    for t in &dropped {
        let p = dir.join(&t.file);
        if let Ok(md) = std::fs::metadata(&p) {
            bytes_reclaimed += md.len();
        }
        std::fs::remove_file(&p).map_err(|e| format!("cannot remove {}: {e}", p.display()))?;
    }
    Ok(CompactOutcome {
        dropped: dropped.len() as u64,
        kept: keep as u64,
        bytes_reclaimed,
    })
}

/// Restores the manifest's canonical member order (by id) after compact's
/// seq sort. Reports never depend on this order, but a stable file layout
/// keeps `corpus.json` diffs readable.
pub fn canonicalize(m: &mut Manifest) {
    m.traces.sort_by(|a, b| a.id.cmp(&b.id));
}
