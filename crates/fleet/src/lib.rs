//! # predator-fleet — `.ptrace` corpus store and cross-run reports
//!
//! One trace answers "does this *run* false-share?". A fleet of traces —
//! nightly CI runs, per-machine captures, different workloads of the same
//! binary — answers the question developers actually have: *which callsites
//! keep hurting us, across runs, and are they getting worse?* This crate is
//! that layer:
//!
//! - **[`ingest`]** — stream `.ptrace` files through the sharded analyzer
//!   into a corpus directory (raw traces + a schema-versioned `corpus.json`
//!   manifest). Content-addressed ids make re-ingestion a no-op; corrupted
//!   traces degrade to loss accounting, never errors.
//! - **[`merge`]** — dedupe findings across runs by stable callsite key and
//!   rank the merged aggregates by fleet-wide invalidation impact, with
//!   per-trace provenance. The merge is associative and commutative, so the
//!   report is a pure function of the member *set*.
//! - **[`trend`]** — delta two corpora: new / fixed / regressed / improved
//!   callsites by per-run mean invalidations, with CI gating semantics.
//! - **[`compact`]** — retention: keep the newest N raw traces, fold older
//!   runs into merged aggregates, reclaim the bytes.
//! - **[`watch`]** — spool-directory polling for `predator serve --watch`:
//!   complete-trailer detection, per-path change stamps, and content-id
//!   dedup make periodic auto-ingest safe against files mid-write.
//!
//! Everything is observable through `predator-obs`: ingest counters
//! (`fleet_traces_ingested_total`, `fleet_events_ingested_total`,
//! `fleet_bytes_ingested_total`), per-phase spans (`fleet_ingest`,
//! `fleet_merge`, `fleet_trend`, `fleet_compact`), and an [`ObsSnapshot`]
//! embedded in every [`FleetReport`].
//!
//! [`ObsSnapshot`]: predator_core::ObsSnapshot

pub mod compact;
pub mod ingest;
pub mod manifest;
pub mod merge;
pub mod trend;
pub mod watch;

pub use compact::{compact, CompactOutcome};
pub use ingest::{content_id, ingest, ingest_trace, IngestOutcome};
pub use manifest::{Compacted, Manifest, TraceEntry, CORPUS_SCHEMA, MANIFEST_FILE};
pub use merge::{
    build_fleet_report, CallsiteAggregate, FleetReport, LossTotals, Provenance, FLEET_REPORT_SCHEMA,
};
pub use trend::{trend, TrendEntry, TrendReport, TrendStatus, DEFAULT_TOLERANCE, TREND_SCHEMA};
pub use watch::{is_complete_trace, WatchOutcome, Watcher};
