//! Cross-run merge: dedupe findings by stable callsite key and rank the
//! merged aggregates by fleet-wide invalidation impact.
//!
//! ## Merge soundness
//!
//! Per-run findings are first folded into per-run [`CallsiteAggregate`]s
//! (one per callsite key), then aggregates are merged pairwise. Every field
//! of the merge is commutative and associative — sums (`total_*`, `runs`),
//! maxima (`max_invalidations`, `last_seen`), minima (`first_seen`), the
//! class lattice (equal classes keep their value, differing classes
//! escalate to `Mixed`), and the representative site (taken from the
//! lexicographically first trace that saw the key). The merged model is
//! therefore a pure function of the *set* of member runs: any ingest order,
//! any merge tree — including folding pre-merged [`Compacted`] aggregates
//! back in — produces the identical report.
//!
//! [`Compacted`]: crate::manifest::Compacted

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use predator_core::{FindingKind, ObsSnapshot, SharingClass, SiteKind};

use crate::manifest::{Manifest, TraceEntry};

/// Fleet report schema tag.
pub const FLEET_REPORT_SCHEMA: &str = "predator-fleet-report/1";

/// One run's contribution to a merged aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Content id of the contributing trace.
    pub trace: String,
    /// Invalidations that run contributed to the key.
    pub invalidations: u64,
}

/// One callsite's merged, fleet-wide record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallsiteAggregate {
    /// Stable cross-run key (`Finding::callsite_key`).
    pub key: String,
    /// Representative detection kind (from the first-seen run).
    pub kind: FindingKind,
    /// Sharing class; runs that disagree escalate to `Mixed`.
    pub class: SharingClass,
    /// Representative source site (from the first-seen run).
    pub site: SiteKind,
    /// Representative object size in bytes.
    pub object_size: u64,
    /// Invalidations summed across all runs — the ranking key.
    pub total_invalidations: u64,
    /// Worst single run's invalidation total.
    pub max_invalidations: u64,
    /// Sampled accesses summed across runs.
    pub total_accesses: u64,
    /// Sampled writes summed across runs.
    pub total_writes: u64,
    /// Runs in which the key appeared.
    pub runs: u64,
    /// Fraction of corpus runs that hit the key (recomputed at report time;
    /// stored values are informational only).
    pub hit_rate: f64,
    /// Canonically first trace id that saw the key (corpus members are an
    /// unordered set, so "first/last" use the canonical id order, keeping
    /// the merged model independent of ingest order).
    pub first_seen: String,
    /// Canonically last trace id that saw the key.
    pub last_seen: String,
    /// Per-run contributions, sorted by trace id (empty for runs folded in
    /// from a compacted corpus section).
    pub provenance: Vec<Provenance>,
}

/// Corpus-wide damage accounting (sum over member runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LossTotals {
    /// Chunks skipped across all runs.
    pub chunks_skipped: u64,
    /// Event records known lost across all runs.
    pub records_lost: u64,
    /// Raw bytes skipped across all runs.
    pub bytes_skipped: u64,
    /// Member runs whose trace was truncated.
    pub truncated_runs: u64,
}

impl LossTotals {
    /// True if any run lost anything.
    pub fn any(&self) -> bool {
        self.chunks_skipped > 0
            || self.records_lost > 0
            || self.bytes_skipped > 0
            || self.truncated_runs > 0
    }
}

/// The merged fleet-level report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Schema tag ([`FLEET_REPORT_SCHEMA`]).
    pub schema: String,
    /// Runs represented (live + compacted).
    pub runs: u64,
    /// Events represented.
    pub events: u64,
    /// Corpus-wide damage accounting.
    pub loss: LossTotals,
    /// Merged aggregates, ranked by total invalidations (ties broken by
    /// key, so the ranking is total).
    pub aggregates: Vec<CallsiteAggregate>,
    /// Observability snapshot captured when the report was built.
    pub obs: ObsSnapshot,
}

/// Folds one run's findings into per-key aggregates (a run can report
/// several findings under one key: two heap objects from the same
/// allocation site, for example).
pub fn aggregate_entry(entry: &TraceEntry) -> Vec<CallsiteAggregate> {
    let mut by_key: BTreeMap<String, CallsiteAggregate> = BTreeMap::new();
    for f in &entry.findings {
        let key = f.callsite_key();
        let agg = by_key
            .entry(key.clone())
            .or_insert_with(|| CallsiteAggregate {
                key,
                kind: f.kind,
                class: f.class,
                site: f.object.site.clone(),
                object_size: f.object.size,
                total_invalidations: 0,
                max_invalidations: 0,
                total_accesses: 0,
                total_writes: 0,
                runs: 1,
                hit_rate: 0.0,
                first_seen: entry.id.clone(),
                last_seen: entry.id.clone(),
                provenance: Vec::new(),
            });
        agg.total_invalidations += f.invalidations;
        agg.total_accesses += f.accesses;
        agg.total_writes += f.writes;
        if agg.class != f.class {
            agg.class = SharingClass::Mixed;
        }
    }
    by_key
        .into_values()
        .map(|mut a| {
            a.max_invalidations = a.total_invalidations;
            a.provenance = vec![Provenance {
                trace: entry.id.clone(),
                invalidations: a.total_invalidations,
            }];
            a
        })
        .collect()
}

/// Merges `b` into `a` (same key). Commutative and associative; see the
/// module doc for the soundness argument.
pub fn merge_into(a: &mut CallsiteAggregate, b: CallsiteAggregate) {
    debug_assert_eq!(a.key, b.key);
    // Representative identity follows the canonically first run.
    if b.first_seen < a.first_seen {
        a.kind = b.kind;
        a.site = b.site;
        a.object_size = b.object_size;
        a.first_seen = b.first_seen;
    }
    if b.last_seen > a.last_seen {
        a.last_seen = b.last_seen;
    }
    if a.class != b.class {
        a.class = SharingClass::Mixed;
    }
    a.total_invalidations += b.total_invalidations;
    a.max_invalidations = a.max_invalidations.max(b.max_invalidations);
    a.total_accesses += b.total_accesses;
    a.total_writes += b.total_writes;
    a.runs += b.runs;
    a.provenance.extend(b.provenance);
}

/// Merges any number of aggregates into one record per key, ranked.
pub fn merge_aggregates(
    iter: impl IntoIterator<Item = CallsiteAggregate>,
) -> Vec<CallsiteAggregate> {
    let mut by_key: BTreeMap<String, CallsiteAggregate> = BTreeMap::new();
    for agg in iter {
        match by_key.get_mut(&agg.key) {
            Some(existing) => merge_into(existing, agg),
            None => {
                by_key.insert(agg.key.clone(), agg);
            }
        }
    }
    let mut merged: Vec<CallsiteAggregate> = by_key.into_values().collect();
    for a in &mut merged {
        a.provenance.sort_by(|x, y| x.trace.cmp(&y.trace));
    }
    rank(&mut merged);
    merged
}

/// Ranks by total invalidation impact, ties broken by key.
pub fn rank(aggs: &mut [CallsiteAggregate]) {
    aggs.sort_by(|a, b| {
        b.total_invalidations
            .cmp(&a.total_invalidations)
            .then_with(|| a.key.cmp(&b.key))
    });
}

/// Builds the merged fleet report for a corpus.
pub fn build_fleet_report(m: &Manifest) -> FleetReport {
    let _span = predator_obs::span("fleet_merge");
    let live = m.traces.iter().flat_map(aggregate_entry);
    let compacted = m
        .compacted
        .iter()
        .flat_map(|c| c.aggregates.iter().cloned());
    let mut aggregates = merge_aggregates(live.chain(compacted));
    let runs = m.runs();
    for a in &mut aggregates {
        a.hit_rate = if runs == 0 {
            0.0
        } else {
            a.runs as f64 / runs as f64
        };
    }
    let mut loss = LossTotals::default();
    for t in &m.traces {
        loss.chunks_skipped += t.loss.chunks_skipped;
        loss.records_lost += t.loss.records_lost;
        loss.bytes_skipped += t.loss.bytes_skipped;
        loss.truncated_runs += t.loss.truncated as u64;
    }
    if let Some(c) = &m.compacted {
        loss.chunks_skipped += c.chunks_skipped;
        loss.records_lost += c.records_lost;
        loss.bytes_skipped += c.bytes_skipped;
        loss.truncated_runs += c.truncated_runs;
    }
    FleetReport {
        schema: FLEET_REPORT_SCHEMA.to_string(),
        runs,
        events: m.events(),
        loss,
        aggregates,
        obs: ObsSnapshot::capture(),
    }
}

impl FleetReport {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet report serialization cannot fail")
    }

    /// Short source label for an aggregate's site.
    fn site_label(site: &SiteKind) -> String {
        match site {
            SiteKind::Heap { callsite, .. } => callsite
                .frames
                .first()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "?".to_string()),
            SiteKind::Global { name } => name.clone(),
            SiteKind::Unknown => "(unattributed)".to_string(),
        }
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FLEET REPORT — {} run(s), {} event(s), {} callsite(s)",
            self.runs,
            self.events,
            self.aggregates.len()
        )?;
        if self.loss.any() {
            writeln!(
                f,
                "corpus loss: {} chunk(s) skipped, {} record(s) lost, {} byte(s) skipped, \
                 {} truncated run(s)",
                self.loss.chunks_skipped,
                self.loss.records_lost,
                self.loss.bytes_skipped,
                self.loss.truncated_runs
            )?;
        }
        if self.aggregates.is_empty() {
            writeln!(f, "No sharing problems found in any run.")?;
            return Ok(());
        }
        writeln!(
            f,
            "{:>4}  {:>13} {:>13} {:>5} {:>5}  {:<14} {:<10} SITE",
            "RANK", "TOTAL INVAL", "MAX/RUN", "RUNS", "HIT%", "CLASS", "DETECTION"
        )?;
        for (i, a) in self.aggregates.iter().enumerate() {
            writeln!(
                f,
                "{:>4}  {:>13} {:>13} {:>5} {:>4.0}%  {:<14} {:<10} {}",
                i + 1,
                a.total_invalidations,
                a.max_invalidations,
                a.runs,
                a.hit_rate * 100.0,
                a.class.to_string(),
                a.kind.family(),
                Self::site_label(&a.site)
            )?;
            let span = if a.first_seen == a.last_seen {
                format!("run {}", a.first_seen)
            } else {
                format!("runs {} .. {}", a.first_seen, a.last_seen)
            };
            writeln!(f, "      {span} ({})", a.key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::{Finding, ObjectReport, RunStats};
    use predator_trace::LossStats;

    fn finding(name: &str, invalidations: u64, class: SharingClass) -> Finding {
        Finding {
            kind: FindingKind::Observed,
            class,
            object: ObjectReport {
                start: 0x1000,
                end: 0x1040,
                size: 64,
                site: SiteKind::Global { name: name.into() },
            },
            invalidations,
            accesses: invalidations * 2,
            writes: invalidations,
            words: Vec::new(),
            virtual_lines: Vec::new(),
            timeline: Vec::new(),
            invalidation_traces: Vec::new(),
            verified: None,
        }
    }

    fn entry(id: &str, findings: Vec<Finding>) -> TraceEntry {
        TraceEntry {
            id: id.into(),
            file: format!("{id}.ptrace"),
            seq: 0,
            events: 10,
            loss: LossStats::default(),
            findings,
            stats: RunStats::default(),
        }
    }

    fn manifest(entries: Vec<TraceEntry>) -> Manifest {
        let mut m = Manifest::new(predator_core::DetectorConfig::sensitive());
        m.traces = entries;
        m
    }

    #[test]
    fn merges_same_key_across_runs_and_ranks_by_total() {
        let m = manifest(vec![
            entry("a-1", vec![finding("hot", 100, SharingClass::FalseSharing)]),
            entry(
                "b-2",
                vec![
                    finding("hot", 50, SharingClass::FalseSharing),
                    finding("cold", 200, SharingClass::FalseSharing),
                ],
            ),
        ]);
        let r = build_fleet_report(&m);
        assert_eq!(r.runs, 2);
        assert_eq!(r.aggregates.len(), 2);
        // "cold" has 200 total, "hot" 150 — ranked by total.
        assert_eq!(r.aggregates[0].key, "observed|global:cold");
        assert_eq!(r.aggregates[1].key, "observed|global:hot");
        let hot = &r.aggregates[1];
        assert_eq!(hot.total_invalidations, 150);
        assert_eq!(hot.max_invalidations, 100);
        assert_eq!(hot.runs, 2);
        assert!((hot.hit_rate - 1.0).abs() < 1e-12);
        assert_eq!(hot.first_seen, "a-1");
        assert_eq!(hot.last_seen, "b-2");
        assert_eq!(hot.provenance.len(), 2);
        let cold = &r.aggregates[0];
        assert!((cold.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_run_findings_under_one_key_fold_together() {
        // Two findings from the same callsite in ONE run count as one run.
        let m = manifest(vec![entry(
            "a-1",
            vec![
                finding("hot", 10, SharingClass::FalseSharing),
                finding("hot", 20, SharingClass::FalseSharing),
            ],
        )]);
        let r = build_fleet_report(&m);
        assert_eq!(r.aggregates.len(), 1);
        assert_eq!(r.aggregates[0].runs, 1);
        assert_eq!(r.aggregates[0].total_invalidations, 30);
        assert_eq!(r.aggregates[0].max_invalidations, 30);
    }

    #[test]
    fn class_disagreement_escalates_to_mixed() {
        let m = manifest(vec![
            entry("a-1", vec![finding("hot", 10, SharingClass::FalseSharing)]),
            entry("b-2", vec![finding("hot", 10, SharingClass::TrueSharing)]),
        ]);
        let r = build_fleet_report(&m);
        assert_eq!(r.aggregates[0].class, SharingClass::Mixed);
    }

    #[test]
    fn merge_is_order_independent() {
        let e1 = entry("a-1", vec![finding("x", 5, SharingClass::FalseSharing)]);
        let e2 = entry("b-2", vec![finding("x", 7, SharingClass::FalseSharing)]);
        let e3 = entry("c-3", vec![finding("y", 9, SharingClass::TrueSharing)]);
        let fwd = build_fleet_report(&manifest(vec![e1.clone(), e2.clone(), e3.clone()]));
        let rev = build_fleet_report(&manifest(vec![e3, e2, e1]));
        assert_eq!(fwd.aggregates, rev.aggregates);
        assert_eq!(fwd.runs, rev.runs);
    }

    #[test]
    fn loss_totals_sum_across_runs() {
        let mut e1 = entry("a-1", vec![]);
        e1.loss = LossStats {
            chunks_skipped: 1,
            records_lost: 100,
            bytes_skipped: 64,
            truncated: true,
        };
        let e2 = entry("b-2", vec![]);
        let r = build_fleet_report(&manifest(vec![e1, e2]));
        assert_eq!(r.loss.chunks_skipped, 1);
        assert_eq!(r.loss.records_lost, 100);
        assert_eq!(r.loss.truncated_runs, 1);
        assert!(r.loss.any());
        assert!(r.to_string().contains("corpus loss"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let m = manifest(vec![entry(
            "a-1",
            vec![finding("hot", 100, SharingClass::FalseSharing)],
        )]);
        let r = build_fleet_report(&m);
        let back: FleetReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
