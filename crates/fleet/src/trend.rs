//! Trend deltas: compare the current corpus against a baseline corpus and
//! classify every callsite as new, fixed, regressed, improved, or steady.
//!
//! Comparisons use the **per-run mean** invalidation count, not the raw
//! total — a corpus that merely accumulated more runs is not "worse". The
//! tolerance (default ±50%) bounds run-to-run noise: a callsite regresses
//! only when its mean grows by more than `tolerance` relative to baseline.
//!
//! Classification routes through the shared comparison engine
//! ([`predator_policy::compare`]); this module owns the per-run-mean
//! keying, the severity sort, and the report format.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use predator_policy::compare::{compare_maps, Delta};

use crate::merge::{CallsiteAggregate, FleetReport};

/// Default relative tolerance before a mean shift counts as a change.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// How a callsite moved between baseline and current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrendStatus {
    /// Absent from baseline, present now.
    New,
    /// Present in baseline, absent now.
    Fixed,
    /// Per-run mean grew beyond tolerance.
    Regressed,
    /// Per-run mean shrank beyond tolerance.
    Improved,
    /// Within tolerance.
    Steady,
}

impl std::fmt::Display for TrendStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrendStatus::New => f.write_str("NEW"),
            TrendStatus::Fixed => f.write_str("FIXED"),
            TrendStatus::Regressed => f.write_str("REGRESSED"),
            TrendStatus::Improved => f.write_str("improved"),
            TrendStatus::Steady => f.write_str("steady"),
        }
    }
}

/// One callsite's movement between the two corpora.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendEntry {
    /// Stable callsite key.
    pub key: String,
    /// Classification.
    pub status: TrendStatus,
    /// Baseline per-run mean invalidations (0 when new).
    pub baseline_mean: f64,
    /// Current per-run mean invalidations (0 when fixed).
    pub current_mean: f64,
    /// `current_mean - baseline_mean`.
    pub delta: f64,
}

/// The full delta report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendReport {
    /// Schema tag.
    pub schema: String,
    /// Relative tolerance used.
    pub tolerance: f64,
    /// Baseline runs.
    pub baseline_runs: u64,
    /// Current runs.
    pub current_runs: u64,
    /// Entries, worst movement first (new, then regressed by descending
    /// delta, then fixed/improved/steady).
    pub entries: Vec<TrendEntry>,
}

/// Trend report schema tag.
pub const TREND_SCHEMA: &str = "predator-fleet-trend/1";

fn mean(a: &CallsiteAggregate) -> f64 {
    if a.runs == 0 {
        0.0
    } else {
        a.total_invalidations as f64 / a.runs as f64
    }
}

fn severity(e: &TrendEntry) -> (u8, f64) {
    let class = match e.status {
        TrendStatus::New => 0,
        TrendStatus::Regressed => 1,
        TrendStatus::Fixed => 2,
        TrendStatus::Improved => 3,
        TrendStatus::Steady => 4,
    };
    // Bigger absolute movement first within a class.
    (class, -e.delta.abs())
}

/// Computes the delta of `current` against `baseline`.
pub fn trend(baseline: &FleetReport, current: &FleetReport, tolerance: f64) -> TrendReport {
    let _span = predator_obs::span("fleet_trend");
    let base: BTreeMap<&str, f64> = baseline
        .aggregates
        .iter()
        .map(|a| (a.key.as_str(), mean(a)))
        .collect();
    let cur: BTreeMap<&str, f64> = current
        .aggregates
        .iter()
        .map(|a| (a.key.as_str(), mean(a)))
        .collect();
    let mut entries: Vec<TrendEntry> = compare_maps(&base, &cur, tolerance)
        .into_iter()
        .map(|e| TrendEntry {
            key: e.key.to_string(),
            status: match e.delta {
                Delta::Added => TrendStatus::New,
                Delta::Removed => TrendStatus::Fixed,
                Delta::Increased => TrendStatus::Regressed,
                Delta::Decreased => TrendStatus::Improved,
                Delta::Steady => TrendStatus::Steady,
            },
            baseline_mean: e.before,
            current_mean: e.after,
            delta: e.after - e.before,
        })
        .collect();
    entries.sort_by(|a, b| {
        let (ca, da) = severity(a);
        let (cb, db) = severity(b);
        ca.cmp(&cb)
            .then_with(|| da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal))
            .then_with(|| a.key.cmp(&b.key))
    });
    TrendReport {
        schema: TREND_SCHEMA.to_string(),
        tolerance,
        baseline_runs: baseline.runs,
        current_runs: current.runs,
        entries,
    }
}

impl TrendReport {
    /// True when any callsite is new or regressed — the `--fail-on-regression`
    /// gate.
    pub fn has_regressions(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.status, TrendStatus::New | TrendStatus::Regressed))
    }

    /// Count with a given status.
    pub fn count(&self, s: TrendStatus) -> usize {
        self.entries.iter().filter(|e| e.status == s).count()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trend report serialization cannot fail")
    }
}

impl std::fmt::Display for TrendReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FLEET TREND — baseline {} run(s), current {} run(s), tolerance ±{:.0}%",
            self.baseline_runs,
            self.current_runs,
            self.tolerance * 100.0
        )?;
        writeln!(
            f,
            "{} new, {} regressed, {} fixed, {} improved, {} steady",
            self.count(TrendStatus::New),
            self.count(TrendStatus::Regressed),
            self.count(TrendStatus::Fixed),
            self.count(TrendStatus::Improved),
            self.count(TrendStatus::Steady),
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:>10}  {:>12.1} -> {:>12.1} ({:+.1})  {}",
                e.status.to_string(),
                e.baseline_mean,
                e.current_mean,
                e.delta,
                e.key
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{FleetReport, LossTotals, FLEET_REPORT_SCHEMA};
    use predator_core::{FindingKind, ObsSnapshot, SharingClass, SiteKind};

    fn agg(key: &str, total: u64, runs: u64) -> CallsiteAggregate {
        CallsiteAggregate {
            key: key.into(),
            kind: FindingKind::Observed,
            class: SharingClass::FalseSharing,
            site: SiteKind::Unknown,
            object_size: 64,
            total_invalidations: total,
            max_invalidations: total,
            total_accesses: 0,
            total_writes: 0,
            runs,
            hit_rate: 1.0,
            first_seen: "a".into(),
            last_seen: "a".into(),
            provenance: Vec::new(),
        }
    }

    fn report(aggs: Vec<CallsiteAggregate>, runs: u64) -> FleetReport {
        FleetReport {
            schema: FLEET_REPORT_SCHEMA.to_string(),
            runs,
            events: 0,
            loss: LossTotals::default(),
            aggregates: aggs,
            obs: ObsSnapshot::capture(),
        }
    }

    #[test]
    fn classifies_new_fixed_regressed_improved_steady() {
        let baseline = report(
            vec![
                agg("gone", 100, 1),
                agg("worse", 100, 1),
                agg("better", 100, 1),
                agg("same", 100, 1),
            ],
            1,
        );
        let current = report(
            vec![
                agg("brand-new", 50, 1),
                agg("worse", 200, 1),
                agg("better", 10, 1),
                agg("same", 110, 1),
            ],
            1,
        );
        let t = trend(&baseline, &current, DEFAULT_TOLERANCE);
        let status = |k: &str| {
            t.entries
                .iter()
                .find(|e| e.key == k)
                .map(|e| e.status)
                .unwrap()
        };
        assert_eq!(status("brand-new"), TrendStatus::New);
        assert_eq!(status("gone"), TrendStatus::Fixed);
        assert_eq!(status("worse"), TrendStatus::Regressed);
        assert_eq!(status("better"), TrendStatus::Improved);
        assert_eq!(status("same"), TrendStatus::Steady);
        assert!(t.has_regressions());
        // Worst movement first: new entries lead.
        assert_eq!(t.entries[0].status, TrendStatus::New);
    }

    #[test]
    fn per_run_means_ignore_corpus_growth() {
        // Same mean (100/run) across 1 vs 3 runs: steady, not regressed.
        let baseline = report(vec![agg("k", 100, 1)], 1);
        let current = report(vec![agg("k", 300, 3)], 3);
        let t = trend(&baseline, &current, DEFAULT_TOLERANCE);
        assert_eq!(t.entries[0].status, TrendStatus::Steady);
        assert!(!t.has_regressions());
    }

    #[test]
    fn fixed_and_improved_do_not_gate() {
        let baseline = report(vec![agg("gone", 100, 1), agg("better", 100, 1)], 1);
        let current = report(vec![agg("better", 10, 1)], 1);
        let t = trend(&baseline, &current, DEFAULT_TOLERANCE);
        assert!(!t.has_regressions());
    }

    #[test]
    fn roundtrips_through_json() {
        let baseline = report(vec![agg("k", 100, 1)], 1);
        let current = report(vec![agg("k", 500, 1)], 1);
        let t = trend(&baseline, &current, DEFAULT_TOLERANCE);
        let back: TrendReport = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }
}
