//! Directory watcher: periodic auto-ingest for `predator serve --watch`.
//!
//! Live-monitoring deployments drop `.ptrace` captures into a spool
//! directory (from CI jobs, per-machine cron captures, manual runs); the
//! serve loop polls a [`Watcher`] so new traces flow into the corpus
//! without an operator running `predator fleet ingest` by hand.
//!
//! Two safety properties matter more than latency:
//!
//! * **Never ingest a file mid-write.** A complete `.ptrace` ends with the
//!   fixed [`END_MAGIC`] trailer bytes; a file still being written does
//!   not. [`is_complete_trace`] checks the tail, and incomplete files are
//!   simply skipped until a later poll sees them finished.
//! * **Never ingest the same content twice.** The per-path `(len, mtime)`
//!   cache skips unchanged files cheaply; renames and copies still land on
//!   [`ingest_trace`]'s content-addressed dedup, so the corpus stays a set.
//!
//! Per-file errors are collected, counted, and reported in the outcome —
//! one corrupt trace must not stall the fleet pipeline.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use predator_trace::analyze::AnalyzeConfig;
use predator_trace::format::{END_MAGIC, TRAILER_LEN};

use crate::ingest::{ingest_trace, IngestOutcome};
use crate::manifest::Manifest;

/// What one poll of the spool directory did.
#[derive(Debug, Default)]
pub struct WatchOutcome {
    /// Candidate `.ptrace` files seen this poll.
    pub scanned: usize,
    /// Traces ingested (or dedup-hit) this poll.
    pub ingested: Vec<IngestOutcome>,
    /// Files skipped because their trailer is not complete yet.
    pub incomplete: usize,
    /// Per-file errors (path: message); the poll itself still succeeds.
    pub errors: Vec<String>,
}

impl WatchOutcome {
    /// Traces newly added to the corpus this poll (dedup hits excluded).
    pub fn added(&self) -> usize {
        self.ingested.iter().filter(|o| o.added).count()
    }
}

/// True when `path` is a finished `.ptrace`: long enough to hold a trailer
/// and ending with the [`END_MAGIC`] bytes the writer appends last.
pub fn is_complete_trace(path: &Path) -> bool {
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let Ok(len) = f.seek(SeekFrom::End(0)) else {
        return false;
    };
    if (len as usize) < TRAILER_LEN {
        return false;
    }
    let mut tail = [0u8; END_MAGIC.len()];
    if f.seek(SeekFrom::End(-(END_MAGIC.len() as i64))).is_err() {
        return false;
    }
    f.read_exact(&mut tail).is_ok() && &tail == END_MAGIC
}

/// Polls a spool directory and ingests complete, not-yet-seen traces into a
/// corpus directory.
pub struct Watcher {
    watch_dir: PathBuf,
    corpus_dir: PathBuf,
    cfg: AnalyzeConfig,
    /// Per-path `(len, mtime)` at last successful handling, so an unchanged
    /// file costs one `stat` per poll instead of a full read.
    seen: HashMap<PathBuf, (u64, Option<SystemTime>)>,
}

impl Watcher {
    /// A watcher spooling from `watch_dir` into the corpus at `corpus_dir`.
    pub fn new(watch_dir: &Path, corpus_dir: &Path, cfg: AnalyzeConfig) -> Self {
        Watcher {
            watch_dir: watch_dir.to_path_buf(),
            corpus_dir: corpus_dir.to_path_buf(),
            cfg,
            seen: HashMap::new(),
        }
    }

    /// The spool directory being watched.
    pub fn watch_dir(&self) -> &Path {
        &self.watch_dir
    }

    /// The corpus directory being filled.
    pub fn corpus_dir(&self) -> &Path {
        &self.corpus_dir
    }

    /// One poll: scan, filter to complete unseen traces, ingest, save the
    /// manifest once. Returns `Err` only when the directory itself cannot
    /// be scanned or the corpus manifest cannot be loaded/saved; per-file
    /// failures ride along in [`WatchOutcome::errors`].
    pub fn poll(&mut self) -> Result<WatchOutcome, String> {
        let _span = predator_obs::span("fleet_watch");
        predator_obs::static_counter!("fleet_watch_scans_total").inc();
        let mut out = WatchOutcome::default();

        let entries = std::fs::read_dir(&self.watch_dir)
            .map_err(|e| format!("cannot scan {}: {e}", self.watch_dir.display()))?;
        let mut candidates: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|s| s.to_str()) == Some("ptrace"))
            .collect();
        candidates.sort();
        out.scanned = candidates.len();
        if candidates.is_empty() {
            return Ok(out);
        }

        let mut manifest: Option<Manifest> = None;
        for path in candidates {
            let stamp = match std::fs::metadata(&path) {
                Ok(md) => (md.len(), md.modified().ok()),
                Err(e) => {
                    out.errors.push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            if self.seen.get(&path) == Some(&stamp) {
                continue;
            }
            if !is_complete_trace(&path) {
                out.incomplete += 1;
                predator_obs::static_counter!("fleet_watch_incomplete_total").inc();
                continue;
            }
            // Lazy-load the manifest on the first actionable file so an
            // idle poll never touches corpus state.
            if manifest.is_none() {
                manifest = Some(match Manifest::load(&self.corpus_dir)? {
                    Some(m) => {
                        m.check_config(&self.cfg.det)?;
                        m
                    }
                    None => Manifest::new(self.cfg.det),
                });
            }
            let m = manifest.as_mut().expect("manifest loaded above");
            match ingest_trace(m, &self.corpus_dir, &path, &self.cfg) {
                Ok(o) => {
                    self.seen.insert(path, stamp);
                    out.ingested.push(o);
                }
                Err(e) => {
                    predator_obs::static_counter!("fleet_watch_errors_total").inc();
                    out.errors.push(e);
                }
            }
        }
        if let Some(m) = manifest {
            if !out.ingested.is_empty() {
                m.save(&self.corpus_dir)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::DetectorConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("predator-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn incomplete_trace_is_detected_and_skipped() {
        let spool = tmpdir("incomplete");
        let partial = spool.join("partial.ptrace");
        std::fs::write(&partial, b"PTRC....some bytes, no trailer").unwrap();
        assert!(!is_complete_trace(&partial));

        let corpus = tmpdir("incomplete-corpus");
        let cfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 1);
        let mut w = Watcher::new(&spool, &corpus, cfg);
        let out = w.poll().unwrap();
        assert_eq!(out.scanned, 1);
        assert_eq!(out.incomplete, 1);
        assert!(out.ingested.is_empty());
        let _ = std::fs::remove_dir_all(&spool);
        let _ = std::fs::remove_dir_all(&corpus);
    }

    #[test]
    fn empty_spool_polls_clean() {
        let spool = tmpdir("empty");
        let corpus = tmpdir("empty-corpus");
        let cfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 1);
        let mut w = Watcher::new(&spool, &corpus, cfg);
        let out = w.poll().unwrap();
        assert_eq!(out.scanned, 0);
        assert!(out.errors.is_empty());
        // An idle poll must not create corpus state.
        assert!(!corpus.join(crate::MANIFEST_FILE).exists());
        let _ = std::fs::remove_dir_all(&spool);
        let _ = std::fs::remove_dir_all(&corpus);
    }
}
