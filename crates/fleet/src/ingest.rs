//! Corpus ingestion: stream a `.ptrace` file through the sharded analyzer
//! and record the run in the manifest.
//!
//! Ingest is content-addressed: a trace's id is its file stem plus the
//! CRC32 of its raw bytes, so ingesting the same file twice (from any path)
//! is a no-op and the corpus is a set. Corrupted traces are NOT errors —
//! the analyzer's loss accounting (skipped chunks, lost records, truncated
//! tails) rides along into the manifest and surfaces in every report.

use std::path::Path;

use predator_trace::analyze::{analyze_file, sniff_format, AnalyzeConfig, TraceFormat};
use predator_trace::crc32::crc32;

use crate::manifest::{Manifest, TraceEntry};

/// What one `fleet ingest` of one file did.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// Content id of the trace.
    pub id: String,
    /// False when the corpus already held this content (dedup hit).
    pub added: bool,
    /// Events delivered to the analyzer (0 on a dedup hit).
    pub events: u64,
    /// Findings the run produced (0 on a dedup hit).
    pub findings: usize,
    /// Raw trace size in bytes.
    pub bytes: u64,
}

/// Content id for a trace file: `<stem>-<crc32 hex>` of the raw bytes.
pub fn content_id(path: &Path, bytes: &[u8]) -> String {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    format!("{stem}-{:08x}", crc32(bytes))
}

/// Ingests one `.ptrace` file into the corpus at `dir`, creating the corpus
/// if needed. Returns the outcome; the manifest is saved by the caller (so
/// a multi-file ingest writes `corpus.json` once).
pub fn ingest_trace(
    m: &mut Manifest,
    dir: &Path,
    path: &Path,
    cfg: &AnalyzeConfig,
) -> Result<IngestOutcome, String> {
    let _span = predator_obs::span("fleet_ingest");
    if sniff_format(path)? != TraceFormat::Ptrace {
        return Err(format!(
            "{}: not a .ptrace file (fleet corpora hold binary traces only — \
             convert JSONL with `predator trace` tooling first)",
            path.display()
        ));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let id = content_id(path, &bytes);
    predator_obs::global()
        .counter("fleet_bytes_ingested_total")
        .add(bytes.len() as u64);
    if m.find(&id).is_some() {
        return Ok(IngestOutcome {
            id,
            added: false,
            events: 0,
            findings: 0,
            bytes: bytes.len() as u64,
        });
    }

    // Copy the raw trace in before analyzing, so the corpus member and the
    // analysis results always describe the same bytes.
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let file = format!("{id}.ptrace");
    let dest = dir.join(&file);
    std::fs::write(&dest, &bytes).map_err(|e| format!("cannot write {}: {e}", dest.display()))?;

    let outcome = analyze_file(&dest, cfg, 0, 0)?;
    predator_obs::global()
        .counter("fleet_traces_ingested_total")
        .add(1);
    predator_obs::global()
        .counter("fleet_events_ingested_total")
        .add(outcome.events);

    let seq = m.seq;
    m.seq += 1;
    let findings = outcome.report.findings.len();
    m.traces.push(TraceEntry {
        id: id.clone(),
        file,
        seq,
        events: outcome.events,
        loss: outcome.loss,
        findings: outcome.report.findings,
        stats: outcome.report.stats,
    });
    Ok(IngestOutcome {
        id,
        added: true,
        events: outcome.events,
        findings,
        bytes: bytes.len() as u64,
    })
}

/// Ingests many files, saving the manifest once at the end.
pub fn ingest(
    dir: &Path,
    paths: &[std::path::PathBuf],
    cfg: &AnalyzeConfig,
) -> Result<Vec<IngestOutcome>, String> {
    let mut m = match Manifest::load(dir)? {
        Some(m) => {
            m.check_config(&cfg.det)?;
            m
        }
        None => Manifest::new(cfg.det),
    };
    let mut outcomes = Vec::with_capacity(paths.len());
    for p in paths {
        outcomes.push(ingest_trace(&mut m, dir, p, cfg)?);
    }
    m.save(dir)?;
    Ok(outcomes)
}
