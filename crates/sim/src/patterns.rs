//! Synthetic access-pattern generators.
//!
//! Canonical sharing shapes as reusable trace generators — the vocabulary
//! the false-sharing literature (and this workspace's tests and benches)
//! keeps reaching for:
//!
//! * [`Pattern::PingPong`] — distinct threads hammering distinct words of
//!   one line: textbook false sharing;
//! * [`Pattern::TrueShare`] — every thread hammering the *same* word: true
//!   sharing, the false-positive bait;
//! * [`Pattern::Striped`] — per-thread regions at a stride: false sharing
//!   iff the stride packs several threads into a line;
//! * [`Pattern::ReaderWriter`] — one writer, many readers of a neighboring
//!   word: read-write false sharing (invisible to write-only detectors);
//! * [`Pattern::RandomMix`] — seeded uniform traffic for robustness tests.
//!
//! Generators produce per-thread [`Script`]s; combine with
//! [`crate::interleave`] to pick the adversarial or any other schedule.

use rand::Rng;

use crate::access::{Access, AccessKind, ThreadId};
use crate::geometry::WORD_SIZE;
use crate::interleave::Script;

/// A canonical synthetic sharing pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// `threads` threads each write their own word of the line at `base`.
    PingPong {
        /// Number of threads (≤ words per line for distinct words).
        threads: usize,
        /// Line-aligned base address.
        base: u64,
    },
    /// `threads` threads all write the word at `addr`.
    TrueShare {
        /// Number of threads.
        threads: usize,
        /// The contended word.
        addr: u64,
    },
    /// Thread `t` writes the word at `base + t * stride`.
    Striped {
        /// Number of threads.
        threads: usize,
        /// Base address.
        base: u64,
        /// Per-thread stride in bytes (≥ line size ⇒ clean).
        stride: u64,
    },
    /// Thread 0 writes `base`; threads 1.. read `base + WORD_SIZE`.
    ReaderWriter {
        /// Total threads (1 writer + N−1 readers).
        threads: usize,
        /// The written word; readers touch the next word.
        base: u64,
    },
    /// Seeded uniform traffic over `lines` lines from `base`.
    RandomMix {
        /// Number of threads.
        threads: usize,
        /// Base address.
        base: u64,
        /// Lines covered.
        lines: u64,
        /// Probability numerator (out of 100) that an access is a write.
        write_pct: u8,
        /// RNG seed.
        seed: u64,
    },
}

/// Generates `per_thread` accesses for each thread under `pattern`.
pub fn generate(pattern: Pattern, per_thread: usize) -> Script {
    match pattern {
        Pattern::PingPong { threads, base } => {
            let mut s = Script::new(threads);
            for t in 0..threads {
                let addr = base + (t as u64) * WORD_SIZE;
                for _ in 0..per_thread {
                    s.push(t, Access::write(ThreadId(t as u16), addr, 8));
                }
            }
            s
        }
        Pattern::TrueShare { threads, addr } => {
            let mut s = Script::new(threads);
            for t in 0..threads {
                for _ in 0..per_thread {
                    s.push(t, Access::write(ThreadId(t as u16), addr, 8));
                }
            }
            s
        }
        Pattern::Striped {
            threads,
            base,
            stride,
        } => {
            let mut s = Script::new(threads);
            for t in 0..threads {
                let addr = base + (t as u64) * stride;
                for _ in 0..per_thread {
                    s.push(t, Access::write(ThreadId(t as u16), addr, 8));
                }
            }
            s
        }
        Pattern::ReaderWriter { threads, base } => {
            let mut s = Script::new(threads);
            for _ in 0..per_thread {
                s.push(0, Access::write(ThreadId(0), base, 8));
            }
            for t in 1..threads {
                for _ in 0..per_thread {
                    s.push(t, Access::read(ThreadId(t as u16), base + WORD_SIZE, 8));
                }
            }
            s
        }
        Pattern::RandomMix {
            threads,
            base,
            lines,
            write_pct,
            seed,
        } => {
            let mut s = Script::new(threads);
            for t in 0..threads {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    seed ^ ((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                for _ in 0..per_thread {
                    let line = rng.gen_range(0..lines);
                    let word = rng.gen_range(0..8u64);
                    let addr = base + line * 64 + word * 8;
                    let kind = if rng.gen_range(0..100u8) < write_pct {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    s.push(
                        t,
                        Access {
                            tid: ThreadId(t as u16),
                            addr,
                            size: 8,
                            kind,
                        },
                    );
                }
            }
            s
        }
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::{interleave, Schedule};

    const BASE: u64 = 0x4000_0000;

    #[test]
    fn ping_pong_targets_distinct_words_of_one_line() {
        let s = generate(
            Pattern::PingPong {
                threads: 4,
                base: BASE,
            },
            10,
        );
        assert_eq!(s.len(), 40);
        for (t, ops) in s.per_thread.iter().enumerate() {
            assert!(ops.iter().all(|a| a.addr == BASE + t as u64 * 8));
            assert!(ops.iter().all(|a| a.kind == AccessKind::Write));
            assert!(ops.iter().all(|a| a.addr >> 6 == BASE >> 6), "same line");
        }
    }

    #[test]
    fn true_share_targets_one_word() {
        let s = generate(
            Pattern::TrueShare {
                threads: 3,
                addr: BASE + 8,
            },
            5,
        );
        let merged = interleave(&s, &Schedule::RoundRobin);
        assert!(merged.iter().all(|a| a.addr == BASE + 8));
    }

    #[test]
    fn striped_with_line_stride_is_line_disjoint() {
        let s = generate(
            Pattern::Striped {
                threads: 4,
                base: BASE,
                stride: 64,
            },
            5,
        );
        let mut lines: Vec<u64> = s.per_thread.iter().map(|ops| ops[0].addr >> 6).collect();
        lines.dedup();
        assert_eq!(lines.len(), 4, "each thread on its own line");
    }

    #[test]
    fn reader_writer_mixes_kinds() {
        let s = generate(
            Pattern::ReaderWriter {
                threads: 3,
                base: BASE,
            },
            4,
        );
        assert!(s.per_thread[0].iter().all(|a| a.kind == AccessKind::Write));
        assert!(s.per_thread[1].iter().all(|a| a.kind == AccessKind::Read));
        assert_eq!(s.per_thread[1][0].addr, BASE + 8);
    }

    #[test]
    fn random_mix_is_deterministic_and_in_range() {
        let p = Pattern::RandomMix {
            threads: 2,
            base: BASE,
            lines: 4,
            write_pct: 50,
            seed: 9,
        };
        let a = generate(p, 100);
        let b = generate(p, 100);
        for t in 0..2 {
            assert_eq!(a.per_thread[t], b.per_thread[t]);
            for acc in &a.per_thread[t] {
                assert!(acc.addr >= BASE && acc.addr < BASE + 4 * 64);
            }
        }
        let writes = a
            .per_thread
            .iter()
            .flatten()
            .filter(|x| x.kind == AccessKind::Write)
            .count();
        assert!(writes > 50 && writes < 150, "~50%: {writes}");
    }
}
