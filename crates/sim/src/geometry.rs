//! Cache-line and word address arithmetic.
//!
//! All metadata lookups in the detector are O(1) address arithmetic on top of
//! these helpers (the shadow-memory design of §2.3.2). The paper tracks
//! word-granularity information at 8-byte granularity; [`WORD_SIZE`] fixes
//! that constant for the whole workspace.

use serde::{Deserialize, Serialize};

/// Granularity of word-level access tracking, in bytes (§2.3.2).
pub const WORD_SIZE: u64 = 8;
/// `log2(WORD_SIZE)`.
pub const WORD_SHIFT: u32 = 3;

/// Describes a cache-line geometry: a power-of-two line size.
///
/// The default is the ubiquitous 64-byte line. Prediction for doubled line
/// sizes (§3.1, Figure 3b) is expressed by pairing lines of this geometry
/// rather than by a second `CacheGeometry`, mirroring the paper's
/// "virtual line = lines 2·i and 2·i+1" formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    line_shift: u32,
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::new(64)
    }
}

impl CacheGeometry {
    /// Creates a geometry with the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two or is smaller than a word.
    pub fn new(line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two() && line_size >= WORD_SIZE,
            "cache line size must be a power of two >= {WORD_SIZE}, got {line_size}"
        );
        CacheGeometry {
            line_shift: line_size.trailing_zeros(),
        }
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_size(self) -> u64 {
        1 << self.line_shift
    }

    /// `log2(line_size)` — the `CACHELINE_SIZE_SHIFTS` constant of Figure 1.
    #[inline]
    pub fn line_shift(self) -> u32 {
        self.line_shift
    }

    /// Number of tracked words per line.
    #[inline]
    pub fn words_per_line(self) -> usize {
        (self.line_size() >> WORD_SHIFT) as usize
    }

    /// Index of the cache line containing `addr` (`addr >> CACHELINE_SIZE_SHIFTS`).
    #[inline]
    pub fn line_index(self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// First byte address of line `index`.
    #[inline]
    pub fn line_start(self, index: u64) -> u64 {
        index << self.line_shift
    }

    /// Byte offset of `addr` within its line.
    #[inline]
    pub fn offset_in_line(self, addr: u64) -> u64 {
        addr & (self.line_size() - 1)
    }

    /// Index of the word containing `addr`, *within its cache line*.
    #[inline]
    pub fn word_in_line(self, addr: u64) -> usize {
        (self.offset_in_line(addr) >> WORD_SHIFT) as usize
    }

    /// Global word index of `addr` (across the whole address space).
    #[inline]
    pub fn word_index(self, addr: u64) -> u64 {
        addr >> WORD_SHIFT
    }

    /// Returns the inclusive range of line indices touched by an access of
    /// `size` bytes starting at `addr`. Scalar accesses almost always touch a
    /// single line, but unaligned or large accesses may straddle two.
    #[inline]
    pub fn lines_touched(self, addr: u64, size: u8) -> std::ops::RangeInclusive<u64> {
        let first = self.line_index(addr);
        let last = self.line_index(addr + size.max(1) as u64 - 1);
        first..=last
    }

    /// Rounds `addr` down to its line start.
    #[inline]
    pub fn align_down(self, addr: u64) -> u64 {
        addr & !(self.line_size() - 1)
    }

    /// Rounds `addr` up to the next line boundary (identity if aligned).
    #[inline]
    pub fn align_up(self, addr: u64) -> u64 {
        let mask = self.line_size() - 1;
        (addr + mask) & !mask
    }

    /// The prediction portfolio: the line sizes every what-if verdict is
    /// checked against. Covers the deployed spectrum from 32-byte embedded
    /// lines through 64-byte x86 to 128/256-byte POWER and prefetch-paired
    /// server parts.
    pub const PORTFOLIO_LINE_SIZES: [u64; 4] = [32, 64, 128, 256];

    /// All portfolio geometries, smallest line first.
    pub fn portfolio() -> [CacheGeometry; 4] {
        Self::PORTFOLIO_LINE_SIZES.map(CacheGeometry::new)
    }

    /// Byte separation that guarantees two addresses can never share a
    /// physical *or predicted* cache line anywhere in the portfolio: the
    /// largest portfolio line doubled (the §3.1 doubled-line scenario at the
    /// widest geometry). Two addresses at least this far apart cannot fall
    /// inside any single aligned or shifted window of any portfolio size.
    pub fn portfolio_separation() -> u64 {
        Self::PORTFOLIO_LINE_SIZES[Self::PORTFOLIO_LINE_SIZES.len() - 1] * 2
    }
}

/// A cache line subdivided into power-of-two *sectors* — the sectored-cache
/// model (partial-line transfer and per-sector validity) used by several
/// POWER and GPU designs. Coherence is still line-granular, but a remote
/// write only hurts a reader whose live data sits in the written sector;
/// [`crate::mesi::MesiSim`] uses this to split line invalidations into
/// same-sector conflicts and pure padding-artifact ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SectorGeometry {
    line: CacheGeometry,
    sector_shift: u32,
}

impl SectorGeometry {
    /// A sectored geometry: `sector_size` must be a power of two between one
    /// word and the full line.
    ///
    /// # Panics
    ///
    /// Panics if `sector_size` is not a power of two in
    /// `[WORD_SIZE, line_size]`.
    pub fn new(line: CacheGeometry, sector_size: u64) -> Self {
        assert!(
            sector_size.is_power_of_two()
                && sector_size >= WORD_SIZE
                && sector_size <= line.line_size(),
            "sector size must be a power of two in [{WORD_SIZE}, {}], got {sector_size}",
            line.line_size()
        );
        SectorGeometry {
            line,
            sector_shift: sector_size.trailing_zeros(),
        }
    }

    /// The whole-line degenerate case: one sector spanning the line.
    pub fn unsectored(line: CacheGeometry) -> Self {
        SectorGeometry::new(line, line.line_size())
    }

    /// The containing line geometry.
    #[inline]
    pub fn line(self) -> CacheGeometry {
        self.line
    }

    /// Sector size in bytes.
    #[inline]
    pub fn sector_size(self) -> u64 {
        1 << self.sector_shift
    }

    /// Sectors per line.
    #[inline]
    pub fn sectors_per_line(self) -> usize {
        (self.line.line_size() >> self.sector_shift) as usize
    }

    /// Index of the sector containing `addr`, *within its line*.
    #[inline]
    pub fn sector_in_line(self, addr: u64) -> usize {
        (self.line.offset_in_line(addr) >> self.sector_shift) as usize
    }

    /// Bitmask with one bit per sector touched by an access of `size` bytes
    /// at `addr`, clipped to the line containing `addr` (a straddling access
    /// marks each line's sectors in that line's own call).
    #[inline]
    pub fn sector_mask(self, addr: u64, size: u8) -> u32 {
        let line_end = self.line.align_down(addr) + self.line.line_size();
        let last = (addr + size.max(1) as u64 - 1).min(line_end - 1);
        let first_sector = self.sector_in_line(addr);
        let last_sector = self.sector_in_line(last);
        let mut mask = 0u32;
        for s in first_sector..=last_sector {
            mask |= 1 << s;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_is_64_bytes() {
        let g = CacheGeometry::default();
        assert_eq!(g.line_size(), 64);
        assert_eq!(g.line_shift(), 6);
        assert_eq!(g.words_per_line(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CacheGeometry::new(48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_sub_word_lines() {
        CacheGeometry::new(4);
    }

    #[test]
    fn line_index_and_start_roundtrip() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.line_index(0), 0);
        assert_eq!(g.line_index(63), 0);
        assert_eq!(g.line_index(64), 1);
        assert_eq!(g.line_start(1), 64);
        assert_eq!(g.line_start(g.line_index(0x4000_0038)), 0x4000_0000);
    }

    #[test]
    fn offsets_and_words() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.offset_in_line(0x4000_0038), 0x38);
        assert_eq!(g.word_in_line(0x4000_0038), 7);
        assert_eq!(g.word_in_line(0x4000_0040), 0);
        assert_eq!(g.word_index(16), 2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.lines_touched(60, 8), 0..=1);
        assert_eq!(g.lines_touched(56, 8), 0..=0);
        assert_eq!(g.lines_touched(64, 8), 1..=1);
    }

    #[test]
    fn align_helpers() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.align_down(100), 64);
        assert_eq!(g.align_up(100), 128);
        assert_eq!(g.align_up(64), 64);
        assert_eq!(g.align_down(64), 64);
    }

    proptest! {
        #[test]
        fn prop_line_math_consistent(addr in 0u64..1 << 40, shift in 3u32..10) {
            let g = CacheGeometry::new(1 << shift);
            let idx = g.line_index(addr);
            prop_assert!(g.line_start(idx) <= addr);
            prop_assert!(addr < g.line_start(idx) + g.line_size());
            prop_assert_eq!(g.line_start(idx) + g.offset_in_line(addr), addr);
            prop_assert!(g.word_in_line(addr) < g.words_per_line());
        }

        #[test]
        fn prop_align_brackets_addr(addr in 0u64..1 << 40) {
            let g = CacheGeometry::default();
            prop_assert!(g.align_down(addr) <= addr);
            prop_assert!(g.align_up(addr) >= addr);
            prop_assert!(g.align_up(addr) - g.align_down(addr) <= g.line_size());
        }

        #[test]
        fn prop_sector_mask_marks_every_touched_sector(
            addr in 0u64..1 << 24,
            size in 1u8..=64,
            sector_shift in 3u32..=6,
        ) {
            let sg = SectorGeometry::new(CacheGeometry::new(64), 1 << sector_shift);
            let mask = sg.sector_mask(addr, size);
            prop_assert!(mask != 0);
            // Every byte of the access that stays in addr's line has its
            // sector bit set, and no others.
            let line_start = sg.line().align_down(addr);
            let mut expect = 0u32;
            for b in addr..addr + size as u64 {
                if sg.line().align_down(b) == line_start {
                    expect |= 1 << sg.sector_in_line(b);
                }
            }
            prop_assert_eq!(mask, expect);
        }
    }

    #[test]
    fn portfolio_spans_32_to_256() {
        let p = CacheGeometry::portfolio();
        assert_eq!(p.map(|g| g.line_size()), [32, 64, 128, 256]);
        assert_eq!(CacheGeometry::portfolio_separation(), 512);
        // The separation is a whole-line multiple of every portfolio
        // geometry — the property the remap-soundness argument leans on.
        for g in p {
            assert_eq!(CacheGeometry::portfolio_separation() % g.line_size(), 0);
        }
    }

    #[test]
    fn sector_geometry_basics() {
        let sg = SectorGeometry::new(CacheGeometry::new(128), 32);
        assert_eq!(sg.sector_size(), 32);
        assert_eq!(sg.sectors_per_line(), 4);
        assert_eq!(sg.sector_in_line(0x1000), 0);
        assert_eq!(sg.sector_in_line(0x1000 + 33), 1);
        assert_eq!(sg.sector_in_line(0x1000 + 127), 3);
        let un = SectorGeometry::unsectored(CacheGeometry::new(64));
        assert_eq!(un.sectors_per_line(), 1);
        assert_eq!(un.sector_mask(0x40, 64), 1);
    }

    #[test]
    #[should_panic(expected = "sector size")]
    fn sector_larger_than_line_rejected() {
        SectorGeometry::new(CacheGeometry::new(64), 128);
    }
}
