//! Cache-line and word address arithmetic.
//!
//! All metadata lookups in the detector are O(1) address arithmetic on top of
//! these helpers (the shadow-memory design of §2.3.2). The paper tracks
//! word-granularity information at 8-byte granularity; [`WORD_SIZE`] fixes
//! that constant for the whole workspace.

use serde::{Deserialize, Serialize};

/// Granularity of word-level access tracking, in bytes (§2.3.2).
pub const WORD_SIZE: u64 = 8;
/// `log2(WORD_SIZE)`.
pub const WORD_SHIFT: u32 = 3;

/// Describes a cache-line geometry: a power-of-two line size.
///
/// The default is the ubiquitous 64-byte line. Prediction for doubled line
/// sizes (§3.1, Figure 3b) is expressed by pairing lines of this geometry
/// rather than by a second `CacheGeometry`, mirroring the paper's
/// "virtual line = lines 2·i and 2·i+1" formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    line_shift: u32,
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::new(64)
    }
}

impl CacheGeometry {
    /// Creates a geometry with the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two or is smaller than a word.
    pub fn new(line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two() && line_size >= WORD_SIZE,
            "cache line size must be a power of two >= {WORD_SIZE}, got {line_size}"
        );
        CacheGeometry {
            line_shift: line_size.trailing_zeros(),
        }
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_size(self) -> u64 {
        1 << self.line_shift
    }

    /// `log2(line_size)` — the `CACHELINE_SIZE_SHIFTS` constant of Figure 1.
    #[inline]
    pub fn line_shift(self) -> u32 {
        self.line_shift
    }

    /// Number of tracked words per line.
    #[inline]
    pub fn words_per_line(self) -> usize {
        (self.line_size() >> WORD_SHIFT) as usize
    }

    /// Index of the cache line containing `addr` (`addr >> CACHELINE_SIZE_SHIFTS`).
    #[inline]
    pub fn line_index(self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// First byte address of line `index`.
    #[inline]
    pub fn line_start(self, index: u64) -> u64 {
        index << self.line_shift
    }

    /// Byte offset of `addr` within its line.
    #[inline]
    pub fn offset_in_line(self, addr: u64) -> u64 {
        addr & (self.line_size() - 1)
    }

    /// Index of the word containing `addr`, *within its cache line*.
    #[inline]
    pub fn word_in_line(self, addr: u64) -> usize {
        (self.offset_in_line(addr) >> WORD_SHIFT) as usize
    }

    /// Global word index of `addr` (across the whole address space).
    #[inline]
    pub fn word_index(self, addr: u64) -> u64 {
        addr >> WORD_SHIFT
    }

    /// Returns the inclusive range of line indices touched by an access of
    /// `size` bytes starting at `addr`. Scalar accesses almost always touch a
    /// single line, but unaligned or large accesses may straddle two.
    #[inline]
    pub fn lines_touched(self, addr: u64, size: u8) -> std::ops::RangeInclusive<u64> {
        let first = self.line_index(addr);
        let last = self.line_index(addr + size.max(1) as u64 - 1);
        first..=last
    }

    /// Rounds `addr` down to its line start.
    #[inline]
    pub fn align_down(self, addr: u64) -> u64 {
        addr & !(self.line_size() - 1)
    }

    /// Rounds `addr` up to the next line boundary (identity if aligned).
    #[inline]
    pub fn align_up(self, addr: u64) -> u64 {
        let mask = self.line_size() - 1;
        (addr + mask) & !mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_is_64_bytes() {
        let g = CacheGeometry::default();
        assert_eq!(g.line_size(), 64);
        assert_eq!(g.line_shift(), 6);
        assert_eq!(g.words_per_line(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CacheGeometry::new(48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_sub_word_lines() {
        CacheGeometry::new(4);
    }

    #[test]
    fn line_index_and_start_roundtrip() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.line_index(0), 0);
        assert_eq!(g.line_index(63), 0);
        assert_eq!(g.line_index(64), 1);
        assert_eq!(g.line_start(1), 64);
        assert_eq!(g.line_start(g.line_index(0x4000_0038)), 0x4000_0000);
    }

    #[test]
    fn offsets_and_words() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.offset_in_line(0x4000_0038), 0x38);
        assert_eq!(g.word_in_line(0x4000_0038), 7);
        assert_eq!(g.word_in_line(0x4000_0040), 0);
        assert_eq!(g.word_index(16), 2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.lines_touched(60, 8), 0..=1);
        assert_eq!(g.lines_touched(56, 8), 0..=0);
        assert_eq!(g.lines_touched(64, 8), 1..=1);
    }

    #[test]
    fn align_helpers() {
        let g = CacheGeometry::new(64);
        assert_eq!(g.align_down(100), 64);
        assert_eq!(g.align_up(100), 128);
        assert_eq!(g.align_up(64), 64);
        assert_eq!(g.align_down(64), 64);
    }

    proptest! {
        #[test]
        fn prop_line_math_consistent(addr in 0u64..1 << 40, shift in 3u32..10) {
            let g = CacheGeometry::new(1 << shift);
            let idx = g.line_index(addr);
            prop_assert!(g.line_start(idx) <= addr);
            prop_assert!(addr < g.line_start(idx) + g.line_size());
            prop_assert_eq!(g.line_start(idx) + g.offset_in_line(addr), addr);
            prop_assert!(g.word_in_line(addr) < g.words_per_line());
        }

        #[test]
        fn prop_align_brackets_addr(addr in 0u64..1 << 40) {
            let g = CacheGeometry::default();
            prop_assert!(g.align_down(addr) <= addr);
            prop_assert!(g.align_up(addr) >= addr);
            prop_assert!(g.align_up(addr) - g.align_down(addr) <= g.line_size());
        }
    }
}
