//! The event vocabulary shared by every layer of the detector.
//!
//! The compiler instrumentation (here: `predator-instrument`) reduces a
//! program execution to a stream of [`Access`] events; everything the
//! detector does is a function of that stream.

use serde::{Deserialize, Serialize};

/// A small dense thread identifier.
///
/// The paper's runtime identifies the *origin* of each access by thread; only
/// accesses from different threads can cause cache invalidations (§2.3.1).
/// Thread ids are assigned densely by the runtime's thread registry so they
/// can be stored in two bytes inside history-table entries and word trackers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// Reserved id for the main thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns the raw index, usable for dense per-thread arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread {}", self.0)
    }
}

/// Whether an access reads or writes memory.
///
/// Only writes can invalidate remote cached copies, so the two kinds are
/// treated asymmetrically throughout (§2.3.1, §2.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store. At least one write is required for (false) sharing to matter.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One memory access event: the unit of information the instrumentation
/// delivers to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Issuing thread.
    pub tid: ThreadId,
    /// Simulated virtual address of the first byte touched.
    pub addr: u64,
    /// Number of bytes touched (1, 2, 4 or 8 for scalar accesses).
    pub size: u8,
    /// Read or write.
    pub kind: AccessKind,
}

/// Receives instrumentation events. Implemented by the detector runtime,
/// the trace recorders, and [`NullSink`] (for overhead baselines).
///
/// Lives here — next to [`Access`] — because every layer that produces or
/// consumes event streams (interpreter, trace writer, detector) speaks this
/// one interface.
pub trait AccessSink: Sync {
    /// One memory access notification.
    fn access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind);

    /// Delivers an already-packaged [`Access`] event.
    #[inline]
    fn record(&self, a: Access) {
        self.access(a.tid, a.addr, a.size, a.kind);
    }
}

/// Discards all events (uninstrumented-run baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn access(&self, _: ThreadId, _: u64, _: u8, _: AccessKind) {}
}

impl Access {
    /// Convenience constructor for a read event.
    #[inline]
    pub fn read(tid: ThreadId, addr: u64, size: u8) -> Self {
        Access {
            tid,
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a write event.
    #[inline]
    pub fn write(tid: ThreadId, addr: u64, size: u8) -> Self {
        Access {
            tid,
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// The last byte address touched by this access.
    #[inline]
    pub fn end(self) -> u64 {
        self.addr + self.size.max(1) as u64 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_index_roundtrip() {
        assert_eq!(ThreadId(7).index(), 7);
        assert_eq!(ThreadId::MAIN.index(), 0);
    }

    #[test]
    fn access_kind_is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn access_end_covers_size() {
        let a = Access::write(ThreadId(1), 100, 8);
        assert_eq!(a.end(), 107);
        let b = Access::read(ThreadId(1), 100, 1);
        assert_eq!(b.end(), 100);
    }

    #[test]
    fn zero_size_access_end_is_start() {
        let a = Access {
            tid: ThreadId(0),
            addr: 64,
            size: 0,
            kind: AccessKind::Read,
        };
        assert_eq!(a.end(), 64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ThreadId(3).to_string(), "thread 3");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
