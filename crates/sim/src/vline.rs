//! Virtual cache lines (§3.3, §3.4).
//!
//! A *virtual cache line* is a contiguous memory range that spans one or more
//! physical cache lines. PREDATOR uses them to predict false sharing in two
//! what-if scenarios (Figure 3):
//!
//! 1. **Doubled line size** — a virtual line is the pair of physical lines
//!    `2·i` and `2·i+1` (the first has an even index). False sharing latent
//!    across that boundary appears on hardware with lines twice as large.
//! 2. **Different object starting address** — a virtual line has the *same*
//!    size as a physical line but an arbitrary starting offset `delta`
//!    (`0 ≤ delta < line_size`). A different allocation sequence or allocator
//!    shifts objects relative to line boundaries; a shifted partition of the
//!    address space models exactly that.
//!
//! Given two hot accesses `X < Y` closer than a line size, many offset
//! partitions put them on the same virtual line. Figure 4's placement rule
//! picks the canonical one to *verify*: leave the same slack before `X` and
//! after `Y`, i.e. track the virtual line `[X − (sz−d)/2, Y + (sz−d)/2)` with
//! `d = Y − X`. Because shifting a virtual line is equivalent to shifting the
//! object, all lines of one object must use the same `delta`; that is why the
//! geometry here is a *partition of the whole space*, not a single range.

use serde::{Deserialize, Serialize};

use crate::geometry::{CacheGeometry, WORD_SIZE};

/// A half-open address range `[start, start + size)` naming one virtual line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VirtualRange {
    /// First byte covered.
    pub start: u64,
    /// Length in bytes.
    pub size: u64,
}

impl VirtualRange {
    /// True if `addr` falls inside the range.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.start + self.size
    }

    /// Last byte covered (inclusive).
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.size - 1
    }
}

impl std::fmt::Display for VirtualRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.start + self.size)
    }
}

/// A partition of the address space into virtual cache lines.
///
/// Both predictive scenarios are uniform partitions, so a single `index`
/// function covers them; the detector keeps one history table per virtual
/// line index during verification (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirtualGeometry {
    /// Virtual line = two consecutive physical lines, first index even
    /// (the paper's doubled-line scenario).
    Doubled(CacheGeometry),
    /// Extension: virtual line = `2^factor_log2` consecutive physical
    /// lines, first index a multiple of the factor — predicts line sizes
    /// beyond one doubling (e.g. 64 B → 256 B). `Scaled { factor_log2: 1 }`
    /// is equivalent to [`VirtualGeometry::Doubled`].
    Scaled {
        /// Underlying physical geometry.
        geom: CacheGeometry,
        /// log2 of how many physical lines form one virtual line (≥ 1).
        factor_log2: u32,
    },
    /// Virtual line = one physical line size, shifted by `delta` bytes
    /// (`0 ≤ delta < line_size`).
    Offset {
        /// Underlying physical geometry.
        geom: CacheGeometry,
        /// Shift of every virtual line start relative to physical lines.
        delta: u64,
    },
}

impl VirtualGeometry {
    /// Size of each virtual line in bytes.
    #[inline]
    pub fn vline_size(&self) -> u64 {
        match self {
            VirtualGeometry::Doubled(g) => g.line_size() * 2,
            VirtualGeometry::Scaled { geom, factor_log2 } => geom.line_size() << factor_log2,
            VirtualGeometry::Offset { geom, .. } => geom.line_size(),
        }
    }

    /// Index of the virtual line containing `addr`.
    ///
    /// For the offset geometry, addresses below `delta` (which cannot occur
    /// for real heap addresses — the simulated heap base is far above any
    /// line size) saturate into line 0.
    #[inline]
    pub fn index(&self, addr: u64) -> u64 {
        match self {
            VirtualGeometry::Doubled(g) => g.line_index(addr) >> 1,
            VirtualGeometry::Scaled { geom, factor_log2 } => geom.line_index(addr) >> factor_log2,
            VirtualGeometry::Offset { geom, delta } => {
                addr.saturating_sub(*delta) >> geom.line_shift()
            }
        }
    }

    /// The address range of virtual line `idx`.
    #[inline]
    pub fn range(&self, idx: u64) -> VirtualRange {
        match self {
            VirtualGeometry::Doubled(g) => VirtualRange {
                start: g.line_start(idx << 1),
                size: g.line_size() * 2,
            },
            VirtualGeometry::Scaled { geom, factor_log2 } => VirtualRange {
                start: geom.line_start(idx << factor_log2),
                size: geom.line_size() << factor_log2,
            },
            VirtualGeometry::Offset { geom, delta } => VirtualRange {
                start: (idx << geom.line_shift()) + delta,
                size: geom.line_size(),
            },
        }
    }

    /// True when `a` and `b` fall on the same virtual line.
    #[inline]
    pub fn same_vline(&self, a: u64, b: u64) -> bool {
        self.index(a) == self.index(b)
    }

    /// The shift applied to line starts (0 for the scaled geometries).
    pub fn delta(&self) -> u64 {
        match self {
            VirtualGeometry::Doubled(_) | VirtualGeometry::Scaled { .. } => 0,
            VirtualGeometry::Offset { delta, .. } => *delta,
        }
    }
}

/// Could two accesses at `x` and `y` share a `2^factor_log2`-line virtual
/// line without sharing a `2^(factor_log2 - 1)`-line one? (Each scale is
/// only a *new* sharing opportunity at the first factor that merges them.)
#[inline]
pub fn scaled_vline_possible(x: u64, y: u64, geom: CacheGeometry, factor_log2: u32) -> bool {
    debug_assert!(factor_log2 >= 1);
    let (lx, ly) = (geom.line_index(x), geom.line_index(y));
    (lx >> factor_log2) == (ly >> factor_log2)
        && (lx >> (factor_log2 - 1)) != (ly >> (factor_log2 - 1))
}

/// Could two accesses at `x` and `y` *possibly* share a virtual line of the
/// offset kind? Exactly when they are closer than a line size: some shift of
/// the partition then covers both (§3.3 condition (1)).
#[inline]
pub fn offset_vline_possible(x: u64, y: u64, geom: CacheGeometry) -> bool {
    x.abs_diff(y) < geom.line_size()
}

/// Could two accesses at `x` and `y` share a *doubled* virtual line without
/// already sharing a physical line? Exactly when they live in the two halves
/// of an even/odd physical line pair.
#[inline]
pub fn doubled_vline_possible(x: u64, y: u64, geom: CacheGeometry) -> bool {
    let (lx, ly) = (geom.line_index(x), geom.line_index(y));
    lx != ly && (lx >> 1) == (ly >> 1)
}

/// Figure 4's virtual-line placement rule.
///
/// Given two hot word addresses `x ≤ y` with `d = y + WORD_SIZE − x ≤ sz`
/// (both words must fit in one virtual line of size `sz`), choose the
/// partition shift such that the tracked virtual line starts at
/// `x − (sz − d)/2`, leaving equal slack before `x` and after `y`. The start
/// is rounded down to word granularity so word trackers stay aligned, and the
/// resulting `delta` is the start modulo the line size — applying it
/// uniformly adjusts *all* lines of the object at once, as §3.4 requires.
///
/// Returns the offset [`VirtualGeometry`] to verify with.
pub fn place_offset_vline(x: u64, y: u64, geom: CacheGeometry) -> VirtualGeometry {
    let (x, y) = if x <= y { (x, y) } else { (y, x) };
    let sz = geom.line_size();
    // Span of the two hot words, measured to the end of Y's word.
    let d = (y + WORD_SIZE - x).min(sz);
    let slack = (sz - d) / 2;
    let start = (x.saturating_sub(slack)) & !(WORD_SIZE - 1);
    let delta = start & (sz - 1);
    VirtualGeometry::Offset { geom, delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g64() -> CacheGeometry {
        CacheGeometry::new(64)
    }

    #[test]
    fn doubled_pairs_even_odd_lines() {
        let v = VirtualGeometry::Doubled(g64());
        assert_eq!(v.vline_size(), 128);
        // Lines 0 and 1 pair up; lines 2 and 3 pair up.
        assert_eq!(v.index(0), v.index(127));
        assert_ne!(v.index(127), v.index(128));
        assert_eq!(v.index(128), v.index(255));
        let r = v.range(1);
        assert_eq!(
            r,
            VirtualRange {
                start: 128,
                size: 128
            }
        );
    }

    #[test]
    fn scaled_generalizes_doubled() {
        let d = VirtualGeometry::Doubled(g64());
        let s = VirtualGeometry::Scaled {
            geom: g64(),
            factor_log2: 1,
        };
        for addr in [0u64, 63, 64, 127, 128, 4096, 0x4000_0038] {
            assert_eq!(d.index(addr), s.index(addr));
        }
        assert_eq!(d.vline_size(), s.vline_size());
        assert_eq!(d.range(3), s.range(3));
    }

    #[test]
    fn scaled_quadruple_lines() {
        let v = VirtualGeometry::Scaled {
            geom: g64(),
            factor_log2: 2,
        };
        assert_eq!(v.vline_size(), 256);
        assert!(v.same_vline(0, 255));
        assert!(!v.same_vline(255, 256));
        assert_eq!(
            v.range(1),
            VirtualRange {
                start: 256,
                size: 256
            }
        );
        assert_eq!(v.delta(), 0);
    }

    #[test]
    fn scaled_possible_only_at_first_merging_factor() {
        let g = g64();
        // Lines 1 and 2: merge first at factor 4 (indices 0b01, 0b10 —
        // differ at scale 2, equal at scale 4).
        let (x, y) = (64 + 8, 128 + 8);
        assert!(!doubled_vline_possible(x, y, g));
        assert!(!scaled_vline_possible(x, y, g, 1));
        assert!(scaled_vline_possible(x, y, g, 2));
        assert!(!scaled_vline_possible(x, y, g, 3), "already merged at 4x");
        // Lines 0 and 1 merge at factor 2.
        assert!(scaled_vline_possible(0, 64, g, 1));
        assert!(!scaled_vline_possible(0, 64, g, 2));
        // Same line: never a new opportunity.
        assert!(!scaled_vline_possible(0, 8, g, 1));
    }

    #[test]
    fn offset_partition_shifts_boundaries() {
        let v = VirtualGeometry::Offset {
            geom: g64(),
            delta: 8,
        };
        assert_eq!(v.vline_size(), 64);
        // [8, 72) is one line: 8 and 71 share; 71 and 72 do not.
        assert!(v.same_vline(8, 71));
        assert!(!v.same_vline(71, 72));
        let idx = v.index(100);
        assert!(v.range(idx).contains(100));
    }

    #[test]
    fn zero_delta_offset_matches_physical_lines() {
        let v = VirtualGeometry::Offset {
            geom: g64(),
            delta: 0,
        };
        let g = g64();
        for addr in [0u64, 63, 64, 4096, 0x4000_0038] {
            assert_eq!(v.index(addr), g.line_index(addr));
        }
    }

    #[test]
    fn offset_vline_possible_iff_distance_lt_line() {
        let g = g64();
        assert!(offset_vline_possible(0x100, 0x13f, g)); // 63 apart
        assert!(!offset_vline_possible(0x100, 0x140, g)); // 64 apart
        assert!(offset_vline_possible(0x13f, 0x100, g)); // order-insensitive
    }

    #[test]
    fn doubled_vline_possible_only_across_even_odd_boundary() {
        let g = g64();
        // Lines 0|1 pair: addrs 60 and 70.
        assert!(doubled_vline_possible(60, 70, g));
        // Same physical line: not a *new* sharing opportunity.
        assert!(!doubled_vline_possible(0, 63, g));
        // Lines 1|2 do NOT pair (boundary between virtual lines 0 and 1).
        assert!(!doubled_vline_possible(120, 130, g));
    }

    #[test]
    fn figure4_placement_centers_the_pair() {
        let g = g64();
        // X at 0x1000, Y at 0x1018 (d = 0x18 + 8 = 32): slack = 16.
        let v = place_offset_vline(0x1000, 0x1018, g);
        let idx = v.index(0x1000);
        let r = v.range(idx);
        assert_eq!(r.start, 0x1000 - 16);
        assert!(r.contains(0x1000) && r.contains(0x1018 + WORD_SIZE - 1));
        // Equal slack on both sides.
        assert_eq!(0x1000 - r.start, r.end() + 1 - (0x1018 + WORD_SIZE));
    }

    #[test]
    fn figure4_placement_is_order_insensitive() {
        let g = g64();
        assert_eq!(
            place_offset_vline(0x1000, 0x1018, g),
            place_offset_vline(0x1018, 0x1000, g)
        );
    }

    #[test]
    fn figure4_adjacent_words_get_maximal_slack() {
        let g = g64();
        // X and Y in adjacent words across a line boundary: 0x103f is in line
        // 0x40, 0x1040 in line 0x41.
        let v = place_offset_vline(0x1038, 0x1040, g);
        assert!(v.same_vline(0x1038, 0x1040));
        // d = 16, slack = 24, start = 0x1038 - 24 = 0x1020.
        assert_eq!(v.range(v.index(0x1038)).start, 0x1020);
    }

    #[test]
    fn display_of_range() {
        let r = VirtualRange {
            start: 0x40,
            size: 0x40,
        };
        assert_eq!(r.to_string(), "[0x40, 0x80)");
    }

    proptest! {
        /// Every address belongs to exactly the virtual line whose range
        /// contains it, for both geometries.
        #[test]
        fn prop_index_consistent_with_range(
            addr in 0x1000u64..1 << 32,
            delta in 0u64..64,
            doubled in prop::bool::ANY
        ) {
            let v = if doubled {
                VirtualGeometry::Doubled(g64())
            } else {
                VirtualGeometry::Offset { geom: g64(), delta }
            };
            let idx = v.index(addr);
            prop_assert!(v.range(idx).contains(addr),
                "addr {addr:#x} not in {} (idx {idx})", v.range(idx));
            // Ranges tile the space: next line starts right after this one.
            prop_assert_eq!(v.range(idx + 1).start, v.range(idx).start + v.vline_size());
        }

        /// Figure 4 placement always produces a line containing both hot
        /// words whenever that is possible (x, y within a line size).
        #[test]
        fn prop_placement_covers_both_words(
            x in (0x1000u64..1 << 30).prop_map(|a| a & !7),
            gap in 0u64..8
        ) {
            let g = g64();
            let y = x + gap * 8;
            prop_assume!(y + WORD_SIZE - x <= g.line_size());
            let v = place_offset_vline(x, y, g);
            prop_assert!(v.same_vline(x, y));
            prop_assert!(v.same_vline(x, y + WORD_SIZE - 1));
            prop_assert!(v.delta() < g.line_size());
            // delta is word-aligned so word trackers stay aligned.
            prop_assert_eq!(v.delta() % WORD_SIZE, 0);
        }
    }
}
