//! A MESI cache-coherence simulator used as *ground truth*.
//!
//! PREDATOR does not simulate a coherence protocol; it counts invalidations
//! with the two-entry history table of [`crate::history`], justified by the
//! observation that "if a thread writes a cache line after other threads have
//! accessed the same cache line, this write most likely causes at least one
//! cache invalidation" (§2.1). This module implements the real protocol —
//! per-core private caches kept coherent with MESI, one thread pinned per
//! core (the paper's §2.1 assumption) — so tests can *prove* the
//! approximation tight:
//!
//! > For any single-line access sequence, the history table's invalidation
//! > count equals exactly the number of MESI write operations that
//! > invalidated at least one remote copy.
//!
//! (See `prop_history_table_matches_mesi_events` in the tests, and the
//! cross-crate integration tests.) The simulator models infinite-capacity
//! private caches: capacity misses are irrelevant to sharing traffic, and the
//! paper's model ignores them too.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use predator_obs::recorder::{FlightRecorder, RecKind, WORD_UNKNOWN};

use crate::access::{AccessKind, ThreadId};
use crate::geometry::{CacheGeometry, SectorGeometry};

/// MESI state of a line present in a private cache. Absence means Invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Dirty, sole owner.
    Modified,
    /// Clean, sole owner.
    Exclusive,
    /// Clean, possibly multiple holders.
    Shared,
}

/// Aggregate coherence-traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MesiStats {
    /// Accesses served from the issuing core's own cache without a bus
    /// transaction (M/E hit for writes; any-state hit for reads).
    pub hits: u64,
    /// Accesses requiring the line to be fetched (line absent).
    pub misses: u64,
    /// Writes that invalidated at least one remote copy (events).
    pub invalidation_events: u64,
    /// Total remote copies invalidated (≥ `invalidation_events`).
    pub lines_invalidated: u64,
    /// M→S downgrades forced by remote reads (implying a writeback).
    pub downgrades: u64,
    /// Lines evicted for space (capacity-limited mode only).
    pub evictions: u64,
    /// Misses on lines this core never held (first touch).
    pub cold_misses: u64,
    /// Misses on lines lost to remote writes — the sharing signal.
    pub coherence_misses: u64,
    /// Misses on lines lost to eviction.
    pub capacity_misses: u64,
    /// Invalidation events that killed at least one copy in a *different*
    /// domain than the writer (multi-domain mode; always ≤
    /// `invalidation_events`, and 0 with a single domain).
    pub cross_domain_events: u64,
    /// Remote copies invalidated across a domain boundary — the traffic
    /// that crosses the NUMA interconnect instead of the local bus.
    pub cross_domain_lines: u64,
    /// Invalidated copies whose victim had live data in the written sector
    /// (sectored mode). The remainder of `lines_invalidated` are losses a
    /// sectored cache would shrug off: the victim never touched the sector
    /// the writer dirtied.
    pub sector_conflict_lines: u64,
}

/// The multi-core MESI simulator.
///
/// Each [`ThreadId`] is a core with an infinite private cache; `access`
/// applies the protocol transition and updates [`MesiStats`] plus per-line
/// invalidation-event counters (retrievable via
/// [`MesiSim::line_invalidations`]).
#[derive(Debug, Clone)]
pub struct MesiSim {
    geom: CacheGeometry,
    /// `caches[core][line_index] -> entry`; absent = Invalid.
    caches: Vec<HashMap<u64, Entry>>,
    /// Capacity limit per core as (sets, ways); `None` = infinite.
    capacity: Option<(usize, usize)>,
    /// LRU clock, bumped on every touch.
    clock: u64,
    /// Per-core history for miss classification: lines ever cached.
    ever_seen: Vec<HashSet<u64>>,
    /// Per-core lines whose last departure was a coherence invalidation.
    coherence_lost: Vec<HashSet<u64>>,
    stats: MesiStats,
    line_invalidations: HashMap<u64, u64>,
    /// Domain (NUMA node) of each core; all zeros in single-domain mode.
    domain: Vec<u16>,
    /// Sub-line sector model, if enabled.
    sector: Option<SectorGeometry>,
    /// `touched[core][line] -> sector bitmask` accumulated while the line is
    /// resident (sectored mode only).
    touched_sectors: Vec<HashMap<u64, u32>>,
    /// Optional flight-recorder feed: the simulator writes ground-truth
    /// access/invalidation records into *this* instance (never the process
    /// global), so tests can compare it against the detector's own feed.
    recorder: Option<Arc<FlightRecorder>>,
    /// `last_word[core][line] -> word offset` — victim-side attribution for
    /// recorded invalidations; maintained only while a recorder is attached.
    last_word: Vec<HashMap<u64, u8>>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    state: LineState,
    lru: u64,
}

/// Why a miss happened, for the capacity-limited mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// First touch by this core.
    Cold,
    /// The line was invalidated by a remote write — coherence traffic, the
    /// only class (false or true) sharing produces.
    Coherence,
    /// The line was evicted for space.
    Capacity,
}

impl MesiSim {
    /// Creates a simulator with infinite private caches (coherence traffic
    /// only — the paper's model, which ignores capacity).
    pub fn new(n_cores: usize, geom: CacheGeometry) -> Self {
        MesiSim {
            geom,
            caches: vec![HashMap::new(); n_cores],
            capacity: None,
            clock: 0,
            ever_seen: vec![HashSet::new(); n_cores],
            coherence_lost: vec![HashSet::new(); n_cores],
            stats: MesiStats::default(),
            line_invalidations: HashMap::new(),
            domain: vec![0; n_cores],
            sector: None,
            touched_sectors: vec![HashMap::new(); n_cores],
            recorder: None,
            last_word: vec![HashMap::new(); n_cores],
        }
    }

    /// Multi-domain (NUMA-style) mode: cores are split into `n_domains`
    /// contiguous equal blocks, and invalidations crossing a block boundary
    /// are additionally counted as cross-domain traffic
    /// ([`MesiStats::cross_domain_events`] / `cross_domain_lines`).
    /// Coherence semantics — and therefore `invalidation_events` — are
    /// identical to the single-domain simulator; domains change only the
    /// traffic accounting.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_domains <= n_cores`.
    pub fn with_domains(n_cores: usize, geom: CacheGeometry, n_domains: usize) -> Self {
        assert!(
            n_domains >= 1 && n_domains <= n_cores,
            "need 1 <= domains ({n_domains}) <= cores ({n_cores})"
        );
        let mut sim = Self::new(n_cores, geom);
        for core in 0..n_cores {
            sim.domain[core] = (core * n_domains / n_cores) as u16;
        }
        sim
    }

    /// Sectored-cache mode: invalidations are additionally classified by
    /// whether the victim had touched the written sector
    /// ([`MesiStats::sector_conflict_lines`]). With
    /// [`SectorGeometry::unsectored`] every conflict is same-sector and the
    /// count equals `lines_invalidated`.
    pub fn with_sectors(n_cores: usize, sector: SectorGeometry) -> Self {
        let mut sim = Self::new(n_cores, sector.line());
        sim.sector = Some(sector);
        sim
    }

    /// Domain of a core (0 in single-domain mode).
    pub fn domain_of(&self, core: ThreadId) -> u16 {
        self.domain.get(core.index()).copied().unwrap_or(0)
    }

    /// Attaches a flight recorder; every subsequent access and invalidation
    /// is recorded into it (ground truth for the detector's own feed).
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Extension: capacity-limited set-associative private caches
    /// (`sets × ways` lines per core, LRU replacement within a set). Enables
    /// miss *classification* — separating cold and capacity misses from the
    /// coherence misses that sharing causes, the distinction the paper
    /// faults sampling-based tools for blurring.
    pub fn with_capacity(n_cores: usize, geom: CacheGeometry, sets: usize, ways: usize) -> Self {
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways >= 1);
        let mut sim = Self::new(n_cores, geom);
        sim.capacity = Some((sets, ways));
        sim
    }

    fn set_of(&self, line: u64) -> u64 {
        match self.capacity {
            Some((sets, _)) => line & (sets as u64 - 1),
            None => 0,
        }
    }

    /// Installs `line` in `core`'s cache, evicting the set's LRU entry if
    /// the set is full.
    fn install(&mut self, core: usize, line: u64, state: LineState) {
        self.clock += 1;
        if let Some((_, ways)) = self.capacity {
            let set = self.set_of(line);
            let resident: Vec<(u64, u64)> = self.caches[core]
                .iter()
                .filter(|(&l, _)| l != line && self.set_of(l) == set)
                .map(|(&l, e)| (l, e.lru))
                .collect();
            let occupied = resident.len() + self.caches[core].contains_key(&line) as usize;
            if occupied >= ways && !self.caches[core].contains_key(&line) {
                if let Some(&(victim, _)) = resident.iter().min_by_key(|(_, lru)| *lru) {
                    self.caches[core].remove(&victim);
                    self.coherence_lost[core].remove(&victim);
                    self.touched_sectors[core].remove(&victim);
                    self.stats.evictions += 1;
                }
            }
        }
        self.ever_seen[core].insert(line);
        self.coherence_lost[core].remove(&line);
        let lru = self.clock;
        self.caches[core].insert(line, Entry { state, lru });
    }

    /// Classifies (and counts) a miss by `core` on `line`.
    fn classify_miss(&mut self, core: usize, line: u64) {
        self.stats.misses += 1;
        if !self.ever_seen[core].contains(&line) {
            self.stats.cold_misses += 1;
        } else if self.coherence_lost[core].contains(&line) {
            self.stats.coherence_misses += 1;
        } else {
            self.stats.capacity_misses += 1;
        }
    }

    /// Records one non-invalidating access into the attached flight
    /// recorder (if any) and refreshes the core's last-word attribution.
    fn record_access(&mut self, core: usize, line: u64, word: u8, kind: RecKind) {
        if let Some(rec) = &self.recorder {
            rec.offer_event(self.geom.line_start(line), core as u16, word, kind);
            self.last_word[core].insert(line, word);
        }
    }

    /// The geometry the simulator indexes lines with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> MesiStats {
        self.stats
    }

    /// Invalidation events recorded against a particular line index.
    pub fn line_invalidations(&self, line: u64) -> u64 {
        self.line_invalidations.get(&line).copied().unwrap_or(0)
    }

    /// State of `line` in `core`'s cache (None = Invalid).
    pub fn state(&self, core: ThreadId, line: u64) -> Option<LineState> {
        Some(self.caches.get(core.index())?.get(&line)?.state)
    }

    /// Number of lines currently resident in `core`'s cache.
    pub fn resident_lines(&self, core: ThreadId) -> usize {
        self.caches.get(core.index()).map(HashMap::len).unwrap_or(0)
    }

    /// Applies one access of `size` bytes at `addr` by `tid`, visiting every
    /// line the access touches.
    pub fn access(&mut self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        predator_obs::hot_counter_inc!("mesi_accesses_total");
        predator_obs::profile::mark(predator_obs::CostCenter::Mesi);
        for line in self.geom.lines_touched(addr, size) {
            // Word attribution for the flight recorder: exact for the line
            // containing `addr`, word 0 for the spilled-into lines of a
            // straddling access.
            let word = if self.geom.line_index(addr) == line {
                self.geom.word_in_line(addr) as u8
            } else {
                0
            };
            let smask = match self.sector {
                // Clip the access to this line before masking (a straddling
                // access contributes each line's own sector span).
                Some(sg) => {
                    let line_start = self.geom.line_start(line);
                    let start = addr.max(line_start);
                    let len = (addr + size.max(1) as u64 - start).min(self.geom.line_size()) as u8;
                    sg.sector_mask(start, len)
                }
                None => 0,
            };
            self.access_line(tid, line, kind, word, smask);
        }
    }

    fn access_line(&mut self, tid: ThreadId, line: u64, kind: AccessKind, word: u8, smask: u32) {
        let core = tid.index();
        assert!(
            core < self.caches.len(),
            "thread {tid} exceeds configured core count"
        );
        let own = self.caches[core].get(&line).map(|e| e.state);
        if self.sector.is_some() {
            *self.touched_sectors[core].entry(line).or_insert(0) |= smask;
        }
        if kind == AccessKind::Read {
            self.record_access(core, line, word, RecKind::Read);
        }
        match kind {
            AccessKind::Read => match own {
                Some(st) => {
                    self.stats.hits += 1;
                    self.clock += 1;
                    let lru = self.clock;
                    self.caches[core].insert(line, Entry { state: st, lru });
                }
                None => {
                    self.classify_miss(core, line);
                    // Snoop: downgrade any remote M/E holder to S.
                    let mut remote_holder = false;
                    let mut downgrades = 0;
                    for (i, cache) in self.caches.iter_mut().enumerate() {
                        if i == core {
                            continue;
                        }
                        if let Some(e) = cache.get_mut(&line) {
                            remote_holder = true;
                            if e.state != LineState::Shared {
                                if e.state == LineState::Modified {
                                    downgrades += 1;
                                }
                                e.state = LineState::Shared;
                            }
                        }
                    }
                    self.stats.downgrades += downgrades;
                    let st = if remote_holder {
                        LineState::Shared
                    } else {
                        LineState::Exclusive
                    };
                    self.install(core, line, st);
                }
            },
            AccessKind::Write => {
                match own {
                    Some(LineState::Modified) => {
                        self.stats.hits += 1;
                        self.clock += 1;
                        let lru = self.clock;
                        self.caches[core].insert(
                            line,
                            Entry {
                                state: LineState::Modified,
                                lru,
                            },
                        );
                        self.record_access(core, line, word, RecKind::Write);
                        return;
                    }
                    Some(LineState::Exclusive) => {
                        // Silent E→M upgrade, no bus traffic.
                        self.stats.hits += 1;
                        self.clock += 1;
                        let lru = self.clock;
                        self.caches[core].insert(
                            line,
                            Entry {
                                state: LineState::Modified,
                                lru,
                            },
                        );
                        self.record_access(core, line, word, RecKind::Write);
                        return;
                    }
                    Some(LineState::Shared) => {
                        // Upgrade: invalidate remote copies (BusUpgr).
                        self.stats.hits += 1;
                    }
                    None => {
                        // Read-for-ownership miss (BusRdX).
                        self.classify_miss(core, line);
                    }
                }
                let mut invalidated = 0u64;
                let mut cross_lines = 0u64;
                let mut sector_conflicts = 0u64;
                let sectored = self.sector.is_some();
                let mut victims: Vec<(u16, u8)> = Vec::new();
                let track_victims = self.recorder.is_some();
                for (i, cache) in self.caches.iter_mut().enumerate() {
                    if i == core {
                        continue;
                    }
                    if cache.remove(&line).is_some() {
                        invalidated += 1;
                        if self.domain[i] != self.domain[core] {
                            cross_lines += 1;
                        }
                        if sectored {
                            let vmask = self.touched_sectors[i].remove(&line).unwrap_or(0);
                            if vmask & smask != 0 {
                                sector_conflicts += 1;
                            }
                        }
                        self.coherence_lost[i].insert(line);
                        if track_victims {
                            let w = self.last_word[i]
                                .get(&line)
                                .copied()
                                .unwrap_or(WORD_UNKNOWN);
                            victims.push((i as u16, w));
                        }
                    }
                }
                if invalidated > 0 {
                    self.stats.invalidation_events += 1;
                    self.stats.lines_invalidated += invalidated;
                    self.stats.cross_domain_lines += cross_lines;
                    if cross_lines > 0 {
                        self.stats.cross_domain_events += 1;
                    }
                    self.stats.sector_conflict_lines += sector_conflicts;
                    *self.line_invalidations.entry(line).or_insert(0) += 1;
                    predator_obs::static_counter!("mesi_invalidation_events_total").inc();
                    predator_obs::static_counter!("mesi_lines_invalidated_total").add(invalidated);
                    // Timeline: a ground-truth invalidation burst on the
                    // writer's sim lane, sized by how many copies died.
                    let tl = predator_obs::timeline();
                    if tl.enabled() {
                        tl.instant(
                            "mesi_invalidation",
                            "mesi",
                            core as u64,
                            vec![
                                (
                                    "line_start",
                                    predator_obs::ArgVal::U64(self.geom.line_start(line)),
                                ),
                                ("copies_lost", predator_obs::ArgVal::U64(invalidated)),
                            ],
                        );
                    }
                    if let Some(rec) = &self.recorder {
                        rec.offer_invalidation(
                            self.geom.line_start(line),
                            core as u16,
                            word,
                            &victims,
                        );
                        self.last_word[core].insert(line, word);
                    }
                } else {
                    self.record_access(core, line, word, RecKind::Write);
                }
                self.install(core, line, LineState::Modified);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind::{Read, Write};
    use crate::history::HistoryTable;
    use proptest::prelude::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn sim(n: usize) -> MesiSim {
        MesiSim::new(n, CacheGeometry::new(64))
    }

    #[test]
    fn cold_read_is_exclusive() {
        let mut m = sim(2);
        m.access(T0, 0, 8, Read);
        assert_eq!(m.state(T0, 0), Some(LineState::Exclusive));
        assert_eq!(m.stats().misses, 1);
        assert_eq!(m.stats().invalidation_events, 0);
    }

    #[test]
    fn second_reader_shares() {
        let mut m = sim(2);
        m.access(T0, 0, 8, Read);
        m.access(T1, 0, 8, Read);
        assert_eq!(m.state(T0, 0), Some(LineState::Shared));
        assert_eq!(m.state(T1, 0), Some(LineState::Shared));
        assert_eq!(m.stats().invalidation_events, 0);
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let mut m = sim(2);
        m.access(T0, 0, 8, Read);
        m.access(T0, 0, 8, Write);
        assert_eq!(m.state(T0, 0), Some(LineState::Modified));
        assert_eq!(m.stats().invalidation_events, 0);
        assert_eq!(m.stats().hits, 1);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut m = sim(3);
        m.access(T0, 0, 8, Read);
        m.access(T1, 0, 8, Read);
        m.access(T2, 0, 8, Write);
        assert_eq!(m.stats().invalidation_events, 1);
        assert_eq!(m.stats().lines_invalidated, 2);
        assert_eq!(m.state(T0, 0), None);
        assert_eq!(m.state(T1, 0), None);
        assert_eq!(m.state(T2, 0), Some(LineState::Modified));
    }

    #[test]
    fn remote_read_downgrades_modified() {
        let mut m = sim(2);
        m.access(T0, 0, 8, Write);
        m.access(T1, 0, 8, Read);
        assert_eq!(m.state(T0, 0), Some(LineState::Shared));
        assert_eq!(m.state(T1, 0), Some(LineState::Shared));
        assert_eq!(m.stats().downgrades, 1);
    }

    #[test]
    fn write_ping_pong_counts_per_line() {
        let mut m = sim(2);
        for i in 0..10u64 {
            m.access(ThreadId((i % 2) as u16), 0, 8, Write);
        }
        assert_eq!(m.stats().invalidation_events, 9);
        assert_eq!(m.line_invalidations(0), 9);
        assert_eq!(m.line_invalidations(1), 0);
    }

    #[test]
    fn distinct_lines_do_not_interact() {
        let mut m = sim(2);
        m.access(T0, 0, 8, Write);
        m.access(T1, 64, 8, Write); // next line
        assert_eq!(m.stats().invalidation_events, 0);
    }

    #[test]
    fn straddling_write_touches_both_lines() {
        let mut m = sim(2);
        m.access(T0, 60, 8, Write); // covers lines 0 and 1
        assert_eq!(m.state(T0, 0), Some(LineState::Modified));
        assert_eq!(m.state(T0, 1), Some(LineState::Modified));
        m.access(T1, 0, 8, Write);
        assert_eq!(m.stats().invalidation_events, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds configured core count")]
    fn rejects_unknown_core() {
        let mut m = sim(1);
        m.access(T1, 0, 8, Write);
    }

    #[test]
    fn attached_recorder_sees_invalidations_with_victim_words() {
        if predator_obs::disabled() {
            return; // recorder hooks compiled out
        }
        let rec = Arc::new(FlightRecorder::new());
        rec.enable(16);
        let mut m = sim(2);
        m.set_recorder(rec.clone());
        m.access(T0, 0, 8, Write); // T0 writes word 0
        m.access(T1, 24, 8, Write); // T1 writes word 3: invalidates T0
        m.access(T0, 0, 8, Write); // T0 writes word 0: invalidates T1
        let recs = rec.line_records(0);
        let invs: Vec<_> = recs
            .iter()
            .filter_map(|r| match r.kind {
                RecKind::Invalidation {
                    victim_tid,
                    victim_word,
                } => Some((r.tid, r.word, victim_tid, victim_word)),
                _ => None,
            })
            .collect();
        assert_eq!(invs, vec![(1, 3, 0, 0), (0, 0, 1, 3)]);
        // The non-invalidating first write is recorded as a plain write.
        assert!(matches!(recs[0].kind, RecKind::Write));
    }

    #[test]
    fn capacity_mode_evicts_lru() {
        // 1 set x 2 ways: third distinct line evicts the least recent.
        let mut m = MesiSim::with_capacity(1, CacheGeometry::new(64), 1, 2);
        m.access(T0, 0, 8, Read); // line 0
        m.access(T0, 64, 8, Read); // line 1
        m.access(T0, 0, 8, Read); // touch line 0 -> line 1 is LRU
        m.access(T0, 128, 8, Read); // line 2 evicts line 1
        assert_eq!(m.stats().evictions, 1);
        assert_eq!(m.state(T0, 1), None, "LRU line evicted");
        assert!(m.state(T0, 0).is_some());
        assert!(m.state(T0, 2).is_some());
        assert_eq!(m.resident_lines(T0), 2);
    }

    #[test]
    fn capacity_mode_classifies_misses() {
        let mut m = MesiSim::with_capacity(2, CacheGeometry::new(64), 1, 1);
        // Cold miss.
        m.access(T0, 0, 8, Write);
        assert_eq!(m.stats().cold_misses, 1);
        // Coherence miss: T1 steals the line, T0 re-reads.
        m.access(T1, 0, 8, Write);
        assert_eq!(m.stats().cold_misses, 2);
        m.access(T0, 0, 8, Read);
        assert_eq!(m.stats().coherence_misses, 1);
        // Capacity miss: T0's single way gets replaced by another line,
        // then T0 returns to the first.
        m.access(T0, 64, 8, Read);
        assert_eq!(m.stats().evictions, 1);
        m.access(T0, 0, 8, Read);
        assert_eq!(m.stats().capacity_misses, 1);
        let s = m.stats();
        assert_eq!(
            s.misses,
            s.cold_misses + s.coherence_misses + s.capacity_misses
        );
    }

    #[test]
    fn sets_partition_the_index_space() {
        // 2 sets x 1 way: even and odd lines never evict each other.
        let mut m = MesiSim::with_capacity(1, CacheGeometry::new(64), 2, 1);
        m.access(T0, 0, 8, Read); // line 0 -> set 0
        m.access(T0, 64, 8, Read); // line 1 -> set 1
        assert_eq!(m.stats().evictions, 0);
        assert_eq!(m.resident_lines(T0), 2);
        m.access(T0, 128, 8, Read); // line 2 -> set 0 evicts line 0
        assert_eq!(m.stats().evictions, 1);
        assert_eq!(m.state(T0, 0), None);
        assert!(m.state(T0, 1).is_some());
    }

    #[test]
    fn false_sharing_shows_as_coherence_misses_not_capacity() {
        // Plenty of space; a ping-pong pattern must classify as coherence.
        let mut m = MesiSim::with_capacity(2, CacheGeometry::new(64), 16, 4);
        for i in 0..100u64 {
            m.access(ThreadId((i % 2) as u16), (i % 2) * 8, 8, AccessKind::Write);
        }
        let s = m.stats();
        assert_eq!(s.capacity_misses, 0);
        assert_eq!(s.cold_misses, 2);
        assert!(s.coherence_misses > 90, "{s:?}");
    }

    #[test]
    fn domains_partition_cores_into_contiguous_blocks() {
        let m = MesiSim::with_domains(8, CacheGeometry::new(64), 2);
        let doms: Vec<u16> = (0..8).map(|c| m.domain_of(ThreadId(c))).collect();
        assert_eq!(doms, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let m = MesiSim::with_domains(4, CacheGeometry::new(64), 4);
        let doms: Vec<u16> = (0..4).map(|c| m.domain_of(ThreadId(c))).collect();
        assert_eq!(doms, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "domains")]
    fn more_domains_than_cores_rejected() {
        MesiSim::with_domains(2, CacheGeometry::new(64), 3);
    }

    #[test]
    fn single_domain_has_zero_cross_traffic() {
        let mut m = MesiSim::with_domains(2, CacheGeometry::new(64), 1);
        for i in 0..10u64 {
            m.access(ThreadId((i % 2) as u16), 0, 8, Write);
        }
        assert_eq!(m.stats().invalidation_events, 9);
        assert_eq!(m.stats().cross_domain_events, 0);
        assert_eq!(m.stats().cross_domain_lines, 0);
    }

    #[test]
    fn one_domain_per_core_makes_every_invalidation_cross() {
        let mut m = MesiSim::with_domains(2, CacheGeometry::new(64), 2);
        for i in 0..10u64 {
            m.access(ThreadId((i % 2) as u16), 0, 8, Write);
        }
        assert_eq!(m.stats().invalidation_events, 9);
        assert_eq!(m.stats().cross_domain_events, 9);
        assert_eq!(m.stats().cross_domain_lines, 9);
    }

    #[test]
    fn intra_domain_ping_pong_stays_local() {
        // Cores 0 and 1 share domain 0; cores 2 and 3 are domain 1. A
        // ping-pong confined to one domain produces no cross traffic, while
        // a 0<->2 ping-pong is all cross.
        let mut m = MesiSim::with_domains(4, CacheGeometry::new(64), 2);
        for i in 0..6u64 {
            m.access(ThreadId((i % 2) as u16), 0, 8, Write);
        }
        assert_eq!(m.stats().cross_domain_events, 0);
        for i in 0..6u64 {
            m.access(ThreadId(if i % 2 == 0 { 0 } else { 2 }), 64, 8, Write);
        }
        let s = m.stats();
        assert_eq!(s.cross_domain_events, 5);
        assert!(s.cross_domain_lines <= s.lines_invalidated);
        assert!(s.cross_domain_events <= s.invalidation_events);
    }

    #[test]
    fn sectored_mode_classifies_conflicts() {
        // 64B line, 16B sectors. T0 writes sector 0; T1 writes sector 3.
        // The coherence protocol still invalidates, but the victims never
        // touched the written sector, so no sector conflicts are counted.
        let sg = SectorGeometry::new(CacheGeometry::new(64), 16);
        let mut m = MesiSim::with_sectors(2, sg);
        for i in 0..10u64 {
            let (tid, addr) = if i % 2 == 0 { (0u16, 0u64) } else { (1, 48) };
            m.access(ThreadId(tid), addr, 8, Write);
        }
        let s = m.stats();
        assert_eq!(s.invalidation_events, 9);
        assert_eq!(s.sector_conflict_lines, 0, "{s:?}");
        // Same-sector ping-pong on another line: every invalidation is a
        // true sector conflict.
        for i in 0..10u64 {
            let (tid, addr) = if i % 2 == 0 { (0u16, 64) } else { (1, 72) };
            m.access(ThreadId(tid), addr, 8, Write);
        }
        let s = m.stats();
        assert_eq!(s.invalidation_events, 18);
        assert_eq!(s.sector_conflict_lines, 9, "{s:?}");
    }

    #[test]
    fn unsectored_geometry_counts_every_invalidation_as_conflict() {
        let sg = SectorGeometry::unsectored(CacheGeometry::new(64));
        let mut m = MesiSim::with_sectors(2, sg);
        for i in 0..10u64 {
            let (tid, addr) = if i % 2 == 0 { (0u16, 0u64) } else { (1, 56) };
            m.access(ThreadId(tid), addr, 8, Write);
        }
        let s = m.stats();
        assert_eq!(s.sector_conflict_lines, s.lines_invalidated);
    }

    #[test]
    fn sector_mask_resets_on_reinstall() {
        // T1's mask must not survive invalidation: after losing the line,
        // T1 re-touches only sector 3, so T0's sector-0 write conflicts
        // with nothing.
        let sg = SectorGeometry::new(CacheGeometry::new(64), 16);
        let mut m = MesiSim::with_sectors(2, sg);
        m.access(ThreadId(1), 0, 8, Write); // T1 dirties sector 0
        m.access(ThreadId(0), 0, 8, Write); // conflict (both sector 0)
        m.access(ThreadId(1), 48, 8, Write); // T1 back, sector 3 only
        m.access(ThreadId(0), 0, 8, Write); // sector 0 vs sector 3: no hit
        let s = m.stats();
        assert_eq!(s.invalidation_events, 3);
        assert_eq!(s.sector_conflict_lines, 1, "{s:?}");
    }

    proptest! {
        /// Domains never change coherence semantics: invalidation_events and
        /// lines_invalidated are identical across any domain count, cross
        /// counts are bounded by totals, and a single domain is all-local.
        #[test]
        fn prop_domains_only_relabel_traffic(
            script in proptest::collection::vec(
                (0u16..4, 0u64..256, prop::bool::ANY), 0..256),
            n_domains in 1usize..=4,
        ) {
            let mut base = sim(4);
            let mut multi = MesiSim::with_domains(4, CacheGeometry::new(64), n_domains);
            for (tid, addr, w) in script {
                let kind = if w { Write } else { Read };
                base.access(ThreadId(tid), addr, 8, kind);
                multi.access(ThreadId(tid), addr, 8, kind);
            }
            let (b, m) = (base.stats(), multi.stats());
            prop_assert_eq!(b.invalidation_events, m.invalidation_events);
            prop_assert_eq!(b.lines_invalidated, m.lines_invalidated);
            prop_assert!(m.cross_domain_events <= m.invalidation_events);
            prop_assert!(m.cross_domain_lines <= m.lines_invalidated);
            if n_domains == 1 {
                prop_assert_eq!(m.cross_domain_events, 0);
            }
        }

        /// Sector conflicts are bounded by lines invalidated, and the
        /// unsectored model counts every invalidated copy as a conflict.
        #[test]
        fn prop_sector_conflicts_bounded(
            script in proptest::collection::vec(
                (0u16..3, 0u64..128, prop::bool::ANY), 0..256),
            sector_log in 3u32..=6,
        ) {
            let sg = SectorGeometry::new(CacheGeometry::new(64), 1 << sector_log);
            let mut m = MesiSim::with_sectors(3, sg);
            let mut plain = sim(3);
            for (tid, addr, w) in script {
                let kind = if w { Write } else { Read };
                m.access(ThreadId(tid), addr, 8, kind);
                plain.access(ThreadId(tid), addr, 8, kind);
            }
            let s = m.stats();
            prop_assert!(s.sector_conflict_lines <= s.lines_invalidated);
            // The sector model never perturbs the protocol itself.
            prop_assert_eq!(s.invalidation_events, plain.stats().invalidation_events);
            if sector_log == 6 {
                // 64B sectors on a 64B line = unsectored.
                prop_assert_eq!(s.sector_conflict_lines, s.lines_invalidated);
            }
        }
    }

    #[test]
    fn infinite_mode_never_evicts() {
        let mut m = sim(1);
        for line in 0..10_000u64 {
            m.access(T0, line * 64, 8, Write);
        }
        assert_eq!(m.stats().evictions, 0);
        assert_eq!(m.resident_lines(T0), 10_000);
    }

    proptest! {
        /// Capacity never exceeds sets x ways, and the miss classes always
        /// partition the misses.
        #[test]
        fn prop_capacity_respected(
            ops in proptest::collection::vec((0u16..2, 0u64..64, prop::bool::ANY), 1..300),
            ways in 1usize..4,
        ) {
            let mut m = MesiSim::with_capacity(2, CacheGeometry::new(64), 4, ways);
            for (tid, word, w) in ops {
                let kind = if w { Write } else { Read };
                m.access(ThreadId(tid), word * 8, 8, kind);
                prop_assert!(m.resident_lines(ThreadId(0)) <= 4 * ways);
                prop_assert!(m.resident_lines(ThreadId(1)) <= 4 * ways);
            }
            let s = m.stats();
            prop_assert_eq!(
                s.misses,
                s.cold_misses + s.coherence_misses + s.capacity_misses
            );
        }
    }

    proptest! {
        /// THE key validation: the paper's two-entry history table counts
        /// exactly the MESI invalidation *events* for any single-line script.
        #[test]
        fn prop_history_table_matches_mesi_events(
            script in proptest::collection::vec((0u16..4, prop::bool::ANY), 0..512)
        ) {
            let mut m = sim(4);
            let mut h = HistoryTable::new();
            let mut h_inv = 0u64;
            for (tid, w) in script {
                let kind = if w { Write } else { Read };
                m.access(ThreadId(tid), 0, 8, kind);
                h_inv += h.record(ThreadId(tid), kind) as u64;
            }
            prop_assert_eq!(h_inv, m.stats().invalidation_events);
        }

        /// Events never exceed total lines invalidated, and both are bounded
        /// by the number of writes.
        #[test]
        fn prop_stat_relationships(
            script in proptest::collection::vec(
                (0u16..4, 0u64..256, prop::bool::ANY), 0..512)
        ) {
            let mut m = sim(4);
            let mut writes = 0u64;
            for (tid, addr, w) in script {
                let kind = if w { Write } else { Read };
                writes += w as u64;
                m.access(ThreadId(tid), addr, 8, kind);
            }
            let s = m.stats();
            prop_assert!(s.invalidation_events <= s.lines_invalidated);
            // Each write touches at most 2 lines here (8-byte accesses).
            prop_assert!(s.invalidation_events <= writes * 2);
        }

        /// Coherence invariant: at most one core holds a line in M or E, and
        /// if any core holds M/E no other core holds the line at all.
        #[test]
        fn prop_single_writer_invariant(
            script in proptest::collection::vec(
                (0u16..4, 0u64..128, prop::bool::ANY), 0..256)
        ) {
            let mut m = sim(4);
            for (tid, addr, w) in script {
                let kind = if w { Write } else { Read };
                m.access(ThreadId(tid), addr, 8, kind);
                for line in 0..4u64 {
                    let holders: Vec<_> = (0..4u16)
                        .filter_map(|c| m.state(ThreadId(c), line).map(|s| (c, s)))
                        .collect();
                    let owners = holders.iter()
                        .filter(|(_, s)| *s != LineState::Shared)
                        .count();
                    prop_assert!(owners <= 1);
                    if owners == 1 {
                        prop_assert_eq!(holders.len(), 1);
                    }
                }
            }
        }
    }
}
