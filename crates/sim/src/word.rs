//! Word-granularity access tracking (§2.3.2, "Distinguishing False from True
//! Sharing").
//!
//! For every cache line suspected of sharing, PREDATOR records — per 8-byte
//! word — how many reads and writes it received and by which thread. When a
//! word is touched by more than one thread its origin is marked *shared* and
//! per-thread attribution stops for that word. In the reporting phase this is
//! what separates:
//!
//! * **false sharing** — distinct threads dominating *distinct* words of the
//!   same line (at least one of them writing), from
//! * **true sharing** — multiple threads hammering the *same* word (e.g. a
//!   shared counter), which also produces invalidations but is not fixable by
//!   padding.

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, ThreadId};
use crate::geometry::{CacheGeometry, WORD_SIZE};

/// Ownership state of one tracked word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Owner {
    /// Never accessed.
    #[default]
    Untouched,
    /// So far accessed by exactly one thread.
    Exclusive(ThreadId),
    /// Accessed by more than one thread; per-thread attribution stopped.
    Shared,
}

impl Owner {
    /// True when exactly one thread has touched the word.
    pub fn is_exclusive(self) -> bool {
        matches!(self, Owner::Exclusive(_))
    }

    /// The owning thread, if exclusive.
    pub fn thread(self) -> Option<ThreadId> {
        match self {
            Owner::Exclusive(t) => Some(t),
            _ => None,
        }
    }
}

/// Per-word counters: total reads, total writes, and the origin state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordState {
    /// Total reads of this word by any thread.
    pub reads: u64,
    /// Total writes of this word by any thread.
    pub writes: u64,
    /// Exclusive / shared origin.
    pub owner: Owner,
}

impl WordState {
    /// Total accesses (reads + writes).
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Records one access by `tid`.
    #[inline]
    pub fn record(&mut self, tid: ThreadId, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        self.owner = match self.owner {
            Owner::Untouched => Owner::Exclusive(tid),
            Owner::Exclusive(t) if t == tid => Owner::Exclusive(t),
            // Second distinct thread: mark shared, stop tracking threads.
            Owner::Exclusive(_) | Owner::Shared => Owner::Shared,
        };
    }
}

/// Word-granularity tracker for one cache line.
///
/// `base` is the line's first byte address; the tracker holds
/// `line_size / 8` [`WordState`] slots. An access that spans multiple words
/// (e.g. an unaligned 8-byte store) is attributed to every word it touches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordTracker {
    base: u64,
    words: Vec<WordState>,
}

impl WordTracker {
    /// Creates a tracker for the line starting at `base` under `geom`.
    pub fn new(base: u64, geom: CacheGeometry) -> Self {
        debug_assert_eq!(geom.offset_in_line(base), 0, "base must be line-aligned");
        WordTracker {
            base,
            words: vec![WordState::default(); geom.words_per_line()],
        }
    }

    /// Reassembles a tracker from raw per-word states, e.g. from the
    /// lock-free per-word atomics in `predator-core` when a snapshot is
    /// taken. `words.len()` must match the line geometry.
    pub fn from_parts(base: u64, words: Vec<WordState>) -> Self {
        debug_assert!(!words.is_empty());
        WordTracker { base, words }
    }

    /// First byte address of the covered line.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of tracked words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the tracker covers no words (cannot happen for valid geometries).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The tracked words, in address order.
    #[inline]
    pub fn words(&self) -> &[WordState] {
        &self.words
    }

    /// Byte address of word `idx`.
    #[inline]
    pub fn word_addr(&self, idx: usize) -> u64 {
        self.base + (idx as u64) * WORD_SIZE
    }

    /// Records an access of `size` bytes at `addr`; the portion of the access
    /// falling outside this line (for straddling accesses) is ignored — the
    /// adjacent line's tracker records it.
    pub fn record(&mut self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        let end = addr + size.max(1) as u64 - 1;
        let line_end = self.base + (self.words.len() as u64) * WORD_SIZE - 1;
        if end < self.base || addr > line_end {
            return;
        }
        let lo = addr.max(self.base);
        let hi = end.min(line_end);
        let first = ((lo - self.base) / WORD_SIZE) as usize;
        let last = ((hi - self.base) / WORD_SIZE) as usize;
        for w in &mut self.words[first..=last] {
            w.record(tid, kind);
        }
    }

    /// Total accesses over all words of the line.
    pub fn total_accesses(&self) -> u64 {
        self.words.iter().map(WordState::total).sum()
    }

    /// Mean accesses per word, the paper's *hot access* cutoff: a word is hot
    /// when its access count exceeds this average (§3.3).
    pub fn average_accesses(&self) -> f64 {
        self.total_accesses() as f64 / self.words.len() as f64
    }

    /// Indices of *hot* words: words whose access count is strictly greater
    /// than the per-word average of this line.
    pub fn hot_words(&self) -> Vec<usize> {
        let avg = self.average_accesses();
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| (w.total() as f64) > avg)
            .map(|(i, _)| i)
            .collect()
    }

    /// The distinct exclusive owner threads observed on this line.
    pub fn exclusive_threads(&self) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = self.words.iter().filter_map(|w| w.owner.thread()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if any word is in the shared state (true-sharing signal).
    pub fn has_shared_word(&self) -> bool {
        self.words.iter().any(|w| w.owner == Owner::Shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind::{Read, Write};
    use proptest::prelude::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn tracker() -> WordTracker {
        WordTracker::new(0x4000_0000, CacheGeometry::new(64))
    }

    #[test]
    fn new_tracker_is_untouched() {
        let t = tracker();
        assert_eq!(t.len(), 8);
        assert!(t
            .words()
            .iter()
            .all(|w| w.owner == Owner::Untouched && w.total() == 0));
        assert_eq!(t.total_accesses(), 0);
    }

    #[test]
    fn exclusive_then_shared_transition() {
        let mut t = tracker();
        t.record(T0, 0x4000_0000, 8, Write);
        assert_eq!(t.words()[0].owner, Owner::Exclusive(T0));
        t.record(T0, 0x4000_0000, 8, Read);
        assert_eq!(t.words()[0].owner, Owner::Exclusive(T0));
        t.record(T1, 0x4000_0000, 8, Read);
        assert_eq!(t.words()[0].owner, Owner::Shared);
        // Shared is absorbing.
        t.record(T0, 0x4000_0000, 8, Write);
        assert_eq!(t.words()[0].owner, Owner::Shared);
    }

    #[test]
    fn counts_attributed_to_correct_word() {
        let mut t = tracker();
        t.record(T0, 0x4000_0008, 4, Write); // word 1
        t.record(T1, 0x4000_0038, 8, Read); // word 7
        assert_eq!(t.words()[1].writes, 1);
        assert_eq!(t.words()[7].reads, 1);
        assert_eq!(t.words()[0].total(), 0);
    }

    #[test]
    fn straddling_word_access_hits_both_words() {
        let mut t = tracker();
        // 8-byte write at offset 4 touches words 0 and 1.
        t.record(T0, 0x4000_0004, 8, Write);
        assert_eq!(t.words()[0].writes, 1);
        assert_eq!(t.words()[1].writes, 1);
    }

    #[test]
    fn access_outside_line_is_ignored() {
        let mut t = tracker();
        t.record(T0, 0x4000_0040, 8, Write); // next line
        t.record(T0, 0x3fff_fff8, 8, Write); // previous line
        assert_eq!(t.total_accesses(), 0);
    }

    #[test]
    fn straddling_line_access_records_only_inner_part() {
        let mut t = tracker();
        // Write covering the last 4 bytes of this line and 4 of the next.
        t.record(T0, 0x4000_003c, 8, Write);
        assert_eq!(t.words()[7].writes, 1);
        assert_eq!(t.total_accesses(), 1);
    }

    #[test]
    fn hot_words_exceed_average() {
        let mut t = tracker();
        for _ in 0..100 {
            t.record(T0, 0x4000_0000, 8, Write); // word 0: 100 accesses
        }
        t.record(T1, 0x4000_0038, 8, Write); // word 7: 1 access
                                             // avg = 101/8 ≈ 12.6 → only word 0 is hot.
        assert_eq!(t.hot_words(), vec![0]);
    }

    #[test]
    fn uniform_access_has_no_hot_words() {
        let mut t = tracker();
        for w in 0..8u64 {
            t.record(T0, 0x4000_0000 + w * 8, 8, Write);
        }
        assert!(t.hot_words().is_empty());
    }

    #[test]
    fn exclusive_threads_lists_distinct_owners() {
        let mut t = tracker();
        t.record(T0, 0x4000_0000, 8, Write);
        t.record(T1, 0x4000_0038, 8, Write);
        assert_eq!(t.exclusive_threads(), vec![T0, T1]);
        assert!(!t.has_shared_word());
    }

    #[test]
    fn shared_word_detected() {
        let mut t = tracker();
        t.record(T0, 0x4000_0000, 8, Write);
        t.record(T1, 0x4000_0000, 8, Write);
        assert!(t.has_shared_word());
        assert!(t.exclusive_threads().is_empty());
    }

    #[test]
    fn word_addr_matches_layout() {
        let t = tracker();
        assert_eq!(t.word_addr(0), 0x4000_0000);
        assert_eq!(t.word_addr(7), 0x4000_0038);
    }

    proptest! {
        /// Total accesses equals the number of (word × access) attributions.
        #[test]
        fn prop_counts_conserved(
            accesses in proptest::collection::vec(
                (0u16..3, 0u64..64, 1u8..=8, prop::bool::ANY), 0..128)
        ) {
            let geom = CacheGeometry::new(64);
            let base = 0x1000u64;
            let mut t = WordTracker::new(base, geom);
            let mut expected = 0u64;
            for (tid, off, size, w) in accesses {
                let addr = base + off;
                let kind = if w { Write } else { Read };
                // Count how many in-line words the access touches.
                let end = (addr + size as u64 - 1).min(base + 63);
                if addr <= base + 63 {
                    expected += end / 8 - addr / 8 + 1;
                }
                t.record(ThreadId(tid), addr, size, kind);
            }
            prop_assert_eq!(t.total_accesses(), expected);
        }

        /// A word's owner is Shared iff ≥2 distinct threads touched it.
        #[test]
        fn prop_shared_iff_multiple_threads(
            accesses in proptest::collection::vec((0u16..3, 0usize..8, prop::bool::ANY), 0..64)
        ) {
            let geom = CacheGeometry::new(64);
            let mut t = WordTracker::new(0, geom);
            let mut seen: Vec<std::collections::BTreeSet<u16>> =
                vec![Default::default(); 8];
            for (tid, word, w) in accesses {
                let kind = if w { Write } else { Read };
                t.record(ThreadId(tid), (word * 8) as u64, 8, kind);
                seen[word].insert(tid);
            }
            for (i, s) in seen.iter().enumerate() {
                let owner = t.words()[i].owner;
                match s.len() {
                    0 => prop_assert_eq!(owner, Owner::Untouched),
                    1 => prop_assert_eq!(
                        owner,
                        Owner::Exclusive(ThreadId(*s.iter().next().unwrap()))
                    ),
                    _ => prop_assert_eq!(owner, Owner::Shared),
                }
            }
        }
    }
}
