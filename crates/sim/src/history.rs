//! The two-entry cache history table of §2.3.1.
//!
//! PREDATOR's key observation: *if a thread writes a cache line after other
//! threads have accessed the same line, that write most likely causes at
//! least one cache invalidation.* To count such invalidations precisely the
//! runtime keeps, per (physical or virtual) cache line, a history table with
//! at most two entries, each a `(thread, access kind)` pair.
//!
//! The transition rules are implemented verbatim from the paper:
//!
//! * **Read `R` by thread `t`:**
//!   * table full → nothing to record;
//!   * table not full and an existing entry has a *different* thread id →
//!     record `(t, Read)` as the second entry;
//!   * table empty → record `(t, Read)`.
//! * **Write `W` by thread `t`:**
//!   * table full → the write invalidates at least one remote copy (the two
//!     entries are guaranteed to have distinct thread ids); count an
//!     invalidation and reset the table to the single entry `(t, Write)`;
//!   * table not full, existing entry has the same thread id → update the
//!     entry in place to `(t, Write)`, no invalidation;
//!   * table not full, existing entry has a different thread id →
//!     invalidation; reset to `(t, Write)`;
//!   * table empty → record `(t, Write)`.
//!
//! There is no distinct "empty after invalidation" state: every invalidation
//! replaces the table with the invalidating write (the paper's "no empty
//! status" remark).

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, ThreadId};

/// One slot of the history table: which thread last touched the line and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Issuing thread.
    pub tid: ThreadId,
    /// Read or write.
    pub kind: AccessKind,
}

/// The two-entry cache history table for a single (virtual) cache line.
///
/// The table is deliberately tiny — 2 × (tid, kind) — because the detector
/// keeps one per tracked line and, during prediction, one per candidate
/// *virtual* line as well.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryTable {
    entries: [Option<HistoryEntry>; 2],
}

impl HistoryTable {
    /// A fresh, empty table.
    pub const fn new() -> Self {
        HistoryTable {
            entries: [None, None],
        }
    }

    /// True when both slots are occupied. Invariant: a full table always
    /// holds entries from two *different* threads (a second entry is only
    /// ever admitted when its thread differs from the first).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries[1].is_some()
    }

    /// True when no access has been recorded since creation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries[0].is_none()
    }

    /// Number of occupied slots (0, 1 or 2).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Returns the occupied entries.
    pub fn entries(&self) -> impl Iterator<Item = HistoryEntry> + '_ {
        self.entries.iter().flatten().copied()
    }

    /// Records one access and reports whether it caused a cache invalidation
    /// under the paper's rules (see module docs).
    pub fn record(&mut self, tid: ThreadId, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => {
                if self.is_full() {
                    // Full table: the read cannot add information.
                    return false;
                }
                match self.entries[0] {
                    None => {
                        self.entries[0] = Some(HistoryEntry { tid, kind });
                    }
                    Some(e0) if e0.tid != tid => {
                        self.entries[1] = Some(HistoryEntry { tid, kind });
                    }
                    Some(_) => {
                        // Same thread already present: redundant.
                    }
                }
                false
            }
            AccessKind::Write => {
                if self.is_full() {
                    // Two entries from distinct threads: this write must
                    // invalidate at least one remote copy.
                    self.reset_to(tid);
                    return true;
                }
                match self.entries[0] {
                    None => {
                        self.entries[0] = Some(HistoryEntry { tid, kind });
                        false
                    }
                    Some(e0) if e0.tid == tid => {
                        // Upgrade/refresh the thread's own entry; a thread
                        // writing a line it already owns invalidates nothing.
                        self.entries[0] = Some(HistoryEntry { tid, kind });
                        false
                    }
                    Some(_) => {
                        // A different thread held the line: invalidation.
                        self.reset_to(tid);
                        true
                    }
                }
            }
        }
    }

    /// Post-invalidation state: a single write entry from the invalidating
    /// thread.
    #[inline]
    fn reset_to(&mut self, tid: ThreadId) {
        self.entries = [
            Some(HistoryEntry {
                tid,
                kind: AccessKind::Write,
            }),
            None,
        ];
    }
}

/// Fixed-width encoding of a [`HistoryTable`] into one `u64`, so the
/// concurrent detector can keep the whole table in a single atomic word and
/// apply [`HistoryTable::record`] as a CAS loop.
///
/// Layout (low to high): two 18-bit entry slots, each
/// `[tid:16][write:1][present:1]`; the upper 28 bits are zero. An empty
/// table packs to `0`.
///
/// Everything here is pure: `transition` is *defined as*
/// `unpack → HistoryTable::record → pack`, so the lock-free path in
/// `predator-core` and the loom model tests share the exact transition
/// function that the sequential detector uses — there is no second
/// implementation of the paper's §2.3.1 rules to drift.
pub mod packed {
    use super::{HistoryEntry, HistoryTable};
    use crate::access::{AccessKind, ThreadId};

    /// Bits per packed entry slot.
    const ENTRY_BITS: u32 = 18;
    /// Present flag inside one entry slot.
    const PRESENT: u64 = 1 << 17;
    /// Write-kind flag inside one entry slot.
    const WRITE: u64 = 1 << 16;
    /// Mask of one entry slot.
    const ENTRY_MASK: u64 = (1 << ENTRY_BITS) - 1;

    /// The packed empty table.
    pub const EMPTY: u64 = 0;

    #[inline]
    fn enc(e: Option<HistoryEntry>) -> u64 {
        match e {
            None => 0,
            Some(HistoryEntry { tid, kind }) => {
                PRESENT | ((kind.is_write() as u64) << 16) | tid.0 as u64
            }
        }
    }

    #[inline]
    fn dec(bits: u64) -> Option<HistoryEntry> {
        if bits & PRESENT == 0 {
            return None;
        }
        Some(HistoryEntry {
            tid: ThreadId((bits & 0xffff) as u16),
            kind: if bits & WRITE != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        })
    }

    /// Packs a table into its fixed-width form.
    #[inline]
    pub fn pack(t: &HistoryTable) -> u64 {
        enc(t.entries[0]) | (enc(t.entries[1]) << ENTRY_BITS)
    }

    /// Unpacks a fixed-width table. Ignores the (always zero) upper bits.
    #[inline]
    pub fn unpack(bits: u64) -> HistoryTable {
        HistoryTable {
            entries: [
                dec(bits & ENTRY_MASK),
                dec((bits >> ENTRY_BITS) & ENTRY_MASK),
            ],
        }
    }

    /// Applies one access to a packed table, returning the new packed table
    /// and whether the access invalidated remote copies.
    ///
    /// Key property for the lock-free fast path: the transition returns the
    /// *same* bits iff the access is redundant (same-thread repeat, or a read
    /// against a full table), and a redundant access never invalidates — so a
    /// caller observing `next == cur` may skip the CAS entirely.
    #[inline]
    pub fn transition(bits: u64, tid: ThreadId, kind: AccessKind) -> (u64, bool) {
        let mut t = unpack(bits);
        let invalidated = t.record(tid, kind);
        let next = pack(&t);
        debug_assert!(
            !(invalidated && next == bits),
            "invalidations always change state"
        );
        (next, invalidated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind::{Read, Write};
    use proptest::prelude::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    /// Feed a script, return total invalidations.
    fn run(script: &[(ThreadId, AccessKind)]) -> u64 {
        let mut t = HistoryTable::new();
        script.iter().map(|&(tid, k)| t.record(tid, k) as u64).sum()
    }

    #[test]
    fn starts_empty() {
        let t = HistoryTable::new();
        assert!(t.is_empty());
        assert!(!t.is_full());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn single_thread_never_invalidates() {
        let script: Vec<_> = (0..100)
            .map(|i| (T0, if i % 3 == 0 { Write } else { Read }))
            .collect();
        assert_eq!(run(&script), 0);
    }

    #[test]
    fn read_read_from_two_threads_fills_table_without_invalidation() {
        let mut t = HistoryTable::new();
        assert!(!t.record(T0, Read));
        assert!(!t.record(T1, Read));
        assert!(t.is_full());
    }

    #[test]
    fn write_after_remote_read_invalidates() {
        // T0 reads, T1 writes: T1's write invalidates T0's copy.
        assert_eq!(run(&[(T0, Read), (T1, Write)]), 1);
    }

    #[test]
    fn write_after_remote_write_invalidates() {
        assert_eq!(run(&[(T0, Write), (T1, Write)]), 1);
    }

    #[test]
    fn write_ping_pong_invalidates_every_time() {
        // Classic false-sharing ping-pong: every write after the first hits.
        let script: Vec<_> = (0..10).map(|i| (ThreadId(i % 2), Write)).collect();
        assert_eq!(run(&script), 9);
    }

    #[test]
    fn read_to_full_table_is_ignored() {
        let mut t = HistoryTable::new();
        t.record(T0, Read);
        t.record(T1, Read);
        let before = t;
        assert!(!t.record(T2, Read));
        assert_eq!(t, before);
    }

    #[test]
    fn write_to_full_table_resets_to_single_write_entry() {
        let mut t = HistoryTable::new();
        t.record(T0, Read);
        t.record(T1, Read);
        assert!(t.record(T2, Write));
        assert_eq!(t.len(), 1);
        let e: Vec<_> = t.entries().collect();
        assert_eq!(
            e,
            vec![HistoryEntry {
                tid: T2,
                kind: Write
            }]
        );
    }

    #[test]
    fn own_write_after_own_read_upgrades_in_place() {
        let mut t = HistoryTable::new();
        t.record(T0, Read);
        assert!(!t.record(T0, Write));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().kind, Write);
    }

    #[test]
    fn same_thread_repeat_read_not_duplicated() {
        let mut t = HistoryTable::new();
        t.record(T0, Read);
        t.record(T0, Read);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn invalidating_write_then_remote_write_invalidates_again() {
        // After a reset, the table holds only the last writer; a subsequent
        // remote write must count again.
        assert_eq!(run(&[(T0, Read), (T1, Write), (T0, Write)]), 2);
    }

    #[test]
    fn reader_between_writers_still_one_invalidation_per_write() {
        // W0, R1 (fills table), W0 — W0 hits a full table: invalidation.
        assert_eq!(run(&[(T0, Write), (T1, Read), (T0, Write)]), 1);
    }

    #[test]
    fn true_sharing_counter_pattern_counts_heavily() {
        // Three threads hammering the same line with writes.
        let script: Vec<_> = (0..30).map(|i| (ThreadId(i % 3), Write)).collect();
        assert_eq!(run(&script), 29);
    }

    proptest! {
        /// A full table always contains two distinct thread ids.
        #[test]
        fn prop_full_table_has_distinct_tids(
            script in proptest::collection::vec((0u16..4, prop::bool::ANY), 0..64)
        ) {
            let mut t = HistoryTable::new();
            for (tid, w) in script {
                let kind = if w { Write } else { Read };
                t.record(ThreadId(tid), kind);
                if t.is_full() {
                    let e: Vec<_> = t.entries().collect();
                    prop_assert_ne!(e[0].tid, e[1].tid);
                }
            }
        }

        /// Invalidations never exceed the number of writes, and a
        /// single-thread prefix contributes none.
        #[test]
        fn prop_invalidations_bounded_by_writes(
            script in proptest::collection::vec((0u16..4, prop::bool::ANY), 0..256)
        ) {
            let mut t = HistoryTable::new();
            let mut inv = 0u64;
            let mut writes = 0u64;
            for (tid, w) in &script {
                let kind = if *w { Write } else { Read };
                writes += *w as u64;
                inv += t.record(ThreadId(*tid), kind) as u64;
            }
            prop_assert!(inv <= writes);
        }

        /// The packed transition is the sequential transition, bit for bit:
        /// running any script through `packed::transition` tracks
        /// `HistoryTable::record` exactly (state and invalidation verdicts).
        #[test]
        fn prop_packed_transition_matches_record(
            script in proptest::collection::vec((0u16..5, prop::bool::ANY), 0..128)
        ) {
            let mut t = HistoryTable::new();
            let mut bits = packed::EMPTY;
            for (tid, w) in script {
                let kind = if w { Write } else { Read };
                let inv = t.record(ThreadId(tid), kind);
                let (next, pinv) = packed::transition(bits, ThreadId(tid), kind);
                prop_assert_eq!(inv, pinv);
                prop_assert_eq!(packed::unpack(next), t);
                prop_assert_eq!(packed::pack(&t), next);
                bits = next;
            }
        }

        /// pack/unpack round-trips on every reachable table.
        #[test]
        fn prop_packed_roundtrip(
            script in proptest::collection::vec((0u16..5, prop::bool::ANY), 0..64)
        ) {
            let mut t = HistoryTable::new();
            for (tid, w) in script {
                t.record(ThreadId(tid), if w { Write } else { Read });
                prop_assert_eq!(packed::unpack(packed::pack(&t)), t);
            }
        }

        /// Recording is insensitive to reads once the table is full:
        /// inserting extra reads from any thread between two events never
        /// *decreases* the invalidation count... but it can increase it
        /// (a read can fill the table). Here we check the weaker, exact
        /// invariant actually used by the detector: an invalidation is
        /// reported only for writes.
        #[test]
        fn prop_only_writes_invalidate(
            script in proptest::collection::vec((0u16..4, prop::bool::ANY), 0..256)
        ) {
            let mut t = HistoryTable::new();
            for (tid, w) in script {
                let kind = if w { Write } else { Read };
                let inv = t.record(ThreadId(tid), kind);
                if inv {
                    prop_assert_eq!(kind, Write);
                }
            }
        }
    }
}
