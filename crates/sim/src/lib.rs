//! # predator-sim
//!
//! Cache-modelling substrate for the PREDATOR predictive false-sharing
//! detector (Liu, Tian, Hu, Berger — PPoPP 2014).
//!
//! This crate contains the *pure* (side-effect free, single-threaded) data
//! structures and models that the concurrent detector runtime in
//! `predator-core` is built from:
//!
//! * [`geometry`] — cache-line and word address arithmetic,
//! * [`access`] — the event vocabulary (`ThreadId`, `AccessKind`, `Access`),
//! * [`history`] — the paper's two-entry per-line cache history table and its
//!   invalidation rules (§2.3.1),
//! * [`word`] — word-granularity access tracking used to discriminate false
//!   from true sharing (§2.3.2),
//! * [`vline`] — *virtual cache lines*: contiguous ranges spanning physical
//!   lines, used to predict false sharing under doubled line sizes or shifted
//!   object placement (§3.3, §3.4),
//! * [`mesi`] — a full MESI multi-core coherence simulator used as ground
//!   truth to validate the two-entry-history approximation,
//! * [`interleave`] — a deterministic interleaving engine for replaying
//!   multi-threaded access scripts in tests with exact, reproducible counts.
//!
//! Everything here is deterministic and lock-free by construction, which is
//! what makes the exact-count unit and property tests in this workspace
//! possible.

pub mod access;
pub mod geometry;
pub mod history;
pub mod interleave;
pub mod mesi;
pub mod patterns;
pub mod vline;
pub mod word;

pub use access::{Access, AccessKind, AccessSink, NullSink, ThreadId};
pub use geometry::{CacheGeometry, SectorGeometry, WORD_SHIFT, WORD_SIZE};
pub use history::{packed, HistoryEntry, HistoryTable};
pub use vline::{VirtualGeometry, VirtualRange};
pub use word::{Owner, WordState, WordTracker};
