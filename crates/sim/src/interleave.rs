//! Deterministic interleaving of per-thread access scripts.
//!
//! PREDATOR "conservatively assumes that accesses from different threads
//! occur in an interleaved manner; that is, it assumes that the schedule
//! exposes false sharing" (§3.3). The unit and integration tests in this
//! workspace need *reproducible* schedules to assert exact invalidation
//! counts, so this module merges per-thread scripts under a pluggable,
//! deterministic [`Schedule`]:
//!
//! * [`Schedule::RoundRobin`] — the adversarial schedule the paper assumes:
//!   threads take strict turns, maximizing interleaving;
//! * [`Schedule::Seeded`] — a seeded pseudo-random schedule for
//!   property-based tests (same seed → same order);
//! * [`Schedule::ThreadSequential`] — each thread runs to completion before
//!   the next starts: the schedule that *hides* sharing, useful as a negative
//!   control;
//! * [`Schedule::Explicit`] — a caller-provided turn order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::Access;

/// A per-thread list of accesses; index in the outer vector is *not*
/// necessarily the thread id — each inner script carries thread ids in its
/// [`Access`] records — but by convention script `i` belongs to thread `i`.
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// One access list per thread.
    pub per_thread: Vec<Vec<Access>>,
}

impl Script {
    /// Creates an empty script for `n` threads.
    pub fn new(n: usize) -> Self {
        Script {
            per_thread: vec![Vec::new(); n],
        }
    }

    /// Appends an access to thread `i`'s script.
    pub fn push(&mut self, i: usize, a: Access) {
        self.per_thread[i].push(a);
    }

    /// Total number of accesses across all threads.
    pub fn len(&self) -> usize {
        self.per_thread.iter().map(Vec::len).sum()
    }

    /// True when no thread has any accesses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How to merge the per-thread scripts into one global order.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// Strict turn-taking: t0, t1, …, tn−1, t0, … (skipping exhausted
    /// threads). The paper's conservative worst case.
    RoundRobin,
    /// Seeded uniform choice among non-exhausted threads.
    Seeded(u64),
    /// Thread 0 runs to completion, then thread 1, … Hides sharing.
    ThreadSequential,
    /// Explicit turn order: each element picks the next thread to step; extra
    /// turns for exhausted threads are skipped, and any accesses left when
    /// the order runs out are appended round-robin.
    Explicit(Vec<u16>),
}

/// Merges `script` into a single global access order under `schedule`.
///
/// The relative order of each thread's own accesses is always preserved
/// (program order); only the inter-thread interleaving varies.
pub fn interleave(script: &Script, schedule: &Schedule) -> Vec<Access> {
    let n = script.per_thread.len();
    let mut cursors = vec![0usize; n];
    let total = script.len();
    let mut out = Vec::with_capacity(total);

    let step = |i: usize, cursors: &mut [usize], out: &mut Vec<Access>| -> bool {
        if i < n && cursors[i] < script.per_thread[i].len() {
            out.push(script.per_thread[i][cursors[i]]);
            cursors[i] += 1;
            true
        } else {
            false
        }
    };

    match schedule {
        Schedule::RoundRobin => {
            let mut i = 0;
            while out.len() < total {
                step(i, &mut cursors, &mut out);
                i = (i + 1) % n.max(1);
            }
        }
        Schedule::ThreadSequential => {
            for i in 0..n {
                while step(i, &mut cursors, &mut out) {}
            }
        }
        Schedule::Seeded(seed) => {
            let mut rng = SmallRng::seed_from_u64(*seed);
            while out.len() < total {
                let live: Vec<usize> = (0..n)
                    .filter(|&i| cursors[i] < script.per_thread[i].len())
                    .collect();
                let pick = live[rng.gen_range(0..live.len())];
                step(pick, &mut cursors, &mut out);
            }
        }
        Schedule::Explicit(order) => {
            for &i in order {
                step(i as usize, &mut cursors, &mut out);
            }
            // Drain leftovers deterministically.
            let mut i = 0;
            while out.len() < total {
                step(i, &mut cursors, &mut out);
                i = (i + 1) % n.max(1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessKind, ThreadId};
    use proptest::prelude::*;

    fn mk_script(lens: &[usize]) -> Script {
        let mut s = Script::new(lens.len());
        for (i, &l) in lens.iter().enumerate() {
            for k in 0..l {
                s.push(
                    i,
                    Access::write(ThreadId(i as u16), (i * 1000 + k) as u64, 8),
                );
            }
        }
        s
    }

    #[test]
    fn round_robin_alternates() {
        let s = mk_script(&[2, 2]);
        let out = interleave(&s, &Schedule::RoundRobin);
        let tids: Vec<u16> = out.iter().map(|a| a.tid.0).collect();
        assert_eq!(tids, vec![0, 1, 0, 1]);
    }

    #[test]
    fn round_robin_skips_exhausted_threads() {
        let s = mk_script(&[3, 1]);
        let out = interleave(&s, &Schedule::RoundRobin);
        let tids: Vec<u16> = out.iter().map(|a| a.tid.0).collect();
        assert_eq!(tids, vec![0, 1, 0, 0]);
    }

    #[test]
    fn thread_sequential_runs_to_completion() {
        let s = mk_script(&[2, 2]);
        let out = interleave(&s, &Schedule::ThreadSequential);
        let tids: Vec<u16> = out.iter().map(|a| a.tid.0).collect();
        assert_eq!(tids, vec![0, 0, 1, 1]);
    }

    #[test]
    fn explicit_order_respected_then_drained() {
        let s = mk_script(&[2, 2]);
        let out = interleave(&s, &Schedule::Explicit(vec![1, 1]));
        let tids: Vec<u16> = out.iter().map(|a| a.tid.0).collect();
        assert_eq!(tids, vec![1, 1, 0, 0]);
    }

    #[test]
    fn seeded_is_reproducible() {
        let s = mk_script(&[10, 10, 10]);
        let a = interleave(&s, &Schedule::Seeded(42));
        let b = interleave(&s, &Schedule::Seeded(42));
        assert_eq!(a, b);
        let c = interleave(&s, &Schedule::Seeded(43));
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn empty_script_yields_nothing() {
        let s = Script::new(0);
        assert!(interleave(&s, &Schedule::RoundRobin).is_empty());
        let s2 = Script::new(3);
        assert!(interleave(&s2, &Schedule::Seeded(1)).is_empty());
        assert!(s2.is_empty());
    }

    proptest! {
        /// Every schedule is a permutation preserving per-thread order.
        #[test]
        fn prop_program_order_preserved(
            lens in proptest::collection::vec(0usize..20, 1..5),
            seed in 0u64..1000,
            which in 0usize..3
        ) {
            let s = mk_script(&lens);
            let sched = match which {
                0 => Schedule::RoundRobin,
                1 => Schedule::Seeded(seed),
                _ => Schedule::ThreadSequential,
            };
            let out = interleave(&s, &sched);
            prop_assert_eq!(out.len(), s.len());
            // Per-thread subsequence must equal the original script.
            for (i, orig) in s.per_thread.iter().enumerate() {
                let got: Vec<Access> = out.iter()
                    .filter(|a| a.tid == ThreadId(i as u16))
                    .copied()
                    .collect();
                prop_assert_eq!(&got, orig);
            }
            // Sanity: all writes.
            prop_assert!(out.iter().all(|a| a.kind == AccessKind::Write));
        }
    }
}
