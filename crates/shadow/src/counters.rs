//! The `CacheWrites` shadow array (§2.4.1).
//!
//! "PREDATOR maintains two arrays in shadow memory: `CacheWrites` tracks the
//! number of memory writes to every cache line …". Until a line's write
//! count crosses the *TrackingThreshold* the runtime does nothing else for
//! it — reads are not even counted — which is what keeps the common case
//! cheap. The increment is a single `Relaxed` atomic `fetch_add`, "to avoid
//! expensive lock operations".

use std::sync::atomic::{AtomicU32, Ordering};

use crate::ShadowLayout;

/// A dense array of per-cache-line atomic write counters.
pub struct LineCounters {
    layout: ShadowLayout,
    counts: Box<[AtomicU32]>,
}

impl LineCounters {
    /// Allocates counters (all zero) for every line of `layout`.
    pub fn new(layout: ShadowLayout) -> Self {
        let mut v = Vec::with_capacity(layout.lines());
        v.resize_with(layout.lines(), || AtomicU32::new(0));
        LineCounters {
            layout,
            counts: v.into_boxed_slice(),
        }
    }

    /// The layout indices are computed with.
    #[inline]
    pub fn layout(&self) -> &ShadowLayout {
        &self.layout
    }

    /// Atomically increments the write counter of the line with dense index
    /// `idx` and returns the *new* value (Figure 1's
    /// `ATOMIC_INCR(&CacheWrites[cacheIndex])`).
    #[inline]
    pub fn increment(&self, idx: usize) -> u32 {
        self.counts[idx].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current write count of dense line `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        self.counts[idx].load(Ordering::Relaxed)
    }

    /// Resets the counter of dense line `idx` (used when an object is freed
    /// and its lines held no false sharing — the memory-reuse rule of
    /// §2.3.2).
    #[inline]
    pub fn reset(&self, idx: usize) {
        self.counts[idx].store(0, Ordering::Relaxed);
    }

    /// Raises the counter of dense line `idx` to at least `floor` (used to
    /// force adjacent lines into tracked mode when prediction begins on a
    /// neighbor, §3.2 step 2). Never lowers the counter.
    #[inline]
    pub fn bump_to(&self, idx: usize, floor: u32) {
        self.counts[idx].fetch_max(floor, Ordering::Relaxed);
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the layout covers no lines.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Bytes of metadata this array occupies (for the memory-overhead
    /// experiments, Figures 8–9).
    pub fn metadata_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<AtomicU32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_sim::CacheGeometry;

    fn counters() -> LineCounters {
        let layout = ShadowLayout::new(0x4000_0000, 4096, CacheGeometry::new(64));
        LineCounters::new(layout)
    }

    #[test]
    fn starts_at_zero() {
        let c = counters();
        assert_eq!(c.len(), 64);
        assert!((0..c.len()).all(|i| c.get(i) == 0));
    }

    #[test]
    fn increment_returns_new_value() {
        let c = counters();
        assert_eq!(c.increment(3), 1);
        assert_eq!(c.increment(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn reset_zeroes_single_line() {
        let c = counters();
        c.increment(1);
        c.increment(2);
        c.reset(1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 1);
    }

    #[test]
    fn bump_to_only_raises() {
        let c = counters();
        c.bump_to(0, 10);
        assert_eq!(c.get(0), 10);
        c.bump_to(0, 5);
        assert_eq!(c.get(0), 10);
        c.bump_to(0, 20);
        assert_eq!(c.get(0), 20);
    }

    #[test]
    fn metadata_accounting() {
        let c = counters();
        assert_eq!(c.metadata_bytes(), 64 * 4);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = std::sync::Arc::new(counters());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.increment(0);
                    }
                });
            }
        });
        assert_eq!(c.get(0), 80_000);
    }
}
