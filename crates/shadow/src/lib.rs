//! # predator-shadow
//!
//! The simulated address space and shadow-memory substrate for the PREDATOR
//! false-sharing detector (PPoPP 2014).
//!
//! The paper's runtime (§2.3.2) relies on two things this crate provides:
//!
//! 1. **A heap with a predefined starting address and fixed size** —
//!    [`SimSpace`], our stand-in for the instrumented application's address
//!    space. Application data lives in a real backing arena; every slot is an
//!    atomic word, so racy workloads (the whole point of a false-sharing
//!    detector!) stay well-defined in Rust while still exercising real
//!    concurrent access patterns.
//! 2. **Shadow memory located by address arithmetic** — [`ShadowLayout`]
//!    maps addresses to dense cache-line indices in O(1);
//!    [`LineCounters`] is the paper's `CacheWrites` array of atomic per-line
//!    write counters; [`TrackSlots`] is the `CacheTracking` array of
//!    CAS-published pointers to detailed per-line tracking state (Figure 1's
//!    `ATOMIC_CAS(&CacheTracking[cacheIndex], 0, track)`).
//!
//! Memory-ordering notes (per *Rust Atomics and Locks*): counters use
//! `Relaxed` (pure counts, no data published through them); [`TrackSlots`]
//! publishes with `Release` and reads with `Acquire` so the fully-initialized
//! track structure is visible to every thread that observes the pointer.

pub mod counters;
pub mod space;
pub mod track_slots;

pub use counters::LineCounters;
pub use space::{Scalar, SimSpace};
pub use track_slots::TrackSlots;

use predator_sim::CacheGeometry;

/// Maps simulated addresses to dense per-line metadata indices.
///
/// The layout covers `[base, base + size)`; `size` is rounded up to whole
/// lines. Lookup is two instructions — subtract and shift — exactly the
/// address-arithmetic shadow scheme of AddressSanitizer that §2.3.2 cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowLayout {
    base: u64,
    lines: usize,
    geom: CacheGeometry,
}

impl ShadowLayout {
    /// Creates a layout for `size` bytes starting at `base` (must be
    /// line-aligned) under `geom`.
    pub fn new(base: u64, size: u64, geom: CacheGeometry) -> Self {
        assert_eq!(
            base % geom.line_size(),
            0,
            "shadow base must be line-aligned"
        );
        let lines = (geom.align_up(base + size) - base) >> geom.line_shift();
        ShadowLayout {
            base,
            lines: lines as usize,
            geom,
        }
    }

    /// First covered address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of cache lines covered.
    #[inline]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The cache geometry indices are computed with.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// True if `addr` falls inside the covered range.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && ((addr - self.base) >> self.geom.line_shift()) < self.lines as u64
    }

    /// Dense line index for `addr`, or `None` when out of range.
    #[inline]
    pub fn index_of(&self, addr: u64) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) >> self.geom.line_shift()) as usize;
        (idx < self.lines).then_some(idx)
    }

    /// First byte address of dense line `idx`.
    #[inline]
    pub fn line_start(&self, idx: usize) -> u64 {
        self.base + ((idx as u64) << self.geom.line_shift())
    }

    /// Global line index (address-space-wide) for dense index `idx`.
    #[inline]
    pub fn global_line(&self, idx: usize) -> u64 {
        self.geom.line_index(self.line_start(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_indexing_roundtrip() {
        let geom = CacheGeometry::new(64);
        let l = ShadowLayout::new(0x4000_0000, 4096, geom);
        assert_eq!(l.lines(), 64);
        assert_eq!(l.index_of(0x4000_0000), Some(0));
        assert_eq!(l.index_of(0x4000_003f), Some(0));
        assert_eq!(l.index_of(0x4000_0040), Some(1));
        assert_eq!(l.index_of(0x4000_0000 + 4096), None);
        assert_eq!(l.index_of(0x3fff_ffff), None);
        assert_eq!(l.line_start(1), 0x4000_0040);
        assert_eq!(l.global_line(0), 0x4000_0000 >> 6);
    }

    #[test]
    fn layout_rounds_size_up_to_lines() {
        let geom = CacheGeometry::new(64);
        let l = ShadowLayout::new(0, 100, geom);
        assert_eq!(l.lines(), 2);
        assert!(l.contains(127));
        assert!(!l.contains(128));
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn layout_rejects_misaligned_base() {
        ShadowLayout::new(8, 4096, CacheGeometry::new(64));
    }
}
