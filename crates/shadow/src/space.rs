//! The simulated application address space.
//!
//! PREDATOR's custom allocator "uses a predefined starting address and fixed
//! size for its heap" (§2.3.2) so metadata lookup is plain address
//! arithmetic. [`SimSpace`] plays that role here: a fixed-base, fixed-size
//! region with real backing storage.
//!
//! Workloads under test intentionally race on nearby (and sometimes the
//! same) locations. To keep that well-defined in Rust, the backing store is a
//! slab of `AtomicU64` words; scalar accesses go through relaxed atomic
//! operations on the containing word. Relaxed ordering is deliberate — the
//! space models *plain data* memory, not synchronization, and the detector
//! itself never reads application data, only access events.

use std::sync::atomic::{AtomicU64, Ordering};

/// The default heap starting address, matching the report addresses in the
/// paper's Figure 5 (`0x40000038`, …).
pub const DEFAULT_BASE: u64 = 0x4000_0000;

/// A scalar type that can live in a [`SimSpace`].
///
/// Implementations exist for the integer and float types workloads use. The
/// trait converts values to/from the bits of the containing 8-byte word.
pub trait Scalar: Copy {
    /// Size in bytes (1, 2, 4 or 8); accesses must be naturally aligned.
    const SIZE: u8;
    /// Converts to raw (zero-extended) bits.
    fn to_bits(self) -> u64;
    /// Recovers a value from raw bits (low `SIZE` bytes).
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const SIZE: u8 = std::mem::size_of::<$t>() as u8;
            #[inline]
            fn to_bits(self) -> u64 { self as u64 }
            #[inline]
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
impl_scalar_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Scalar for f64 {
    const SIZE: u8 = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for f32 {
    const SIZE: u8 = 4;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for bool {
    const SIZE: u8 = 1;
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits & 0xff != 0
    }
}

/// Fixed-base simulated address space with atomic backing storage.
///
/// All addresses handed to [`SimSpace`] methods are *simulated* addresses in
/// `[base, base + size)`. Out-of-range or misaligned accesses panic — they
/// indicate a workload bug, and a crashing simulator beats silent corruption.
pub struct SimSpace {
    base: u64,
    words: Box<[AtomicU64]>,
}

impl SimSpace {
    /// Creates a space of `size` bytes (rounded up to a multiple of 8) at
    /// [`DEFAULT_BASE`].
    pub fn new(size: usize) -> Self {
        Self::with_base(DEFAULT_BASE, size)
    }

    /// Creates a space of `size` bytes at `base` (must be 8-byte aligned).
    pub fn with_base(base: u64, size: usize) -> Self {
        assert_eq!(base % 8, 0, "space base must be 8-byte aligned");
        let n_words = size.div_ceil(8);
        let mut v = Vec::with_capacity(n_words);
        v.resize_with(n_words, || AtomicU64::new(0));
        SimSpace {
            base,
            words: v.into_boxed_slice(),
        }
    }

    /// First valid simulated address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        (self.words.len() as u64) * 8
    }

    /// One-past-the-last valid address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.size()
    }

    /// True if `addr` is a valid simulated address.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    #[inline]
    fn word(&self, addr: u64, size: u8) -> (&AtomicU64, u32) {
        assert!(
            addr >= self.base && addr + size as u64 <= self.end(),
            "simulated access out of range: addr={addr:#x} size={size} space=[{:#x},{:#x})",
            self.base,
            self.end()
        );
        assert_eq!(
            addr % size as u64,
            0,
            "misaligned simulated access: addr={addr:#x} size={size}"
        );
        let off = addr - self.base;
        let shift = ((off % 8) * 8) as u32;
        (&self.words[(off / 8) as usize], shift)
    }

    /// Loads a scalar at `addr` (naturally aligned).
    #[inline]
    pub fn load<T: Scalar>(&self, addr: u64) -> T {
        let (word, shift) = self.word(addr, T::SIZE);
        let bits = word.load(Ordering::Relaxed) >> shift;
        let mask = mask_for(T::SIZE);
        T::from_bits(bits & mask)
    }

    /// Stores a scalar at `addr` (naturally aligned).
    #[inline]
    pub fn store<T: Scalar>(&self, addr: u64, value: T) {
        let (word, shift) = self.word(addr, T::SIZE);
        let mask = mask_for(T::SIZE);
        let bits = (value.to_bits() & mask) << shift;
        if T::SIZE == 8 {
            word.store(bits, Ordering::Relaxed);
        } else {
            let keep = !(mask << shift);
            // Read-modify-write on the containing word; relaxed is fine, the
            // space models plain data.
            word.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                Some((w & keep) | bits)
            })
            .unwrap();
        }
    }

    /// Atomic fetch-add on an 8-byte word — used by workloads that model
    /// real atomic counters (true sharing patterns).
    #[inline]
    pub fn fetch_add_u64(&self, addr: u64, delta: u64) -> u64 {
        let (word, shift) = self.word(addr, 8);
        debug_assert_eq!(shift, 0);
        word.fetch_add(delta, Ordering::Relaxed)
    }

    /// Atomic compare-exchange on an 8-byte word — used by workloads that
    /// model locks (e.g. the Boost spinlock pool).
    #[inline]
    pub fn compare_exchange_u64(&self, addr: u64, current: u64, new: u64) -> Result<u64, u64> {
        let (word, shift) = self.word(addr, 8);
        debug_assert_eq!(shift, 0);
        word.compare_exchange(current, new, Ordering::Acquire, Ordering::Relaxed)
    }

    /// Zeroes `len` bytes starting at `addr` (8-aligned, whole words).
    pub fn zero(&self, addr: u64, len: u64) {
        assert_eq!(addr % 8, 0, "zero() start must be word-aligned");
        assert_eq!(len % 8, 0, "zero() length must be whole words");
        let mut a = addr;
        while a < addr + len {
            self.store::<u64>(a, 0);
            a += 8;
        }
    }
}

#[inline]
fn mask_for(size: u8) -> u64 {
    match size {
        8 => u64::MAX,
        s => (1u64 << (s as u32 * 8)) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_u64_roundtrip() {
        let s = SimSpace::new(4096);
        s.store::<u64>(DEFAULT_BASE, 0xdead_beef_cafe_f00d);
        assert_eq!(s.load::<u64>(DEFAULT_BASE), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn subword_store_preserves_neighbors() {
        let s = SimSpace::new(64);
        s.store::<u64>(DEFAULT_BASE, u64::MAX);
        s.store::<u8>(DEFAULT_BASE + 3, 0);
        let got = s.load::<u64>(DEFAULT_BASE);
        assert_eq!(got, !(0xffu64 << 24));
        assert_eq!(s.load::<u8>(DEFAULT_BASE + 3), 0);
        assert_eq!(s.load::<u8>(DEFAULT_BASE + 2), 0xff);
        assert_eq!(s.load::<u8>(DEFAULT_BASE + 4), 0xff);
    }

    #[test]
    fn typed_roundtrips() {
        let s = SimSpace::new(64);
        s.store::<f64>(DEFAULT_BASE, -1.5);
        assert_eq!(s.load::<f64>(DEFAULT_BASE), -1.5);
        s.store::<f32>(DEFAULT_BASE + 8, 2.25);
        assert_eq!(s.load::<f32>(DEFAULT_BASE + 8), 2.25);
        s.store::<i32>(DEFAULT_BASE + 12, -7);
        assert_eq!(s.load::<i32>(DEFAULT_BASE + 12), -7);
        assert_eq!(s.load::<f32>(DEFAULT_BASE + 8), 2.25, "neighbor untouched");
        s.store::<bool>(DEFAULT_BASE + 16, true);
        assert!(s.load::<bool>(DEFAULT_BASE + 16));
        s.store::<i64>(DEFAULT_BASE + 24, i64::MIN);
        assert_eq!(s.load::<i64>(DEFAULT_BASE + 24), i64::MIN);
    }

    #[test]
    fn size_rounds_up_to_words() {
        let s = SimSpace::new(13);
        assert_eq!(s.size(), 16);
        assert!(s.contains(DEFAULT_BASE + 15));
        assert!(!s.contains(DEFAULT_BASE + 16));
    }

    #[test]
    fn custom_base() {
        let s = SimSpace::with_base(0x1000, 64);
        s.store::<u64>(0x1000, 1);
        assert_eq!(s.load::<u64>(0x1000), 1);
        assert_eq!(s.base(), 0x1000);
        assert_eq!(s.end(), 0x1040);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let s = SimSpace::new(64);
        s.load::<u64>(DEFAULT_BASE + 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_below_base() {
        let s = SimSpace::new(64);
        s.load::<u8>(DEFAULT_BASE - 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn rejects_misaligned() {
        let s = SimSpace::new(64);
        s.load::<u64>(DEFAULT_BASE + 4);
    }

    #[test]
    fn fetch_add_and_cas() {
        let s = SimSpace::new(64);
        assert_eq!(s.fetch_add_u64(DEFAULT_BASE, 5), 0);
        assert_eq!(s.fetch_add_u64(DEFAULT_BASE, 3), 5);
        assert_eq!(s.load::<u64>(DEFAULT_BASE), 8);
        assert_eq!(s.compare_exchange_u64(DEFAULT_BASE, 8, 100), Ok(8));
        assert_eq!(s.compare_exchange_u64(DEFAULT_BASE, 8, 200), Err(100));
    }

    #[test]
    fn zero_clears_words() {
        let s = SimSpace::new(64);
        for i in 0..8 {
            s.store::<u64>(DEFAULT_BASE + i * 8, u64::MAX);
        }
        s.zero(DEFAULT_BASE + 8, 16);
        assert_eq!(s.load::<u64>(DEFAULT_BASE), u64::MAX);
        assert_eq!(s.load::<u64>(DEFAULT_BASE + 8), 0);
        assert_eq!(s.load::<u64>(DEFAULT_BASE + 16), 0);
        assert_eq!(s.load::<u64>(DEFAULT_BASE + 24), u64::MAX);
    }

    #[test]
    fn concurrent_disjoint_writes_are_preserved() {
        // The exact pattern a false-sharing workload produces: adjacent words
        // hammered by different threads.
        let s = std::sync::Arc::new(SimSpace::new(128));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = s.clone();
                scope.spawn(move || {
                    let addr = DEFAULT_BASE + t * 8;
                    for i in 0..10_000u64 {
                        s.store::<u64>(addr, i);
                    }
                });
            }
        });
        for t in 0..4u64 {
            assert_eq!(s.load::<u64>(DEFAULT_BASE + t * 8), 9_999);
        }
    }

    proptest! {
        #[test]
        fn prop_scalar_roundtrip_u32(off in 0u64..15, v in any::<u32>()) {
            let s = SimSpace::new(128);
            let addr = DEFAULT_BASE + off * 4;
            s.store::<u32>(addr, v);
            prop_assert_eq!(s.load::<u32>(addr), v);
        }

        #[test]
        fn prop_byte_writes_independent(
            writes in proptest::collection::vec((0u64..64, any::<u8>()), 1..64)
        ) {
            let s = SimSpace::new(64);
            let mut model = [0u8; 64];
            for (off, v) in writes {
                s.store::<u8>(DEFAULT_BASE + off, v);
                model[off as usize] = v;
            }
            for (i, &m) in model.iter().enumerate() {
                prop_assert_eq!(s.load::<u8>(DEFAULT_BASE + i as u64), m);
            }
        }
    }
}
