//! The `CacheTracking` shadow array (§2.4.1, Figure 1).
//!
//! Once a line's write count crosses the *TrackingThreshold*, the runtime
//! "allocates space to track detailed cache invalidations and word accesses
//! … and uses an atomic compare-and-swap to set the cache tracking address
//! for this cache line in the shadow mapping."
//!
//! [`TrackSlots<T>`] is that array, generic over the per-line tracking
//! payload `T`. The race on the threshold edge is resolved with the
//! publish-with-`Release` / read-with-`Acquire` pattern: whichever thread
//! wins the CAS publishes a fully-constructed `T`; losers free their
//! speculative allocation and use the winner's.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// A dense array of lazily, atomically published per-line tracking payloads.
///
/// Slots start null; [`TrackSlots::get_or_publish`] installs a payload
/// exactly once per slot, and [`TrackSlots::get`] returns `None` until that
/// happens. Published payloads live until the `TrackSlots` is dropped.
pub struct TrackSlots<T> {
    slots: Box<[AtomicPtr<T>]>,
    published: AtomicUsize,
}

impl<T> TrackSlots<T> {
    /// Allocates `len` empty slots.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicPtr::new(std::ptr::null_mut()));
        TrackSlots {
            slots: v.into_boxed_slice(),
            published: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots with a published payload.
    #[inline]
    pub fn published(&self) -> usize {
        self.published.load(Ordering::Relaxed)
    }

    /// Returns the payload for `idx`, if one has been published.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&T> {
        let p = self.slots[idx].load(Ordering::Acquire);
        // SAFETY: a non-null pointer was published by `get_or_publish` via a
        // Release CAS from a `Box::into_raw`, is never mutated or freed until
        // `self` drops, and `&self` outlives the returned reference.
        unsafe { p.as_ref() }
    }

    /// Returns the payload for `idx`, publishing `make()` if the slot is
    /// still empty. On a lost race the speculative payload is dropped and the
    /// winner's is returned — Figure 1's `ATOMIC_CAS(&CacheTracking[i], 0, track)`.
    pub fn get_or_publish(&self, idx: usize, make: impl FnOnce() -> T) -> &T {
        let slot = &self.slots[idx];
        let existing = slot.load(Ordering::Acquire);
        if !existing.is_null() {
            // SAFETY: as in `get`.
            return unsafe { &*existing };
        }
        let fresh = Box::into_raw(Box::new(make()));
        match slot.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::Release,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                self.published.fetch_add(1, Ordering::Relaxed);
                // SAFETY: we just published `fresh`; it stays valid until drop.
                unsafe { &*fresh }
            }
            Err(winner) => {
                // SAFETY: `fresh` was never shared; reclaim it.
                drop(unsafe { Box::from_raw(fresh) });
                // SAFETY: as in `get`.
                unsafe { &*winner }
            }
        }
    }

    /// Iterates over `(index, payload)` for every published slot.
    pub fn iter_published(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            let p = s.load(Ordering::Acquire);
            // SAFETY: as in `get`.
            unsafe { p.as_ref() }.map(|r| (i, r))
        })
    }

    /// Bytes of metadata: the pointer array plus every published payload
    /// (for the memory-overhead experiments, Figures 8–9).
    pub fn metadata_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<AtomicPtr<T>>() + self.published_bytes()
    }

    /// Bytes of the published (boxed) payloads alone — the part of
    /// [`metadata_bytes`](Self::metadata_bytes) that grows with tracking
    /// rather than with the shadowed range.
    pub fn published_bytes(&self) -> usize {
        self.published() * std::mem::size_of::<T>()
    }
}

impl<T> Drop for TrackSlots<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: pointers in slots come exclusively from
                // `Box::into_raw` in `get_or_publish` and are dropped only here.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

// SAFETY: payloads are published once and only shared by reference; `T` must
// itself be Sync (shared between threads) and Send (dropped by whichever
// thread drops the TrackSlots).
unsafe impl<T: Send + Sync> Sync for TrackSlots<T> {}
unsafe impl<T: Send> Send for TrackSlots<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn slots_start_empty() {
        let s: TrackSlots<u64> = TrackSlots::new(8);
        assert_eq!(s.len(), 8);
        assert_eq!(s.published(), 0);
        assert!(s.get(0).is_none());
    }

    #[test]
    fn publish_once_then_get() {
        let s: TrackSlots<u64> = TrackSlots::new(8);
        let v = s.get_or_publish(3, || 42);
        assert_eq!(*v, 42);
        assert_eq!(s.published(), 1);
        assert_eq!(s.get(3), Some(&42));
        // Second publish attempt returns the existing payload, make() unused.
        let v2 = s.get_or_publish(3, || 99);
        assert_eq!(*v2, 42);
        assert_eq!(s.published(), 1);
    }

    #[test]
    fn iter_published_lists_only_filled_slots() {
        let s: TrackSlots<u64> = TrackSlots::new(8);
        s.get_or_publish(1, || 10);
        s.get_or_publish(5, || 50);
        let got: Vec<(usize, u64)> = s.iter_published().map(|(i, v)| (i, *v)).collect();
        assert_eq!(got, vec![(1, 10), (5, 50)]);
    }

    #[test]
    fn metadata_accounting_grows_with_publishes() {
        let s: TrackSlots<u64> = TrackSlots::new(4);
        let empty = s.metadata_bytes();
        s.get_or_publish(0, || 1);
        assert_eq!(s.metadata_bytes(), empty + std::mem::size_of::<u64>());
    }

    #[test]
    fn racing_publishers_agree_on_one_payload() {
        // Every thread publishes its own id; all must read the same winner.
        let s: Arc<TrackSlots<u64>> = Arc::new(TrackSlots::new(1));
        let results: Vec<u64> = std::thread::scope(|scope| {
            (0..8u64)
                .map(|t| {
                    let s = s.clone();
                    scope.spawn(move || *s.get_or_publish(0, || t))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(s.published(), 1);
        let winner = results[0];
        assert!(results.iter().all(|&r| r == winner));
        assert_eq!(s.get(0), Some(&winner));
    }

    #[test]
    fn payload_mutation_via_interior_mutability_is_shared() {
        let s: TrackSlots<AtomicU64> = TrackSlots::new(1);
        s.get_or_publish(0, || AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let c = s.get_or_publish(0, || AtomicU64::new(0));
                    for _ in 0..1000 {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(s.get(0).unwrap().load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn drop_frees_published_payloads() {
        // Dropping with live publishes must not leak or double-free; run
        // under the default test harness this at least exercises the path.
        let s: TrackSlots<Vec<u8>> = TrackSlots::new(16);
        for i in 0..16 {
            s.get_or_publish(i, || vec![0u8; 1024]);
        }
        drop(s);
    }
}
