//! Golden-fixture and schema-shape tests for the SARIF and HTML reporters.
//!
//! The SARIF output is pinned byte-for-byte against a committed fixture
//! (the detector session is fully deterministic) and additionally checked
//! against the SARIF 2.1.0 schema shape: required top-level keys, run
//! structure, and rule/result cross-references. Set `UPDATE_GOLDEN=1` to
//! re-bless the fixture after an intentional format change.

use serde::Value;

use predator_core::{CacheGeometry, Callsite, DetectorConfig, Frame, Report, Session};
use predator_policy::{
    evaluate_report, to_html, to_sarif, to_sarif_string, PolicyConfig, Severity, Suppressions,
    SARIF_SCHEMA, SARIF_VERSION,
};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.sarif");

/// Two heap sites with false sharing plus one suppressed — deterministic
/// by construction (fixed seed-free single-interleaving session).
fn golden_report() -> Report {
    let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let t0 = s.register_thread();
    let t1 = s.register_thread();
    for (file, line) in [("worker.rs", 42u32), ("queue.rs", 7)] {
        let obj = s
            .malloc(t0, 64, Callsite::from_frames(vec![Frame::new(file, line)]))
            .unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, obj.start, i);
            s.write::<u64>(t1, obj.start + 8, i);
        }
    }
    s.report()
}

fn golden_eval(report: &Report) -> predator_policy::Evaluation {
    let cfg = PolicyConfig {
        suppressions: Suppressions::parse("observed|heap:queue.rs:7*\n"),
        fail_on: Some(Severity::Warning),
        ..Default::default()
    };
    evaluate_report(report, &cfg)
}

#[test]
fn sarif_matches_the_committed_golden_fixture() {
    let report = golden_report();
    let eval = golden_eval(&report);
    let sarif = to_sarif_string(&report, &eval, CacheGeometry::default()) + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &sarif).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("missing golden fixture; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        sarif, golden,
        "SARIF output drifted from the golden fixture"
    );
}

#[test]
fn sarif_has_the_required_2_1_0_shape() {
    let report = golden_report();
    let eval = golden_eval(&report);
    let log = to_sarif(&report, &eval, CacheGeometry::default());

    // Required top-level keys.
    assert_eq!(*log.field("$schema"), Value::Str(SARIF_SCHEMA.to_string()));
    assert_eq!(*log.field("version"), Value::Str(SARIF_VERSION.to_string()));
    let runs = log.field("runs").as_seq().expect("runs must be an array");
    assert_eq!(runs.len(), 1);

    // Run structure: tool.driver with name and rules, plus results.
    let run = &runs[0];
    let driver = run.field("tool").field("driver");
    assert_eq!(*driver.field("name"), Value::Str("predator".to_string()));
    let rules = driver.field("rules").as_seq().expect("driver.rules array");
    assert!(!rules.is_empty());
    let rule_ids: Vec<String> = rules
        .iter()
        .map(|r| match r.field("id") {
            Value::Str(id) => id.clone(),
            other => panic!("rule id must be a string, got {other:?}"),
        })
        .collect();
    for rule in rules {
        for key in ["shortDescription", "fullDescription"] {
            assert!(
                matches!(rule.field(key).field("text"), Value::Str(_)),
                "rule missing {key}.text"
            );
        }
    }

    // Every result cross-references the rule table consistently and
    // carries a level plus a message.
    let results = run.field("results").as_seq().expect("results array");
    assert_eq!(results.len(), report.findings.len());
    for result in results {
        let Value::Str(rule_id) = result.field("ruleId") else {
            panic!("result.ruleId must be a string");
        };
        let Value::U64(idx) = result.field("ruleIndex") else {
            panic!("result.ruleIndex must be an integer");
        };
        assert_eq!(&rule_ids[*idx as usize], rule_id);
        assert!(matches!(result.field("level"), Value::Str(_)));
        assert!(matches!(
            result.field("message").field("text"),
            Value::Str(_)
        ));
    }

    // The suppressed finding surfaces as a SARIF suppression entry.
    let suppressed = results
        .iter()
        .filter(|r| !r.field("suppressions").as_seq().unwrap().is_empty())
        .count();
    assert!(suppressed >= 1, "expected at least one suppressed result");
}

#[test]
fn html_renders_every_finding_id() {
    let report = golden_report();
    let eval = golden_eval(&report);
    let html = to_html(&report, &eval, CacheGeometry::default());
    assert!(html.starts_with("<!DOCTYPE html>") || html.starts_with("<!doctype html>"));
    for decision in &eval.decisions {
        // Anchors hold the HTML-escaped key (heap keys contain `<`).
        let escaped = decision
            .key
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
            .replace('"', "&quot;");
        assert!(
            html.contains(&format!("id=\"{escaped}\"")),
            "finding {} has no anchor in the HTML report",
            decision.key
        );
    }
}
