//! SARIF 2.1.0 reporter: findings as a static-analysis interchange log.
//!
//! SARIF is what code hosts and CI dashboards ingest (GitHub code
//! scanning, Azure DevOps, `sarif-tools`): emitting it makes PREDATOR
//! findings show up as inline annotations on the offending allocation
//! sites. The log carries the policy engine's full verdict — severity as
//! the SARIF `level`, suppressions/baselining as `suppressions` entries
//! and `baselineState`, fix suggestions in the result message and
//! properties — so the CI side needs no extra logic beyond "ingest file".
//!
//! The tree is built by hand on the vendored [`Value`] type because SARIF
//! needs keys (`$schema`, camelCase) the derive layer cannot spell.

use std::collections::BTreeMap;

use serde::Value;

use predator_core::{
    suggest_fixes, CacheGeometry, Finding, FindingKind, Report, SharingClass, SiteKind,
};

use crate::engine::Evaluation;

/// The schema URI SARIF consumers key on.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
/// The SARIF spec version this reporter emits.
pub const SARIF_VERSION: &str = "2.1.0";

/// The fixed rule table: (id, short description, full description), in
/// `ruleIndex` order. Every result cross-references one of these.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "predator/observed-false-sharing",
        "Observed false sharing",
        "Distinct threads update distinct words of one cache line; the line ping-pongs between caches, serializing otherwise independent writes.",
    ),
    (
        "predator/predicted-false-sharing",
        "Predicted false sharing",
        "No contention on today's hardware, but invalidations verified on virtual cache lines show the same access pattern causes false sharing under a larger line size or a shifted object placement.",
    ),
    (
        "predator/true-sharing",
        "True sharing",
        "Multiple threads contend on the same word. Padding cannot help; restructure the algorithm (per-thread accumulation with a reduction) instead.",
    ),
];

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn rule_index(f: &Finding) -> usize {
    if f.class == SharingClass::TrueSharing {
        2
    } else if matches!(f.kind, FindingKind::Observed) {
        0
    } else {
        1
    }
}

fn site_location(f: &Finding) -> Option<Value> {
    match &f.object.site {
        SiteKind::Heap { callsite, .. } => callsite.frames.first().map(|frame| {
            obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", s(&frame.file))])),
                    (
                        "region",
                        obj(vec![("startLine", Value::U64(frame.line.max(1) as u64))]),
                    ),
                ]),
            )])
        }),
        SiteKind::Global { name } => Some(obj(vec![(
            "logicalLocations",
            Value::Seq(vec![obj(vec![("name", s(name)), ("kind", s("object"))])]),
        )])),
        SiteKind::Unknown => None,
    }
}

/// Builds the SARIF log for an evaluated report. `eval` must come from
/// [`crate::engine::evaluate_report`] on the same `report` (decision `i`
/// describes finding `i`).
pub fn to_sarif(report: &Report, eval: &Evaluation, geom: CacheGeometry) -> Value {
    let mut fixes: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, fix) in suggest_fixes(report, geom) {
        fixes.entry(idx).or_default().push(fix.to_string());
    }

    // SARIF rule names are conventionally PascalCase identifiers.
    let pascal = |text: &str| -> String {
        text.split(' ')
            .map(|w| {
                let mut chars = w.chars();
                match chars.next() {
                    Some(c) => c.to_uppercase().chain(chars).collect::<String>(),
                    None => String::new(),
                }
            })
            .collect()
    };
    let rules = Value::Seq(
        RULES
            .iter()
            .map(|(id, short, full)| {
                obj(vec![
                    ("id", s(*id)),
                    ("name", s(pascal(short))),
                    ("shortDescription", obj(vec![("text", s(*short))])),
                    ("fullDescription", obj(vec![("text", s(*full))])),
                    ("helpUri", s("https://doi.org/10.1145/2555243.2555244")),
                ])
            })
            .collect(),
    );

    let mut results = Vec::with_capacity(report.findings.len());
    for (i, finding) in report.findings.iter().enumerate() {
        let decision = &eval.decisions[i];
        let idx = rule_index(finding);
        let fix_texts = fixes.get(&i).cloned().unwrap_or_default();

        let mut message = format!(
            "{} on {}: {} invalidations across {} sampled accesses ({}).",
            finding.class,
            finding.object.site.stable_key(finding.object.start),
            finding.invalidations,
            finding.accesses,
            finding.kind
        );
        for fix in &fix_texts {
            message.push_str("\nFix: ");
            message.push_str(fix);
        }
        if let Some(v) = &finding.verified {
            message.push_str(&format!(
                "\nVerified by replay: {} — removes {}% of invalidations at the \
                 worst portfolio geometry ({} pad bytes).",
                v.verdict,
                v.min_pct_removed(),
                v.pad_bytes
            ));
        }

        let mut suppressions = Vec::new();
        if decision.suppressed {
            suppressions.push(obj(vec![
                ("kind", s("external")),
                (
                    "justification",
                    s("matched a rule in the suppressions file"),
                ),
            ]));
        }
        if decision.baselined {
            suppressions.push(obj(vec![
                ("kind", s("external")),
                ("justification", s("recorded in the committed baseline")),
            ]));
        }

        let mut entries = vec![
            ("ruleId", s(RULES[idx].0)),
            ("ruleIndex", Value::U64(idx as u64)),
            ("level", s(decision.severity.sarif_level())),
            ("message", obj(vec![("text", s(message))])),
        ];
        if let Some(loc) = site_location(finding) {
            entries.push(("locations", Value::Seq(vec![loc])));
        }
        entries.push(("suppressions", Value::Seq(suppressions)));
        if eval.fail_on.is_some() || decision.baselined {
            entries.push((
                "baselineState",
                s(if decision.baselined {
                    "unchanged"
                } else {
                    "new"
                }),
            ));
        }
        let mut props = vec![
            ("callsiteKey", s(&decision.key)),
            ("severity", s(decision.severity.as_str())),
            ("invalidations", Value::U64(finding.invalidations)),
            ("accesses", Value::U64(finding.accesses)),
            ("objectSize", Value::U64(finding.object.size)),
            ("gating", Value::Bool(decision.gating)),
            ("fixes", Value::Seq(fix_texts.iter().map(s).collect())),
        ];
        if let Some(v) = &finding.verified {
            props.push((
                "verifiedFix",
                obj(vec![
                    ("fix", s(&v.fix)),
                    ("verdict", s(v.verdict.to_string())),
                    ("padBytes", Value::U64(v.pad_bytes)),
                    ("minPctRemoved", Value::U64(v.min_pct_removed())),
                    (
                        "deltas",
                        Value::Seq(
                            v.deltas
                                .iter()
                                .map(|d| {
                                    obj(vec![
                                        ("lineSize", Value::U64(d.line_size)),
                                        ("before", Value::U64(d.before)),
                                        ("after", Value::U64(d.after)),
                                        ("pctRemoved", Value::U64(d.pct_removed())),
                                        ("mesiBefore", Value::U64(d.mesi_before)),
                                        ("mesiAfter", Value::U64(d.mesi_after)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        entries.push(("properties", obj(props)));
        results.push(obj(entries));
    }

    obj(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s(SARIF_VERSION)),
        (
            "runs",
            Value::Seq(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("predator")),
                            ("version", s(env!("CARGO_PKG_VERSION"))),
                            (
                                "informationUri",
                                s("https://doi.org/10.1145/2555243.2555244"),
                            ),
                            ("rules", rules),
                        ]),
                    )]),
                ),
                ("results", Value::Seq(results)),
                (
                    "properties",
                    obj(vec![
                        ("policy", s(&eval.policy_name)),
                        (
                            "failOn",
                            match eval.fail_on {
                                Some(sev) => s(sev.as_str()),
                                None => Value::Null,
                            },
                        ),
                        ("gateFailed", Value::Bool(eval.gate_failed())),
                    ]),
                ),
            ])]),
        ),
    ])
}

/// Renders the SARIF log as pretty JSON.
pub fn to_sarif_string(report: &Report, eval: &Evaluation, geom: CacheGeometry) -> String {
    serde_json::to_string_pretty(&to_sarif(report, eval, geom)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate_report, PolicyConfig};
    use crate::severity::Severity;
    use crate::suppress::Suppressions;
    use predator_core::{Callsite, DetectorConfig, Frame, Session};

    fn report() -> Report {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s
            .malloc(
                t0,
                64,
                Callsite::from_frames(vec![Frame::new("worker.rs", 42)]),
            )
            .unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, obj.start, i);
            s.write::<u64>(t1, obj.start + 8, i);
        }
        s.report()
    }

    #[test]
    fn results_cross_reference_the_rule_table() {
        let r = report();
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let log = to_sarif(&r, &eval, CacheGeometry::default());
        let run = &log.field("runs").as_seq().unwrap()[0];
        let rules = run.field("tool").field("driver").field("rules");
        let rule_ids: Vec<&str> = rules
            .as_seq()
            .unwrap()
            .iter()
            .map(|rule| match rule.field("id") {
                Value::Str(id) => id.as_str(),
                _ => panic!("rule id must be a string"),
            })
            .collect();
        let results = run.field("results").as_seq().unwrap();
        assert_eq!(results.len(), r.findings.len());
        for result in results {
            let Value::U64(idx) = result.field("ruleIndex") else {
                panic!("ruleIndex must be an integer");
            };
            let Value::Str(id) = result.field("ruleId") else {
                panic!("ruleId must be a string");
            };
            assert_eq!(rule_ids[*idx as usize], id.as_str());
        }
    }

    #[test]
    fn location_points_at_the_allocation_frame() {
        let r = report();
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let log = to_sarif_string(&r, &eval, CacheGeometry::default());
        assert!(log.contains("\"uri\": \"worker.rs\""), "{log}");
        assert!(log.contains("\"startLine\": 42"), "{log}");
    }

    #[test]
    fn suppressed_findings_carry_suppressions() {
        let r = report();
        let key = r.findings[0].callsite_key();
        let cfg = PolicyConfig {
            suppressions: Suppressions::parse(&format!("{key}\n")),
            fail_on: Some(Severity::Warning),
            ..Default::default()
        };
        let eval = evaluate_report(&r, &cfg);
        let log = to_sarif(&r, &eval, CacheGeometry::default());
        let run = &log.field("runs").as_seq().unwrap()[0];
        let first = &run.field("results").as_seq().unwrap()[0];
        let sups = first.field("suppressions").as_seq().unwrap();
        assert!(!sups.is_empty());
        assert_eq!(*first.field("baselineState"), Value::Str("new".to_string()));
    }

    #[test]
    fn verified_fix_reaches_message_and_properties() {
        use predator_core::{FixVerdict, GeometryDelta, VerifiedFix};
        let mut r = report();
        r.findings[0].verified = Some(VerifiedFix {
            fix: "pad the object".into(),
            pad_bytes: 512,
            deltas: vec![GeometryDelta {
                line_size: 64,
                before: 100,
                after: 3,
                mesi_before: 80,
                mesi_after: 2,
            }],
            verdict: FixVerdict::Fixes,
        });
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let log = to_sarif_string(&r, &eval, CacheGeometry::default());
        assert!(log.contains("Verified by replay: fixes"), "{log}");
        assert!(log.contains("\"verifiedFix\""), "{log}");
        assert!(log.contains("\"minPctRemoved\": 97"), "{log}");
        assert!(log.contains("\"mesiAfter\": 2"), "{log}");
    }

    #[test]
    fn fix_suggestions_reach_message_and_properties() {
        let r = report();
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let log = to_sarif_string(&r, &eval, CacheGeometry::default());
        assert!(log.contains("Fix: "), "{log}");
        assert!(log.contains("\"fixes\""), "{log}");
    }
}
