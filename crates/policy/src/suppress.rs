//! Per-site suppressions: a reviewed list of findings a team has chosen
//! to silence permanently.
//!
//! Suppressions are keyed by [`Finding::callsite_key`] — the same stable
//! `family|site` identity the fleet store aggregates on — so a suppression
//! written once holds across runs, hosts, and report formats. A baseline
//! (see [`crate::baseline`]) silences *what exists today*; a suppression
//! silences *a specific site forever*, with a recorded reason.
//!
//! File format, one rule per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! observed|heap:app.rs:10<main.rs:3      # exact callsite key
//! doubled|global:counters                # exact, with trailing comment
//! scaled*                                 # trailing * = prefix match
//! ```
//!
//! [`Finding::callsite_key`]: predator_core::Finding::callsite_key

use std::path::Path;

/// One suppression rule: an exact callsite key, or a prefix when the
/// pattern ends with `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressRule {
    /// The pattern, with any trailing `*` stripped.
    pub pattern: String,
    /// True when the original pattern ended with `*`.
    pub prefix: bool,
}

impl SuppressRule {
    /// Parses one pattern string.
    pub fn parse(pattern: &str) -> Self {
        match pattern.strip_suffix('*') {
            Some(prefix) => SuppressRule {
                pattern: prefix.to_string(),
                prefix: true,
            },
            None => SuppressRule {
                pattern: pattern.to_string(),
                prefix: false,
            },
        }
    }

    /// True when `key` matches this rule.
    pub fn matches(&self, key: &str) -> bool {
        if self.prefix {
            key.starts_with(&self.pattern)
        } else {
            key == self.pattern
        }
    }
}

/// A parsed suppression list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Suppressions {
    /// Rules in file order; first match wins (order only matters for
    /// attribution, every match suppresses).
    pub rules: Vec<SuppressRule>,
}

impl Suppressions {
    /// Parses suppression rules from file text: one pattern per line,
    /// `#` starts a comment (whole-line or trailing), blank lines ignored.
    pub fn parse(text: &str) -> Self {
        let rules = text
            .lines()
            .map(|line| line.split('#').next().unwrap_or("").trim())
            .filter(|line| !line.is_empty())
            .map(SuppressRule::parse)
            .collect();
        Suppressions { rules }
    }

    /// Loads and parses a suppression file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read suppressions {}: {e}", path.display()))?;
        Ok(Self::parse(&text))
    }

    /// Returns the first rule matching `key`, if any.
    pub fn matching(&self, key: &str) -> Option<&SuppressRule> {
        self.rules.iter().find(|r| r.matches(key))
    }

    /// True when `key` is suppressed.
    pub fn is_suppressed(&self, key: &str) -> bool {
        self.matching(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_prefixes() {
        let s = Suppressions::parse(
            "# header comment\n\
             observed|global:victim\n\
             \n\
             doubled|heap:app.rs:10<main.rs:3   # reviewed 2026-08\n\
             scaled*\n",
        );
        assert_eq!(s.rules.len(), 3);
        assert!(s.is_suppressed("observed|global:victim"));
        assert!(s.is_suppressed("doubled|heap:app.rs:10<main.rs:3"));
        assert!(s.is_suppressed("scaled4|heap:x.rs:1"));
        assert!(!s.is_suppressed("observed|global:other"));
        // Exact rules do not prefix-match.
        assert!(!s.is_suppressed("observed|global:victim2"));
    }

    #[test]
    fn empty_list_suppresses_nothing() {
        let s = Suppressions::parse("# nothing here\n");
        assert!(s.rules.is_empty());
        assert!(!s.is_suppressed("observed|global:x"));
    }

    #[test]
    fn matching_reports_the_rule() {
        let s = Suppressions::parse("remap*\nobserved|global:a\n");
        assert_eq!(s.matching("remap|addr:0xdead").unwrap().pattern, "remap");
        assert!(s.matching("doubled|global:a").is_none());
    }
}
