//! The evaluation engine: classify → suppress → baseline → gate.
//!
//! [`evaluate_report`] runs every finding of a report through that fixed
//! pipeline and returns one [`FindingDecision`] per finding plus the gate
//! verdict. The stages are ordered so each narrows what the next sees:
//!
//! 1. **classify** — the configured [`Policy`] assigns a [`Severity`] from
//!    the finding's measurements; every finding gets one, always.
//! 2. **suppress** — if the callsite key matches a suppression rule, the
//!    finding is marked suppressed and can never gate (but still appears
//!    in reports, flagged, so reviewers see what the list hides).
//! 3. **baseline** — if the key exists in the loaded baseline, the finding
//!    is known debt: reported, never gating.
//! 4. **gate** — a surviving finding gates iff `--fail-on` is set and its
//!    severity is at or above the threshold.

use std::sync::Arc;

use predator_core::Report;
use predator_obs::static_counter;

use crate::baseline::Baseline;
use crate::rules::{FindingView, Policy, ThresholdPolicy};
use crate::severity::Severity;
use crate::suppress::Suppressions;

/// Everything the engine needs to evaluate a report.
#[derive(Clone)]
pub struct PolicyConfig {
    /// The classification policy (default: [`ThresholdPolicy`]).
    pub policy: Arc<dyn Policy>,
    /// Per-site suppressions (default: none).
    pub suppressions: Suppressions,
    /// Known-findings baseline (default: none).
    pub baseline: Option<Baseline>,
    /// Gate threshold; `None` disables gating entirely.
    pub fail_on: Option<Severity>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            policy: Arc::new(ThresholdPolicy::default()),
            suppressions: Suppressions::default(),
            baseline: None,
            fail_on: None,
        }
    }
}

impl std::fmt::Debug for PolicyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyConfig")
            .field("policy", &self.policy.name())
            .field("suppressions", &self.suppressions.rules.len())
            .field("baseline", &self.baseline.is_some())
            .field("fail_on", &self.fail_on)
            .finish()
    }
}

/// The engine's verdict on one finding.
#[derive(Debug, Clone, PartialEq)]
pub struct FindingDecision {
    /// Index into `report.findings`.
    pub index: usize,
    /// The finding's callsite key.
    pub key: String,
    /// Classified severity.
    pub severity: Severity,
    /// Matched a suppression rule.
    pub suppressed: bool,
    /// Present in the baseline.
    pub baselined: bool,
    /// Counts toward the `--fail-on` gate (neither suppressed nor
    /// baselined, severity at or above the threshold).
    pub gating: bool,
}

/// The evaluated report: one decision per finding plus the gate verdict.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Evaluation {
    /// Decisions, in `report.findings` order.
    pub decisions: Vec<FindingDecision>,
    /// The gate threshold this evaluation ran under.
    pub fail_on: Option<Severity>,
    /// The policy name that classified the findings.
    pub policy_name: String,
}

impl Evaluation {
    /// Findings that count toward the gate.
    pub fn gating(&self) -> impl Iterator<Item = &FindingDecision> {
        self.decisions.iter().filter(|d| d.gating)
    }

    /// True when gating is enabled and at least one finding gates.
    pub fn gate_failed(&self) -> bool {
        self.fail_on.is_some() && self.decisions.iter().any(|d| d.gating)
    }

    /// One-line gate summary for stderr, e.g.
    /// `2 finding(s) at or above warning (1 suppressed, 3 baselined)`.
    pub fn gate_summary(&self) -> String {
        let threshold = self
            .fail_on
            .map(|s| s.as_str())
            .unwrap_or("(gate disabled)");
        let gating = self.decisions.iter().filter(|d| d.gating).count();
        let suppressed = self.decisions.iter().filter(|d| d.suppressed).count();
        let baselined = self.decisions.iter().filter(|d| d.baselined).count();
        format!(
            "{gating} finding(s) at or above {threshold} ({suppressed} suppressed, {baselined} baselined)"
        )
    }
}

/// Evaluates a sequence of [`FindingView`]s under `config` — the shared
/// pipeline body behind [`evaluate_report`] (live findings) and the fleet
/// report gate (callsite aggregates). Decisions come back in input order.
pub fn evaluate_views<'a>(
    views: impl IntoIterator<Item = FindingView<'a>>,
    config: &PolicyConfig,
) -> Evaluation {
    let mut decisions = Vec::new();
    for (index, view) in views.into_iter().enumerate() {
        let severity = config.policy.classify(&view);
        static_counter!("policy_findings_classified_total").inc();
        let suppressed = config.suppressions.is_suppressed(view.key);
        if suppressed {
            static_counter!("policy_suppressed_total").inc();
        }
        let baselined = config
            .baseline
            .as_ref()
            .is_some_and(|b| b.contains(view.key));
        if baselined {
            static_counter!("policy_baselined_total").inc();
        }
        let gating = !suppressed
            && !baselined
            && config
                .fail_on
                .is_some_and(|threshold| severity >= threshold);
        if gating {
            static_counter!("policy_gate_failures_total").inc();
        }
        decisions.push(FindingDecision {
            index,
            key: view.key.to_string(),
            severity,
            suppressed,
            baselined,
            gating,
        });
    }
    Evaluation {
        decisions,
        fail_on: config.fail_on,
        policy_name: config.policy.name().to_string(),
    }
}

/// Evaluates every finding of `report` under `config`. Decisions come back
/// in finding order, so `decisions[i]` describes `report.findings[i]`.
pub fn evaluate_report(report: &Report, config: &PolicyConfig) -> Evaluation {
    let keys: Vec<String> = report.findings.iter().map(|f| f.callsite_key()).collect();
    evaluate_views(
        report
            .findings
            .iter()
            .zip(&keys)
            .map(|(f, key)| FindingView::of(f, key)),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::{Callsite, DetectorConfig, Frame, Session};

    fn report() -> Report {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s
            .malloc(
                t0,
                64,
                Callsite::from_frames(vec![Frame::new("gate.rs", 7)]),
            )
            .unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, obj.start, i);
            s.write::<u64>(t1, obj.start + 8, i);
        }
        s.report()
    }

    #[test]
    fn default_config_reports_but_never_gates() {
        let r = report();
        assert!(!r.findings.is_empty());
        let eval = evaluate_report(&r, &PolicyConfig::default());
        assert_eq!(eval.decisions.len(), r.findings.len());
        assert!(!eval.gate_failed());
        assert!(eval.decisions.iter().all(|d| !d.gating));
    }

    #[test]
    fn fail_on_warning_gates_unsuppressed_findings() {
        let r = report();
        let cfg = PolicyConfig {
            fail_on: Some(Severity::Warning),
            ..Default::default()
        };
        let eval = evaluate_report(&r, &cfg);
        assert!(eval.gate_failed(), "{}", eval.gate_summary());
        assert!(eval.gating().count() > 0);
    }

    #[test]
    fn suppression_disarms_the_gate() {
        let r = report();
        let key = r.findings[0].callsite_key();
        let cfg = PolicyConfig {
            suppressions: Suppressions::parse(&format!("{key}\n")),
            fail_on: Some(Severity::Info),
            ..Default::default()
        };
        let eval = evaluate_report(&r, &cfg);
        let d = &eval.decisions[0];
        assert!(d.suppressed);
        assert!(!d.gating);
        // Other findings may still gate; the suppressed one never does.
        assert!(eval.gating().all(|g| g.key != key));
    }

    #[test]
    fn baseline_silences_known_findings_only() {
        let r = report();
        let cfg = PolicyConfig {
            baseline: Some(Baseline::from_report(&r)),
            fail_on: Some(Severity::Info),
            ..Default::default()
        };
        let eval = evaluate_report(&r, &cfg);
        assert!(!eval.gate_failed(), "{}", eval.gate_summary());
        assert!(eval.decisions.iter().all(|d| d.baselined));

        // An empty baseline silences nothing.
        let cfg = PolicyConfig {
            baseline: Some(Baseline::default()),
            fail_on: Some(Severity::Info),
            ..Default::default()
        };
        assert!(evaluate_report(&r, &cfg).gate_failed());
    }

    #[test]
    fn fail_on_error_passes_a_warning_only_report() {
        let r = report();
        let cfg = PolicyConfig {
            fail_on: Some(Severity::Error),
            ..Default::default()
        };
        let eval = evaluate_report(&r, &cfg);
        // The synthetic workload produces warning-tier findings (500
        // invalidations, low rate); an error gate must not trip on them.
        if eval.decisions.iter().all(|d| d.severity < Severity::Error) {
            assert!(!eval.gate_failed(), "{}", eval.gate_summary());
        }
    }
}
