//! Baseline files: a snapshot of today's known findings, so CI gates only
//! on what is *new*.
//!
//! `predator baseline write` records every finding's callsite key (and its
//! invalidation count, for drift inspection) into a small JSON file meant
//! to be committed next to the code. A later `analyze --baseline <file>`
//! then classifies findings as usual but exempts baselined keys from the
//! `--fail-on` gate: the team sees the full report, yet the merge fails
//! only when a finding appears at a key the baseline has never seen.
//!
//! Baselines are membership sets, not tolerance bands — a baselined site
//! that got worse still passes the gate (use `predator diff` or
//! `baseline diff` to watch drift). Deleting the file restores full gating.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use predator_core::Report;

use crate::compare::{compare_maps, DeltaEntry};

/// The baseline file schema tag; bump on incompatible change.
pub const BASELINE_SCHEMA: &str = "predator-baseline/1";

/// A recorded set of known findings, keyed by callsite key.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Schema tag, always [`BASELINE_SCHEMA`].
    pub schema: String,
    /// Callsite key → invalidation count at the time the baseline was
    /// written. Only the keys gate; counts are kept for drift inspection.
    pub entries: BTreeMap<String, u64>,
}

impl Baseline {
    /// Snapshots every finding of `report` (duplicate keys keep the
    /// larger count).
    pub fn from_report(report: &Report) -> Self {
        let mut entries = BTreeMap::new();
        for f in &report.findings {
            let e = entries.entry(f.callsite_key()).or_insert(0u64);
            *e = (*e).max(f.invalidations);
        }
        Baseline {
            schema: BASELINE_SCHEMA.to_string(),
            entries,
        }
    }

    /// Loads and validates a baseline file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let b: Baseline = serde_json::from_str(&text)
            .map_err(|e| format!("malformed baseline {}: {e}", path.display()))?;
        if b.schema != BASELINE_SCHEMA {
            return Err(format!(
                "baseline {} has schema `{}`, expected `{}`",
                path.display(),
                b.schema,
                BASELINE_SCHEMA
            ));
        }
        Ok(b)
    }

    /// Writes the baseline as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| format!("cannot serialize baseline: {e}"))?;
        std::fs::write(path, json)
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))
    }

    /// True when `key` was present when the baseline was written.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Compares a current report against this baseline through the shared
    /// comparison engine: added keys are new findings, removed keys are
    /// fixed ones, increased/decreased are drift beyond `tolerance`.
    pub fn diff(&self, report: &Report, tolerance: f64) -> Vec<DeltaEntry<String>> {
        let old: BTreeMap<String, f64> = self
            .entries
            .iter()
            .map(|(k, &v)| (k.clone(), v as f64))
            .collect();
        let mut new: BTreeMap<String, f64> = BTreeMap::new();
        for f in &report.findings {
            let e = new.entry(f.callsite_key()).or_insert(0.0);
            *e = e.max(f.invalidations as f64);
        }
        compare_maps(&old, &new, tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::Delta;
    use predator_core::{Callsite, DetectorConfig, Frame, Session};

    fn report(sites: &[(&str, u32)]) -> Report {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        for (file, line) in sites {
            let obj = s
                .malloc(
                    t0,
                    64,
                    Callsite::from_frames(vec![Frame::new(*file, *line)]),
                )
                .unwrap();
            for i in 0..500u64 {
                s.write::<u64>(t0, obj.start, i);
                s.write::<u64>(t1, obj.start + 8, i);
            }
        }
        s.report()
    }

    #[test]
    fn snapshot_then_reload_round_trips() {
        let r = report(&[("a.rs", 1), ("b.rs", 2)]);
        let b = Baseline::from_report(&r);
        assert!(!b.entries.is_empty());
        let dir = std::env::temp_dir().join("predator-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        b.save(&path).unwrap();
        let back = Baseline::load(&path).unwrap();
        assert_eq!(back, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = std::env::temp_dir().join("predator-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-schema.json");
        std::fs::write(&path, r#"{"schema":"predator-baseline/99","entries":{}}"#).unwrap();
        let err = Baseline::load(&path).unwrap_err();
        assert!(err.contains("predator-baseline/99"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn diff_flags_only_new_sites() {
        let before = report(&[("a.rs", 1)]);
        let b = Baseline::from_report(&before);
        let after = report(&[("a.rs", 1), ("new.rs", 9)]);
        let entries = b.diff(&after, 0.5);
        let added: Vec<&str> = entries
            .iter()
            .filter(|e| e.delta == Delta::Added)
            .map(|e| e.key.as_str())
            .collect();
        assert!(
            added.iter().all(|k| k.contains("new.rs:9")),
            "unexpected additions: {added:?}"
        );
        assert!(!added.is_empty());
        // The pre-existing site is present but not Added.
        assert!(entries
            .iter()
            .any(|e| e.key.contains("a.rs:1") && e.delta != Delta::Added));
    }
}
