//! Severity levels and the `--fail-on` threshold they gate against.

use serde::{Deserialize, Serialize};

/// Classified severity of a finding, ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing, not actionable as a layout fix (e.g. true sharing).
    Info,
    /// Actionable false sharing under the configured thresholds.
    Warning,
    /// Severe false sharing: invalidation volume or rate beyond the
    /// error thresholds.
    Error,
}

impl Severity {
    /// Lowercase name (the `--fail-on` argument form).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// The SARIF 2.1.0 `level` value for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" | "warn" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!("unknown severity `{other}` (info|warning|error)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_escalates() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn parses_and_round_trips() {
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(s.as_str().parse::<Severity>().unwrap(), s);
        }
        assert_eq!("warn".parse::<Severity>().unwrap(), Severity::Warning);
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn sarif_levels_match_the_spec_vocabulary() {
        assert_eq!(Severity::Info.sarif_level(), "note");
        assert_eq!(Severity::Warning.sarif_level(), "warning");
        assert_eq!(Severity::Error.sarif_level(), "error");
    }
}
