//! Report diffing: compare two detector reports across code or layout
//! changes.
//!
//! A detector is most useful wired into CI: run the suite before and after a
//! change and ask *what appeared, what disappeared, what got worse*.
//! Findings are matched by identity — the object's source attribution (or
//! address when unattributed) plus the detection scenario — so reordering
//! and count jitter don't produce spurious churn; severity changes beyond a
//! tolerance are reported separately.
//!
//! Classification routes through [`crate::compare`], the same fold that
//! powers fleet trends and bench gates; this module keeps the
//! finding-identity keying and the historical output format.

use serde::{Deserialize, Serialize};

use predator_core::{Finding, FindingKind, Report, SiteKind};

use crate::compare::{compare_maps, Delta};

/// Stable identity of a finding across runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FindingId {
    /// Source attribution: first callsite frame, global name, or hex start
    /// address for unattributed memory.
    pub site: String,
    /// Detection scenario (observed / predicted variant), flattened to a
    /// stable string.
    pub kind: String,
}

impl FindingId {
    /// Derives the identity of `f`.
    pub fn of(f: &Finding) -> Self {
        let site = match &f.object.site {
            SiteKind::Heap { callsite, .. } => callsite
                .frames
                .first()
                .map(|fr| fr.to_string())
                .unwrap_or_else(|| format!("{:#x}", f.object.start)),
            SiteKind::Global { name } => name.clone(),
            SiteKind::Unknown => format!("{:#x}", f.object.start),
        };
        let kind = match f.kind {
            FindingKind::Observed => "observed".to_string(),
            FindingKind::PredictedDoubled => "predicted-2x".to_string(),
            FindingKind::PredictedScaled { factor_log2 } => {
                format!("predicted-{}x", 1u64 << factor_log2)
            }
            // Deltas are placement details, not identity: the same latent
            // bug can verify at a different shift after an unrelated change.
            FindingKind::PredictedRemap { .. } => "predicted-remap".to_string(),
        };
        FindingId { site, kind }
    }
}

/// A finding present in both runs whose severity moved beyond tolerance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeverityChange {
    /// Identity.
    pub id: FindingId,
    /// Invalidations in the old run.
    pub before: u64,
    /// Invalidations in the new run.
    pub after: u64,
}

/// The difference between two reports.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Findings only in the new report (regressions).
    pub appeared: Vec<FindingId>,
    /// Findings only in the old report (fixed).
    pub resolved: Vec<FindingId>,
    /// Matched findings whose invalidation count changed by more than the
    /// tolerance factor.
    pub severity_changes: Vec<SeverityChange>,
}

impl ReportDiff {
    /// True when nothing appeared, resolved, or materially changed.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.resolved.is_empty() && self.severity_changes.is_empty()
    }

    /// True when the new report contains findings the old one lacked.
    pub fn has_regressions(&self) -> bool {
        !self.appeared.is_empty()
    }
}

impl std::fmt::Display for ReportDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return writeln!(f, "No finding changes.");
        }
        for id in &self.appeared {
            writeln!(f, "+ NEW      {} [{}]", id.site, id.kind)?;
        }
        for id in &self.resolved {
            writeln!(f, "- RESOLVED {} [{}]", id.site, id.kind)?;
        }
        for c in &self.severity_changes {
            writeln!(
                f,
                "~ CHANGED  {} [{}]: {} -> {} invalidations",
                c.id.site, c.id.kind, c.before, c.after
            )?;
        }
        Ok(())
    }
}

/// Diffs `new` against `old`.
///
/// `tolerance` is the relative invalidation-count change below which a
/// matched finding is considered unchanged (sampling and scheduling jitter
/// move counts run to run; 0.5 = flag only >50% swings).
pub fn diff_reports(old: &Report, new: &Report, tolerance: f64) -> ReportDiff {
    use std::collections::BTreeMap;
    let index = |r: &Report| -> BTreeMap<FindingId, u64> {
        let mut m = BTreeMap::new();
        for f in &r.findings {
            let e = m.entry(FindingId::of(f)).or_insert(0u64);
            *e += f.invalidations;
        }
        m
    };
    let old_idx = index(old);
    let new_idx = index(new);
    let as_f64 = |m: &BTreeMap<FindingId, u64>| -> BTreeMap<FindingId, f64> {
        m.iter().map(|(k, &v)| (k.clone(), v as f64)).collect()
    };

    let mut out = ReportDiff::default();
    for entry in compare_maps(&as_f64(&old_idx), &as_f64(&new_idx), tolerance) {
        match entry.delta {
            Delta::Added => out.appeared.push(entry.key),
            Delta::Removed => out.resolved.push(entry.key),
            Delta::Increased | Delta::Decreased => out.severity_changes.push(SeverityChange {
                before: old_idx[&entry.key],
                after: new_idx[&entry.key],
                id: entry.key,
            }),
            Delta::Steady => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::{Callsite, DetectorConfig, Frame, Session};

    fn run(broken: bool, intensity: u64) -> Report {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s
            .malloc(
                t0,
                192,
                Callsite::from_frames(vec![Frame::new("app.rs", 10)]),
            )
            .unwrap();
        let stride = if broken { 8 } else { 128 };
        for i in 0..intensity {
            s.write::<u64>(t0, obj.start, i);
            s.write::<u64>(t1, obj.start + stride, i);
        }
        s.report()
    }

    #[test]
    fn identical_runs_diff_empty() {
        let a = run(true, 500);
        let b = run(true, 500);
        let d = diff_reports(&a, &b, 0.5);
        assert!(d.is_empty(), "{d}");
        assert!(!d.has_regressions());
    }

    #[test]
    fn fixing_the_bug_shows_as_resolved() {
        let broken = run(true, 500);
        let fixed = run(false, 500);
        let d = diff_reports(&broken, &fixed, 0.5);
        assert!(!d.resolved.is_empty(), "{d}");
        assert!(d.appeared.is_empty());
        assert!(d.to_string().contains("- RESOLVED app.rs:10"));
    }

    #[test]
    fn introducing_the_bug_is_a_regression() {
        let fixed = run(false, 500);
        let broken = run(true, 500);
        let d = diff_reports(&fixed, &broken, 0.5);
        assert!(d.has_regressions(), "{d}");
        assert!(d.to_string().contains("+ NEW      app.rs:10"));
    }

    #[test]
    fn severity_growth_beyond_tolerance_is_flagged() {
        let mild = run(true, 500);
        let severe = run(true, 5_000);
        let d = diff_reports(&mild, &severe, 0.5);
        assert!(d.appeared.is_empty(), "{d}");
        assert_eq!(d.severity_changes.len(), 1, "{d}");
        let c = &d.severity_changes[0];
        assert!(c.after > c.before * 5);
        // Small jitter stays quiet.
        let jitter = run(true, 510);
        let d = diff_reports(&mild, &jitter, 0.5);
        assert!(d.severity_changes.is_empty(), "{d}");
    }

    #[test]
    fn remap_delta_is_not_part_of_identity() {
        let a = FindingId {
            site: "x".into(),
            kind: "predicted-remap".into(),
        };
        // Two findings with different deltas map to the same id.
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 128, Callsite::here()).unwrap();
        for _ in 0..600 {
            s.write::<u64>(t0, obj.start + 56, 1);
            s.write::<u64>(t1, obj.start + 64, 2);
        }
        let r = s.report();
        let remap = r
            .findings
            .iter()
            .find(|f| matches!(f.kind, predator_core::FindingKind::PredictedRemap { .. }))
            .unwrap();
        assert_eq!(FindingId::of(remap).kind, a.kind);
    }
}
