//! # predator-policy
//!
//! The policy engine that sits between PREDATOR's detection layer and its
//! output: it decides *what a finding means for this team* — how severe it
//! is, whether it is already known, and whether it should fail the build —
//! and renders the verdict in CI-native formats.
//!
//! The paper (§6) frames findings as prescriptions to the programmer; this
//! crate makes them enforceable. The layers:
//!
//! * [`severity`] — the `info < warning < error` scale and `--fail-on`
//!   parsing;
//! * [`rules`] — the [`Policy`] trait, the built-in threshold policy, and
//!   the registry for custom classifiers;
//! * [`suppress`] — per-site suppressions keyed by callsite key;
//! * [`baseline`] — known-findings snapshots (`predator baseline
//!   write|diff`) so only *new* findings gate;
//! * [`engine`] — the classify → suppress → baseline → gate pipeline;
//! * [`compare`] — the shared comparison engine behind report diffs,
//!   fleet trends, baseline diffs, and bench gates;
//! * [`diff`] — report-vs-report diffing (moved here from
//!   `predator-core`; re-exported at the same names);
//! * [`sarif`], [`html`] — the SARIF 2.1.0 and self-contained HTML
//!   reporters, both embedding fix suggestions.

pub mod baseline;
pub mod compare;
pub mod diff;
pub mod engine;
pub mod html;
pub mod rules;
pub mod sarif;
pub mod severity;
pub mod suppress;

pub use baseline::{Baseline, BASELINE_SCHEMA};
pub use compare::{
    classify, compare_maps, direction_for_key, gate_metric, regression, Delta, DeltaEntry,
    Direction,
};
pub use diff::{diff_reports, FindingId, ReportDiff, SeverityChange};
pub use engine::{evaluate_report, evaluate_views, Evaluation, FindingDecision, PolicyConfig};
pub use html::to_html;
pub use rules::{
    policy_by_name, policy_names, register_policy, FindingView, Policy, ThresholdPolicy,
};
pub use sarif::{to_sarif, to_sarif_string, SARIF_SCHEMA, SARIF_VERSION};
pub use severity::Severity;
pub use suppress::{SuppressRule, Suppressions};
