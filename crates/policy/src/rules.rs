//! The rule layer: classification policies and their registry.
//!
//! A [`Policy`] turns one finding's measurements into a [`Severity`]. The
//! built-in [`ThresholdPolicy`] implements the paper-faithful default —
//! invalidation counts and rates are *the* ranking signal (§4) — while the
//! registry lets workloads and plugins install custom policies and select
//! them by name (`--policy <name>`).

use std::sync::{Arc, Mutex, OnceLock};

use predator_core::{Finding, FindingKind, SharingClass};

use crate::severity::Severity;

/// A classification policy's view of one finding: the measurements shared
/// by live [`Finding`]s and fleet callsite aggregates, so one policy
/// classifies both.
#[derive(Debug, Clone)]
pub struct FindingView<'a> {
    /// Stable callsite key (`Finding::callsite_key` form).
    pub key: &'a str,
    /// Detection scenario.
    pub kind: &'a FindingKind,
    /// False, true, or mixed sharing.
    pub class: SharingClass,
    /// Invalidations (per-run mean for aggregates).
    pub invalidations: u64,
    /// Sampled accesses on the involved lines.
    pub accesses: u64,
    /// Victim object size in bytes.
    pub object_size: u64,
}

impl<'a> FindingView<'a> {
    /// Borrows a live finding's measurements. The key must be the
    /// finding's `callsite_key()`, computed by the caller (it allocates).
    pub fn of(f: &'a Finding, key: &'a str) -> Self {
        FindingView {
            key,
            kind: &f.kind,
            class: f.class,
            invalidations: f.invalidations,
            accesses: f.accesses,
            object_size: f.object.size,
        }
    }
}

/// A pluggable severity classifier.
pub trait Policy: Send + Sync {
    /// Registry name (`--policy <name>` selects it).
    fn name(&self) -> &str;

    /// Classifies one finding.
    fn classify(&self, view: &FindingView<'_>) -> Severity;
}

/// The built-in threshold policy.
///
/// True sharing is [`Severity::Info`]: padding cannot fix it, so it should
/// not gate a merge by default. False and mixed sharing start at
/// [`Severity::Warning`] (the detector's own report threshold already
/// filtered noise) and escalate to [`Severity::Error`] when either the
/// absolute invalidation count or the invalidation *rate* (invalidations
/// per sampled access — scale-free across run lengths) crosses its
/// threshold.
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    /// Invalidations at or above this are at least a warning.
    pub warn_invalidations: u64,
    /// Invalidations at or above this are an error.
    pub error_invalidations: u64,
    /// Invalidations per sampled access at or above this are an error
    /// (guarded: rates only count once `accesses > 0`).
    pub error_rate: f64,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            warn_invalidations: 1,
            error_invalidations: 10_000,
            error_rate: 0.5,
        }
    }
}

impl Policy for ThresholdPolicy {
    fn name(&self) -> &str {
        "threshold"
    }

    fn classify(&self, view: &FindingView<'_>) -> Severity {
        if view.class == SharingClass::TrueSharing {
            return Severity::Info;
        }
        let rate = if view.accesses > 0 {
            view.invalidations as f64 / view.accesses as f64
        } else {
            0.0
        };
        if view.invalidations >= self.error_invalidations || rate >= self.error_rate {
            Severity::Error
        } else if view.invalidations >= self.warn_invalidations {
            Severity::Warning
        } else {
            Severity::Info
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<dyn Policy>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<dyn Policy>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(vec![Arc::new(ThresholdPolicy::default())]))
}

/// Registers a custom policy process-wide. A later registration under an
/// existing name shadows the earlier one (latest wins), so plugins can
/// replace the built-in default.
pub fn register_policy(policy: Arc<dyn Policy>) {
    registry().lock().unwrap().push(policy);
}

/// Looks a policy up by name; `"threshold"` is always available.
pub fn policy_by_name(name: &str) -> Option<Arc<dyn Policy>> {
    let reg = registry().lock().unwrap();
    reg.iter().rev().find(|p| p.name() == name).cloned()
}

/// Names currently registered, newest shadowing first (for error messages).
pub fn policy_names() -> Vec<String> {
    let reg = registry().lock().unwrap();
    let mut names: Vec<String> = reg.iter().rev().map(|p| p.name().to_string()).collect();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(class: SharingClass, invalidations: u64, accesses: u64) -> FindingView<'static> {
        FindingView {
            key: "observed|global:x",
            kind: &FindingKind::Observed,
            class,
            invalidations,
            accesses,
            object_size: 64,
        }
    }

    #[test]
    fn threshold_policy_tiers() {
        let p = ThresholdPolicy::default();
        assert_eq!(
            p.classify(&view(SharingClass::TrueSharing, 1_000_000, 1_000_000)),
            Severity::Info
        );
        assert_eq!(
            p.classify(&view(SharingClass::FalseSharing, 100, 10_000)),
            Severity::Warning
        );
        assert_eq!(
            p.classify(&view(SharingClass::FalseSharing, 20_000, 1_000_000)),
            Severity::Error
        );
        // Rate escalation: few invalidations but nearly every access pays.
        assert_eq!(
            p.classify(&view(SharingClass::Mixed, 90, 100)),
            Severity::Error
        );
        // Zero accesses cannot divide; count thresholds still apply.
        assert_eq!(
            p.classify(&view(SharingClass::FalseSharing, 5, 0)),
            Severity::Warning
        );
    }

    #[test]
    fn registry_resolves_builtin_and_custom() {
        assert!(policy_by_name("threshold").is_some());
        assert!(policy_by_name("nope").is_none());

        struct AlwaysError;
        impl Policy for AlwaysError {
            fn name(&self) -> &str {
                "always-error"
            }
            fn classify(&self, _: &FindingView<'_>) -> Severity {
                Severity::Error
            }
        }
        register_policy(Arc::new(AlwaysError));
        let p = policy_by_name("always-error").unwrap();
        assert_eq!(
            p.classify(&view(SharingClass::TrueSharing, 0, 0)),
            Severity::Error
        );
        assert!(policy_names().contains(&"always-error".to_string()));
    }
}
