//! Self-contained HTML reporter: one file, no external assets, suitable
//! for CI artifact upload and "open in browser" triage.
//!
//! The page leads with the policy verdict (gate status, counts by
//! severity), then renders one card per finding — severity badge,
//! suppression/baseline flags, the measurements, and the fix suggestions
//! from [`predator_core::fixes`] — each anchored by its callsite key so
//! links like `report.html#observed|global:x` land on the finding.

use std::collections::BTreeMap;

use predator_core::{suggest_fixes, CacheGeometry, Report, SiteKind};

use crate::engine::Evaluation;
use crate::severity::Severity;

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

const STYLE: &str = "\
body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;padding:0 1rem;color:#1a1a1a}\
h1{font-size:1.4rem}h2{font-size:1.05rem;margin:0 0 .4rem}\
.gate{padding:.6rem 1rem;border-radius:6px;font-weight:600;margin:1rem 0}\
.gate.pass{background:#e6f4ea;color:#137333}.gate.fail{background:#fce8e6;color:#a50e0e}\
.card{border:1px solid #ddd;border-radius:8px;padding:1rem;margin:1rem 0}\
.badge{display:inline-block;padding:.1rem .55rem;border-radius:999px;font-size:.78rem;font-weight:600;margin-right:.4rem}\
.badge.error{background:#fce8e6;color:#a50e0e}.badge.warning{background:#fef7e0;color:#b06000}\
.badge.info{background:#e8f0fe;color:#1a56b4}.badge.flag{background:#eee;color:#555}\
table{border-collapse:collapse;margin:.5rem 0}td,th{border:1px solid #ddd;padding:.25rem .6rem;text-align:left;font-size:.85rem}\
.key{font-family:ui-monospace,monospace;font-size:.8rem;color:#666}\
.fix{background:#f6f8fa;border-left:3px solid #1a56b4;padding:.4rem .7rem;margin:.4rem 0;font-size:.88rem}\
";

/// Renders the evaluated report as one self-contained HTML page. `eval`
/// must come from evaluating the same `report`.
pub fn to_html(report: &Report, eval: &Evaluation, geom: CacheGeometry) -> String {
    let mut fixes: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, fix) in suggest_fixes(report, geom) {
        fixes.entry(idx).or_default().push(fix.to_string());
    }

    let count = |sev: Severity| eval.decisions.iter().filter(|d| d.severity == sev).count();
    let suppressed = eval.decisions.iter().filter(|d| d.suppressed).count();
    let baselined = eval.decisions.iter().filter(|d| d.baselined).count();

    let mut page = String::with_capacity(4096);
    page.push_str("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    page.push_str("<title>PREDATOR report</title>\n<style>");
    page.push_str(STYLE);
    page.push_str("</style>\n</head>\n<body>\n");
    page.push_str("<h1>PREDATOR false-sharing report</h1>\n");

    let (gate_class, gate_text) = if eval.fail_on.is_none() {
        (
            "pass",
            format!("Gate disabled — {}", escape(&eval.gate_summary())),
        )
    } else if eval.gate_failed() {
        (
            "fail",
            format!("GATE FAILED — {}", escape(&eval.gate_summary())),
        )
    } else {
        (
            "pass",
            format!("Gate passed — {}", escape(&eval.gate_summary())),
        )
    };
    page.push_str(&format!(
        "<div class=\"gate {gate_class}\">{gate_text}</div>\n"
    ));
    page.push_str(&format!(
        "<p>{} finding(s) — {} error, {} warning, {} info; {} suppressed, {} baselined. Policy: <code>{}</code>.</p>\n",
        report.findings.len(),
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
        suppressed,
        baselined,
        escape(&eval.policy_name),
    ));

    if report.findings.is_empty() {
        page.push_str("<p>No findings. 🎉</p>\n");
    }

    for (i, finding) in report.findings.iter().enumerate() {
        let d = &eval.decisions[i];
        page.push_str(&format!("<div class=\"card\" id=\"{}\">\n", escape(&d.key)));
        page.push_str(&format!(
            "<h2>{} <span class=\"key\">{}</span></h2>\n",
            escape(&finding.class.to_string()),
            escape(&d.key),
        ));
        page.push_str(&format!(
            "<p><span class=\"badge {sev}\">{sev}</span>",
            sev = d.severity.as_str()
        ));
        if d.suppressed {
            page.push_str("<span class=\"badge flag\">suppressed</span>");
        }
        if d.baselined {
            page.push_str("<span class=\"badge flag\">baselined</span>");
        }
        if d.gating {
            page.push_str("<span class=\"badge error\">gating</span>");
        }
        page.push_str("</p>\n");

        let site = match &finding.object.site {
            SiteKind::Heap { callsite, .. } => callsite
                .frames
                .first()
                .map(|fr| format!("heap object allocated at {fr}"))
                .unwrap_or_else(|| "heap object (no callsite)".to_string()),
            SiteKind::Global { name } => format!("global variable <code>{}</code>", escape(name)),
            SiteKind::Unknown => "unattributed memory region".to_string(),
        };
        page.push_str(&format!(
            "<p>{site}, {} bytes at {:#x}. Detection: {}.</p>\n",
            finding.object.size,
            finding.object.start,
            escape(&finding.kind.to_string()),
        ));
        page.push_str(&format!(
            "<table><tr><th>invalidations</th><th>accesses</th><th>writes</th></tr>\
             <tr><td>{}</td><td>{}</td><td>{}</td></tr></table>\n",
            finding.invalidations, finding.accesses, finding.writes
        ));
        for fix in fixes.get(&i).map(|v| v.as_slice()).unwrap_or(&[]) {
            page.push_str(&format!("<div class=\"fix\">{}</div>\n", escape(fix)));
        }
        if let Some(v) = &finding.verified {
            let badge = match v.verdict {
                predator_core::FixVerdict::Fixes => "info",
                predator_core::FixVerdict::Partial => "warning",
                predator_core::FixVerdict::Ineffective => "error",
            };
            page.push_str(&format!(
                "<div class=\"fix\"><span class=\"badge {badge}\">{}</span> \
                 Verified by replay ({} pad bytes): {}</div>\n",
                escape(&v.verdict.to_string()),
                v.pad_bytes,
                escape(&v.fix),
            ));
            page.push_str(
                "<table><tr><th>line size</th><th>before</th><th>after</th>\
                 <th>% removed</th><th>MESI before</th><th>MESI after</th></tr>",
            );
            for d in &v.deltas {
                page.push_str(&format!(
                    "<tr><td>{} B</td><td>{}</td><td>{}</td><td>{}%</td><td>{}</td><td>{}</td></tr>",
                    d.line_size,
                    d.before,
                    d.after,
                    d.pct_removed(),
                    d.mesi_before,
                    d.mesi_after
                ));
            }
            page.push_str("</table>\n");
        }
        page.push_str("</div>\n");
    }

    page.push_str("</body>\n</html>\n");
    page
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate_report, PolicyConfig};
    use predator_core::{Callsite, DetectorConfig, Frame, Session};

    fn report() -> Report {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        for (file, line) in [("alpha.rs", 3u32), ("beta.rs", 9)] {
            let obj = s
                .malloc(t0, 64, Callsite::from_frames(vec![Frame::new(file, line)]))
                .unwrap();
            for i in 0..500u64 {
                s.write::<u64>(t0, obj.start, i);
                s.write::<u64>(t1, obj.start + 8, i);
            }
        }
        s.report()
    }

    #[test]
    fn every_finding_key_renders_as_an_anchor() {
        let r = report();
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let html = to_html(&r, &eval, CacheGeometry::default());
        assert!(html.starts_with("<!doctype html>"));
        for d in &eval.decisions {
            assert!(
                html.contains(&format!("id=\"{}\"", escape(&d.key))),
                "missing anchor for {}",
                d.key
            );
        }
    }

    #[test]
    fn verified_fix_renders_a_delta_table() {
        use predator_core::{FixVerdict, GeometryDelta, VerifiedFix};
        let mut r = report();
        r.findings[0].verified = Some(VerifiedFix {
            fix: "pad the object".into(),
            pad_bytes: 512,
            deltas: vec![GeometryDelta {
                line_size: 64,
                before: 100,
                after: 3,
                mesi_before: 80,
                mesi_after: 2,
            }],
            verdict: FixVerdict::Fixes,
        });
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let html = to_html(&r, &eval, CacheGeometry::default());
        assert!(
            html.contains("Verified by replay (512 pad bytes)"),
            "{html}"
        );
        assert!(html.contains("<th>MESI before</th>"), "{html}");
        assert!(html.contains("<td>97%</td>"), "{html}");
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let r = report();
        let eval = evaluate_report(&r, &PolicyConfig::default());
        let html = to_html(&r, &eval, CacheGeometry::default());
        // No external assets: no src= or href= pointing off-page.
        assert!(!html.contains("http://"), "external asset in {html}");
        assert!(html.contains("<style>"));
        assert!(escape("<&>\"'") == "&lt;&amp;&gt;&quot;&#39;");
    }
}
