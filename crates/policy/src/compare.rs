//! The shared comparison engine: one tolerance-banded fold that every
//! baseline-vs-current comparison in the workspace routes through.
//!
//! Report diffs (`predator diff`), fleet trend deltas (`fleet trend`),
//! policy baseline diffs (`baseline diff`), and bench telemetry gates
//! (`bench-diff`) are all the same computation: two keyed numeric
//! snapshots, a relative tolerance band, and a direction that says which
//! way "worse" points. The callers differ only in how they key their
//! values and how they print the classified entries — so classification
//! lives here, once, and each caller keeps its historical output format
//! byte for byte.

use std::collections::BTreeMap;

/// How one key moved between the old and new snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delta {
    /// Present only in the new snapshot.
    Added,
    /// Present only in the old snapshot.
    Removed,
    /// Value grew beyond the tolerance band.
    Increased,
    /// Value shrank beyond the tolerance band.
    Decreased,
    /// Within tolerance.
    Steady,
}

/// One key's classified movement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEntry<K> {
    /// The key, as the caller indexed it.
    pub key: K,
    /// Classification.
    pub delta: Delta,
    /// Old value (0 for [`Delta::Added`]).
    pub before: f64,
    /// New value (0 for [`Delta::Removed`]).
    pub after: f64,
}

/// Classifies a value present in both snapshots against the relative
/// tolerance band `[before·(1−t), before·(1+t)]`; strictly outside is
/// [`Delta::Increased`]/[`Delta::Decreased`], inside is [`Delta::Steady`].
pub fn classify(before: f64, after: f64, tolerance: f64) -> Delta {
    if after > before * (1.0 + tolerance) {
        Delta::Increased
    } else if after < before * (1.0 - tolerance) {
        Delta::Decreased
    } else {
        Delta::Steady
    }
}

/// Folds two keyed snapshots into classified entries: every key of `new`
/// first (in key order — added and in-both entries), then keys only `old`
/// has (in key order — removed entries). Callers that want a different
/// presentation order re-sort; callers that iterate in key order (report
/// diffs) get their historical ordering for free.
pub fn compare_maps<K: Ord + Clone>(
    old: &BTreeMap<K, f64>,
    new: &BTreeMap<K, f64>,
    tolerance: f64,
) -> Vec<DeltaEntry<K>> {
    let mut out = Vec::with_capacity(new.len() + old.len());
    for (key, &after) in new {
        let entry = match old.get(key) {
            None => DeltaEntry {
                key: key.clone(),
                delta: Delta::Added,
                before: 0.0,
                after,
            },
            Some(&before) => DeltaEntry {
                key: key.clone(),
                delta: classify(before, after, tolerance),
                before,
                after,
            },
        };
        out.push(entry);
    }
    for (key, &before) in old {
        if !new.contains_key(key) {
            out.push(DeltaEntry {
                key: key.clone(),
                delta: Delta::Removed,
                before,
                after: 0.0,
            });
        }
    }
    out
}

/// Which way "worse" points for a compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Times, memory, loss counters: growth is a regression.
    HigherIsWorse,
    /// Rates, throughputs, speedups: shrinkage is a regression.
    LowerIsWorse,
    /// Counts and sizes of inputs: shown, never gated.
    Informational,
}

/// Infers the gating direction of a discovered metric from the last
/// segment of its `/`-joined key path — the suffix heuristics `bench-diff`
/// applies to schemas it has no type for.
pub fn direction_for_key(path: &str) -> Direction {
    let leaf = path.rsplit('/').next().unwrap_or(path);
    let higher_is_worse = leaf.ends_with("_ns")
        || leaf.ends_with("_ms")
        || leaf.ends_with("_kb")
        || leaf.contains("wall")
        || leaf.contains("rss")
        || leaf.contains("lost")
        || leaf.contains("skipped")
        || leaf.contains("truncated");
    let lower_is_worse =
        leaf.contains("per_s") || leaf.contains("throughput") || leaf.contains("speedup");
    if higher_is_worse {
        Direction::HigherIsWorse
    } else if lower_is_worse {
        Direction::LowerIsWorse
    } else {
        Direction::Informational
    }
}

/// Signed regression fraction for one metric, positive = worse. An
/// [`Direction::Informational`] metric reports its raw relative change
/// (the same sign convention as higher-is-worse) purely for display.
pub fn regression(direction: Direction, old: f64, new: f64) -> f64 {
    match direction {
        Direction::HigherIsWorse | Direction::Informational => new / old.max(1e-9) - 1.0,
        Direction::LowerIsWorse => 1.0 - new / old.max(1e-9),
    }
}

/// Gates one metric: the signed regression fraction plus whether it failed
/// (strictly beyond tolerance; informational metrics never fail).
pub fn gate_metric(direction: Direction, old: f64, new: f64, tolerance: f64) -> (f64, bool) {
    let r = regression(direction, old, new);
    let failed = direction != Direction::Informational && r > tolerance;
    (r, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn classify_uses_a_strict_band() {
        assert_eq!(classify(100.0, 151.0, 0.5), Delta::Increased);
        assert_eq!(classify(100.0, 150.0, 0.5), Delta::Steady);
        assert_eq!(classify(100.0, 50.0, 0.5), Delta::Steady);
        assert_eq!(classify(100.0, 49.0, 0.5), Delta::Decreased);
        // A zero baseline flags any growth and tolerates exact zero.
        assert_eq!(classify(0.0, 1.0, 0.5), Delta::Increased);
        assert_eq!(classify(0.0, 0.0, 0.5), Delta::Steady);
    }

    #[test]
    fn compare_maps_orders_new_keys_then_removed() {
        let old = map(&[("b", 100.0), ("gone", 5.0)]);
        let new = map(&[("a", 7.0), ("b", 100.0)]);
        let got = compare_maps(&old, &new, 0.5);
        let shape: Vec<(&str, Delta)> = got.iter().map(|e| (e.key.as_str(), e.delta)).collect();
        assert_eq!(
            shape,
            vec![
                ("a", Delta::Added),
                ("b", Delta::Steady),
                ("gone", Delta::Removed),
            ]
        );
        assert_eq!(got[0].before, 0.0);
        assert_eq!(got[2].after, 0.0);
    }

    /// The suffix-direction matrix `bench-diff` relies on (the previously
    /// untested heuristics): one row per suffix family, both polarities,
    /// and the informational fallback.
    #[test]
    fn direction_suffix_matrix() {
        use Direction::*;
        let cases: &[(&str, Direction)] = &[
            // higher-is-worse: times...
            ("hot_path/tracked_write_ns", HigherIsWorse),
            ("merge_wall_ms", HigherIsWorse),
            ("workload/histogram/wall_ms", HigherIsWorse),
            ("wall_clock_seconds", HigherIsWorse),
            // ...memory...
            ("peak_rss_kb", HigherIsWorse),
            ("rss_bytes", HigherIsWorse),
            // ...and loss accounting.
            ("loss/records_lost", HigherIsWorse),
            ("loss/chunks_skipped", HigherIsWorse),
            ("loss/truncated_files", HigherIsWorse),
            // lower-is-worse: rates, throughputs, speedups.
            ("ingest_mevents_per_s", LowerIsWorse),
            ("workload/histogram/throughput_maccess_s", LowerIsWorse),
            ("scaling/speedup_8t", LowerIsWorse),
            // informational: counts and input sizes never gate.
            ("events", Informational),
            ("workload/histogram/iters", Informational),
            ("findings", Informational),
        ];
        for (path, want) in cases {
            assert_eq!(direction_for_key(path), *want, "path {path}");
        }
        // Only the leaf segment is inspected: a directory named `rss/` does
        // not make a count a memory metric.
        assert_eq!(direction_for_key("rss/events"), Informational);
    }

    #[test]
    fn regression_sign_follows_direction() {
        // Time doubled: +100% regression. Throughput halved: +50%.
        assert!((regression(Direction::HigherIsWorse, 10.0, 20.0) - 1.0).abs() < 1e-9);
        assert!((regression(Direction::LowerIsWorse, 10.0, 5.0) - 0.5).abs() < 1e-9);
        // Improvements are negative in both directions.
        assert!(regression(Direction::HigherIsWorse, 20.0, 10.0) < 0.0);
        assert!(regression(Direction::LowerIsWorse, 5.0, 10.0) < 0.0);
    }

    #[test]
    fn gate_metric_never_fails_informational() {
        let (r, failed) = gate_metric(Direction::Informational, 100.0, 10_000.0, 0.1);
        assert!(r > 0.1);
        assert!(!failed);
        let (_, failed) = gate_metric(Direction::HigherIsWorse, 100.0, 10_000.0, 0.1);
        assert!(failed);
        // Exactly at tolerance passes (strict comparison; 125/100−1 is an
        // exact 0.25 in binary floating point).
        let (_, failed) = gate_metric(Direction::HigherIsWorse, 100.0, 125.0, 0.25);
        assert!(!failed);
    }

    #[test]
    fn gate_matches_band_classification() {
        // The band fold and the regression gate agree: a metric fails the
        // gate exactly when classify() would call it Increased (for
        // higher-is-worse) or Decreased (for lower-is-worse).
        for &(old, new) in &[(100.0, 151.0), (100.0, 150.0), (100.0, 49.0), (0.0, 3.0)] {
            let up = classify(old, new, 0.5) == Delta::Increased;
            let (_, gated) = gate_metric(Direction::HigherIsWorse, old, new, 0.5);
            assert_eq!(up, gated, "old={old} new={new}");
            let down = classify(old, new, 0.5) == Delta::Decreased;
            let (_, gated) = gate_metric(Direction::LowerIsWorse, old, new, 0.5);
            assert_eq!(down, gated, "old={old} new={new}");
        }
    }
}
