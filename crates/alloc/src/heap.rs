//! [`TrackedHeap`]: the detector-facing allocator.
//!
//! Combines the layers of [`crate::layers`] into the paper's allocator
//! (§2.3.2): per-thread heaps over disjoint segments (Hoard-style isolation),
//! callsite interception on every allocation, a live-object registry for
//! address→object attribution in reports, and the two reuse rules —
//! metadata refresh on free and a quarantine for objects involved in false
//! sharing, which "are never reused".

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use serde::{Deserialize, Serialize};

use predator_sim::ThreadId;

use crate::callsite::{Callsite, CallsiteId, CallsiteTable};
use crate::layers::{SegmentChunks, SegmentSource, SizeClassLayer, MAX_SMALL};

/// Metadata for one live (or just-freed) heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// First simulated address of the object.
    pub start: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Actual (rounded-up) size handed out.
    pub usable: u64,
    /// Interned allocation callsite.
    pub callsite: CallsiteId,
    /// Thread that allocated the object.
    pub owner: ThreadId,
    /// Monotone allocation sequence number (for deterministic debugging).
    pub seq: u64,
}

impl ObjectInfo {
    /// One-past-the-last address of the object's usable range.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.usable
    }

    /// True if `addr` falls inside the object's usable range.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The fixed-size simulated heap is exhausted.
    OutOfMemory,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("simulated heap exhausted"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Result of a successful `free`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeOutcome {
    /// The object that was freed (registry entry at free time).
    pub info: ObjectInfo,
    /// Whether the block was returned to a free list. Quarantined objects
    /// (involved in false sharing) and large objects are never recycled.
    pub recycled: bool,
}

/// Why a free failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// `addr` is not the start of any live object.
    UnknownObject(u64),
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreeError::UnknownObject(a) => {
                write!(f, "free of address {a:#x} which is not a live object start")
            }
        }
    }
}

impl std::error::Error for FreeError {}

/// Default segment size carved per thread (64 KiB, line-multiple).
pub const DEFAULT_SEGMENT: u64 = 64 << 10;

/// Point-in-time allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Threads with a heap (registered via allocation).
    pub threads: usize,
    /// Currently live objects.
    pub live_objects: usize,
    /// Usable bytes currently live.
    pub live_bytes: u64,
    /// Total usable bytes ever handed out.
    pub allocated_bytes: u64,
    /// Quarantined (never-reusable) object starts.
    pub quarantined: usize,
    /// Blocks parked in per-thread free lists.
    pub cached_blocks: usize,
    /// Bytes of heap region not yet carved into segments.
    pub uncarved_bytes: u64,
}

/// The per-thread-heap allocator with callsite tracking.
pub struct TrackedHeap {
    line_size: u64,
    shared: Arc<Mutex<SegmentSource>>,
    /// Per-thread size-class heaps, indexed by `ThreadId`.
    threads: RwLock<Vec<Arc<Mutex<SizeClassLayer<SegmentChunks>>>>>,
    /// Live objects by start address.
    live: Mutex<BTreeMap<u64, ObjectInfo>>,
    /// Start addresses that must never be recycled (false sharing observed).
    quarantine: Mutex<HashSet<u64>>,
    callsites: CallsiteTable,
    seq: AtomicU64,
    allocated_bytes: AtomicU64,
    freed_bytes: AtomicU64,
}

impl TrackedHeap {
    /// Creates a heap over the simulated range `[base, base + size)`.
    ///
    /// `base` must be line-aligned; `segment` is the per-thread carve size.
    pub fn new(base: u64, size: u64, line_size: u64, segment: u64) -> Self {
        let shared = Arc::new(Mutex::new(SegmentSource::new(
            base,
            base + size,
            segment,
            line_size,
        )));
        TrackedHeap {
            line_size,
            shared,
            threads: RwLock::new(Vec::new()),
            live: Mutex::new(BTreeMap::new()),
            quarantine: Mutex::new(HashSet::new()),
            callsites: CallsiteTable::new(),
            seq: AtomicU64::new(0),
            allocated_bytes: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
        }
    }

    /// Cache line size the heap isolates threads by.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// The callsite interner (shared with the reporter).
    pub fn callsites(&self) -> &CallsiteTable {
        &self.callsites
    }

    fn thread_heap(&self, tid: ThreadId) -> Arc<Mutex<SizeClassLayer<SegmentChunks>>> {
        {
            let threads = self.threads.read().unwrap();
            if let Some(h) = threads.get(tid.index()) {
                return h.clone();
            }
        }
        let mut threads = self.threads.write().unwrap();
        while threads.len() <= tid.index() {
            let chunks = SegmentChunks::new(self.shared.clone());
            threads.push(Arc::new(Mutex::new(SizeClassLayer::new(
                chunks,
                self.line_size,
            ))));
        }
        threads[tid.index()].clone()
    }

    /// Allocates `size` bytes on behalf of `tid`, recording `callsite`.
    ///
    /// Small requests (≤ 16 KiB) come from the thread's own segments; larger
    /// ones take a dedicated line-aligned span.
    pub fn malloc(
        &self,
        tid: ThreadId,
        size: u64,
        callsite: Callsite,
    ) -> Result<ObjectInfo, AllocError> {
        let cs = self.callsites.intern(callsite);
        let (start, usable) = if size <= MAX_SMALL {
            let heap = self.thread_heap(tid);
            let mut heap = heap.lock().unwrap();
            let addr = heap.alloc(size.max(1)).ok_or(AllocError::OutOfMemory)?;
            (
                addr,
                SizeClassLayer::<SegmentChunks>::usable_size(size.max(1)),
            )
        } else {
            let (s, e) = self
                .shared
                .lock()
                .unwrap()
                .take_span(size)
                .ok_or(AllocError::OutOfMemory)?;
            (s, e - s)
        };
        let info = ObjectInfo {
            start,
            size,
            usable,
            callsite: cs,
            owner: tid,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        self.live.lock().unwrap().insert(start, info);
        self.allocated_bytes.fetch_add(usable, Ordering::Relaxed);
        predator_obs::static_counter!("alloc_mallocs_total").inc();
        predator_obs::static_histogram!("alloc_size_bytes").record(size);
        predator_obs::static_gauge!("alloc_live_bytes").add(usable as i64);
        Ok(info)
    }

    /// Frees the object starting at `addr`.
    ///
    /// The block is returned to the *owning* thread's free list (Hoard-style)
    /// so recycling can never mix two threads' objects on one line —
    /// regardless of which thread calls `free`. Quarantined and large objects
    /// are not recycled.
    pub fn free(&self, _tid: ThreadId, addr: u64) -> Result<FreeOutcome, FreeError> {
        let info = self
            .live
            .lock()
            .unwrap()
            .remove(&addr)
            .ok_or(FreeError::UnknownObject(addr))?;
        self.freed_bytes.fetch_add(info.usable, Ordering::Relaxed);
        let quarantined = self.quarantine.lock().unwrap().contains(&addr);
        let recycled = !quarantined && info.size <= MAX_SMALL;
        if recycled {
            let heap = self.thread_heap(info.owner);
            heap.lock().unwrap().free(addr, info.size.max(1));
        }
        predator_obs::static_counter!("alloc_frees_total").inc();
        predator_obs::static_gauge!("alloc_live_bytes").add(-(info.usable as i64));
        Ok(FreeOutcome { info, recycled })
    }

    /// Marks the object at `start` as involved in false sharing: it will
    /// never be recycled (§2.3.2's pseudo-false-sharing rule).
    pub fn mark_no_reuse(&self, start: u64) {
        predator_obs::static_counter!("alloc_quarantined_total").inc();
        self.quarantine.lock().unwrap().insert(start);
    }

    /// True if the object at `start` is quarantined.
    pub fn is_quarantined(&self, start: u64) -> bool {
        self.quarantine.lock().unwrap().contains(&start)
    }

    /// Finds the live object containing `addr`, if any.
    pub fn object_at(&self, addr: u64) -> Option<ObjectInfo> {
        let live = self.live.lock().unwrap();
        let (_, info) = live.range(..=addr).next_back()?;
        info.contains(addr).then_some(*info)
    }

    /// Snapshot of all live objects, in address order.
    pub fn live_objects(&self) -> Vec<ObjectInfo> {
        self.live.lock().unwrap().values().copied().collect()
    }

    /// Total usable bytes handed out since creation.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes.load(Ordering::Relaxed)
    }

    /// Usable bytes currently live (allocated − freed).
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes() - self.freed_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of the heap region not yet carved into thread segments or
    /// handed to large objects — the address space this heap can still
    /// consume. Segment carving and quarantine are never undone, so this
    /// only decreases over a heap's lifetime; it is the right exhaustion
    /// predictor for long-lived sessions (usable-byte counters miss
    /// carving waste entirely).
    pub fn uncarved_bytes(&self) -> u64 {
        self.shared.lock().unwrap().remaining()
    }

    /// Resolves an interned callsite id.
    pub fn resolve_callsite(&self, id: CallsiteId) -> Option<Callsite> {
        self.callsites.resolve(id)
    }

    /// Point-in-time statistics (threads, live objects/bytes, quarantine,
    /// free-list population, uncarved heap).
    pub fn stats(&self) -> HeapStats {
        let threads = self.threads.read().unwrap();
        let cached_blocks = threads
            .iter()
            .map(|h| h.lock().unwrap().cached_blocks())
            .sum();
        HeapStats {
            threads: threads.len(),
            live_objects: self.live.lock().unwrap().len(),
            live_bytes: self.live_bytes(),
            allocated_bytes: self.allocated_bytes(),
            quarantined: self.quarantine.lock().unwrap().len(),
            cached_blocks,
            uncarved_bytes: self.uncarved_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callsite::Frame;
    use std::collections::HashSet as Set;

    const BASE: u64 = 0x4000_0000;

    fn heap() -> TrackedHeap {
        TrackedHeap::new(BASE, 8 << 20, 64, DEFAULT_SEGMENT)
    }

    fn site(line: u32) -> Callsite {
        Callsite::from_frames(vec![Frame::new("test.rs", line)])
    }

    #[test]
    fn malloc_returns_distinct_objects() {
        let h = heap();
        let a = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        let b = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        assert_ne!(a.start, b.start);
        assert!(a.start >= BASE);
        assert_eq!(a.usable, 64);
        assert_eq!(a.size, 64);
    }

    #[test]
    fn different_threads_never_share_a_line() {
        let h = heap();
        let mut lines: Vec<Set<u64>> = vec![Set::new(); 4];
        for round in 0..100 {
            for t in 0..4u16 {
                let size = 8 + (round % 7) * 8;
                let o = h.malloc(ThreadId(t), size as u64, site(1)).unwrap();
                for l in o.start / 64..=(o.end() - 1) / 64 {
                    lines[t as usize].insert(l);
                }
            }
        }
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(
                    lines[i].is_disjoint(&lines[j]),
                    "threads {i} and {j} share a cache line"
                );
            }
        }
    }

    #[test]
    fn object_attribution_by_interior_address() {
        let h = heap();
        let o = h.malloc(ThreadId(1), 200, site(42)).unwrap();
        let hit = h.object_at(o.start + 100).unwrap();
        assert_eq!(hit.start, o.start);
        let cs = h.resolve_callsite(hit.callsite).unwrap();
        assert_eq!(cs.frames[0].line, 42);
        // Just past the end: not attributed.
        assert_ne!(h.object_at(o.end()).map(|i| i.start), Some(o.start));
    }

    #[test]
    fn attribution_misses_below_first_object() {
        let h = heap();
        h.malloc(ThreadId(0), 64, site(1)).unwrap();
        assert!(h.object_at(BASE - 1).is_none());
    }

    #[test]
    fn free_recycles_to_owner_thread() {
        let h = heap();
        let o = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        // Thread 1 frees thread 0's object…
        let out = h.free(ThreadId(1), o.start).unwrap();
        assert!(out.recycled);
        // …and the block returns to thread 0's free list, not thread 1's.
        let again0 = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        assert_eq!(again0.start, o.start, "owner thread recycles the block");
    }

    #[test]
    fn cross_thread_free_does_not_leak_line_to_other_thread() {
        let h = heap();
        let o = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        h.free(ThreadId(1), o.start).unwrap();
        let other = h.malloc(ThreadId(1), 64, site(1)).unwrap();
        assert_ne!(other.start / 64, o.start / 64);
    }

    #[test]
    fn quarantined_objects_are_never_recycled() {
        let h = heap();
        let o = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        h.mark_no_reuse(o.start);
        assert!(h.is_quarantined(o.start));
        let out = h.free(ThreadId(0), o.start).unwrap();
        assert!(!out.recycled);
        let next = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        assert_ne!(next.start, o.start);
    }

    #[test]
    fn double_free_is_reported() {
        let h = heap();
        let o = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        h.free(ThreadId(0), o.start).unwrap();
        assert_eq!(
            h.free(ThreadId(0), o.start),
            Err(FreeError::UnknownObject(o.start))
        );
    }

    #[test]
    fn unknown_free_is_reported() {
        let h = heap();
        assert_eq!(
            h.free(ThreadId(0), 0xdead),
            Err(FreeError::UnknownObject(0xdead))
        );
    }

    #[test]
    fn large_objects_take_dedicated_spans() {
        let h = heap();
        let big = h.malloc(ThreadId(0), 100_000, site(1)).unwrap();
        assert_eq!(big.start % 64, 0);
        assert!(big.usable >= 100_000);
        let small = h.malloc(ThreadId(0), 8, site(1)).unwrap();
        assert!(!big.contains(small.start));
        // Large objects are not recycled.
        let out = h.free(ThreadId(0), big.start).unwrap();
        assert!(!out.recycled);
    }

    #[test]
    fn zero_size_allocation_gets_a_slot() {
        let h = heap();
        let o = h.malloc(ThreadId(0), 0, site(1)).unwrap();
        assert_eq!(o.usable, 8);
    }

    #[test]
    fn out_of_memory_small_path() {
        // One segment total: thread 0 claims it; thread 1 has nowhere to go.
        let h = TrackedHeap::new(BASE, 4096, 64, 4096);
        h.malloc(ThreadId(0), 8, site(1)).unwrap();
        assert_eq!(
            h.malloc(ThreadId(1), 8, site(1)).unwrap_err(),
            AllocError::OutOfMemory
        );
    }

    #[test]
    fn out_of_memory_large_path() {
        let h = TrackedHeap::new(BASE, 8192, 64, 8192);
        let a = h.malloc(ThreadId(0), 100_000, site(1));
        assert_eq!(a.unwrap_err(), AllocError::OutOfMemory);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let h = heap();
        let a = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        let _b = h.malloc(ThreadId(1), 128, site(2)).unwrap();
        let s = h.stats();
        assert_eq!(s.threads, 2);
        assert_eq!(s.live_objects, 2);
        assert_eq!(s.live_bytes, 64 + 128);
        assert_eq!(s.quarantined, 0);
        assert_eq!(s.cached_blocks, 0);
        h.mark_no_reuse(a.start);
        h.free(ThreadId(0), a.start).unwrap();
        let s = h.stats();
        assert_eq!(s.live_objects, 1);
        assert_eq!(s.quarantined, 1);
        assert_eq!(
            s.cached_blocks, 0,
            "quarantined blocks never hit free lists"
        );
        let c = h.malloc(ThreadId(1), 8, site(3)).unwrap();
        h.free(ThreadId(1), c.start).unwrap();
        assert_eq!(h.stats().cached_blocks, 1);
        assert!(h.stats().uncarved_bytes < 8 << 20);
    }

    #[test]
    fn byte_accounting_tracks_live_bytes() {
        let h = heap();
        let o = h.malloc(ThreadId(0), 64, site(1)).unwrap();
        assert_eq!(h.allocated_bytes(), 64);
        assert_eq!(h.live_bytes(), 64);
        h.free(ThreadId(0), o.start).unwrap();
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn live_objects_snapshot_is_sorted() {
        let h = heap();
        for _ in 0..10 {
            h.malloc(ThreadId(0), 32, site(1)).unwrap();
        }
        let objs = h.live_objects();
        assert_eq!(objs.len(), 10);
        assert!(objs.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn concurrent_mallocs_stay_isolated() {
        let h = std::sync::Arc::new(heap());
        let all: Vec<Vec<ObjectInfo>> = std::thread::scope(|s| {
            (0..8u16)
                .map(|t| {
                    let h = h.clone();
                    s.spawn(move || {
                        (0..500)
                            .map(|i| h.malloc(ThreadId(t), 8 + (i % 5) * 16, site(1)).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|jh| jh.join().unwrap())
                .collect()
        });
        // Pairwise line disjointness across threads.
        let mut line_owner: std::collections::HashMap<u64, u16> = Default::default();
        for (t, objs) in all.iter().enumerate() {
            for o in objs {
                for l in o.start / 64..=(o.end() - 1) / 64 {
                    let prev = line_owner.insert(l, t as u16);
                    assert!(prev.is_none() || prev == Some(t as u16), "line {l} shared");
                }
            }
        }
    }
}
