//! Composable allocation layers (the Heap Layers analogue).
//!
//! The paper's allocator is "built with Heap Layers using a
//! 'per-thread-heap' mechanism similar to that used by Hoard" (§2.3.2).
//! Heap Layers composes allocators from small single-purpose templates; here
//! the same idea is expressed with generic Rust types:
//!
//! * [`BumpSource`] — the bottom layer: a monotone bump pointer over a fixed
//!   address range, with arbitrary power-of-two alignment;
//! * [`SegmentSource`] — carves whole line-multiple *segments* out of a bump
//!   source; per-thread heaps draw disjoint segments from it, which is what
//!   guarantees objects of different threads never share a cache line;
//! * [`SegmentChunks`] — a per-thread source that refills itself with
//!   segments from a shared [`SegmentSource`] behind a mutex (taken only on
//!   refill, so the common path is uncontended);
//! * [`SizeClassLayer`] — segregated power-of-two size classes with
//!   per-class free lists over any [`AllocSource`].
//!
//! Objects are always aligned to `min(size_class, line_size)`, so a
//! power-of-two-sized object never straddles a cache line it doesn't have to.

use std::sync::{Arc, Mutex};

/// Anything that can hand out aligned ranges of simulated addresses.
pub trait AllocSource {
    /// Allocates `size` bytes aligned to `align` (a power of two). Returns
    /// the starting simulated address or `None` when exhausted.
    fn alloc_aligned(&mut self, size: u64, align: u64) -> Option<u64>;
}

/// Bottom layer: bump allocation over `[next, end)`.
#[derive(Debug, Clone)]
pub struct BumpSource {
    next: u64,
    end: u64,
}

impl BumpSource {
    /// Creates a bump source over `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "inverted range");
        BumpSource { next: start, end }
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }

    /// The next address that would be returned (before alignment).
    pub fn cursor(&self) -> u64 {
        self.next
    }

    /// One-past-the-end of the range.
    pub fn end(&self) -> u64 {
        self.end
    }
}

impl AllocSource for BumpSource {
    fn alloc_aligned(&mut self, size: u64, align: u64) -> Option<u64> {
        debug_assert!(align.is_power_of_two());
        let start = (self.next + align - 1) & !(align - 1);
        let new_next = start.checked_add(size)?;
        if new_next > self.end {
            return None;
        }
        self.next = new_next;
        Some(start)
    }
}

/// Carves whole segments (line-multiple, fixed size) from a bump source.
///
/// Shared between threads behind a mutex; each segment belongs to exactly
/// one thread heap afterwards.
#[derive(Debug)]
pub struct SegmentSource {
    bump: BumpSource,
    segment_size: u64,
}

impl SegmentSource {
    /// Creates a segment source over `[start, end)` with `segment_size`-byte
    /// segments (must be a multiple of `line_size`; `start` must be
    /// line-aligned).
    pub fn new(start: u64, end: u64, segment_size: u64, line_size: u64) -> Self {
        assert!(segment_size >= line_size && segment_size.is_multiple_of(line_size));
        assert_eq!(start % line_size, 0, "segment region must be line-aligned");
        SegmentSource {
            bump: BumpSource::new(start, end),
            segment_size,
        }
    }

    /// Size of each carved segment.
    pub fn segment_size(&self) -> u64 {
        self.segment_size
    }

    /// Bytes not yet carved.
    pub fn remaining(&self) -> u64 {
        self.bump.remaining()
    }

    /// Takes one segment; returns its `[start, end)` range.
    pub fn take_segment(&mut self) -> Option<(u64, u64)> {
        let start = self
            .bump
            .alloc_aligned(self.segment_size, self.segment_size)?;
        Some((start, start + self.segment_size))
    }

    /// Takes a contiguous run big enough for `size` bytes (for large
    /// objects), rounded up to whole segments.
    pub fn take_span(&mut self, size: u64) -> Option<(u64, u64)> {
        let span = size.div_ceil(self.segment_size) * self.segment_size;
        let start = self.bump.alloc_aligned(span, self.segment_size)?;
        Some((start, start + span))
    }
}

/// Per-thread source: bump-allocates inside the thread's current segment and
/// refills from the shared [`SegmentSource`] when it runs dry.
#[derive(Debug)]
pub struct SegmentChunks {
    current: Option<BumpSource>,
    shared: Arc<Mutex<SegmentSource>>,
}

impl SegmentChunks {
    /// Creates an empty per-thread source backed by `shared`.
    pub fn new(shared: Arc<Mutex<SegmentSource>>) -> Self {
        SegmentChunks {
            current: None,
            shared,
        }
    }

    /// Access to the shared segment pool (for large allocations).
    pub fn shared(&self) -> &Arc<Mutex<SegmentSource>> {
        &self.shared
    }
}

impl AllocSource for SegmentChunks {
    fn alloc_aligned(&mut self, size: u64, align: u64) -> Option<u64> {
        if let Some(cur) = &mut self.current {
            if let Some(addr) = cur.alloc_aligned(size, align) {
                return Some(addr);
            }
        }
        // Refill with a fresh segment. Requests bigger than a segment must go
        // through `SegmentSource::take_span` at a higher layer.
        let (start, end) = self.shared.lock().unwrap().take_segment()?;
        let mut bump = BumpSource::new(start, end);
        let addr = bump.alloc_aligned(size, align);
        self.current = Some(bump);
        addr
    }
}

/// Number of segregated size classes: 8, 16, …, [`MAX_SMALL`].
pub const NUM_CLASSES: usize = 12;
/// Largest size served from size classes; bigger requests are "large".
pub const MAX_SMALL: u64 = 8 << (NUM_CLASSES - 1); // 16 KiB

/// Size-class index for a request of `size` bytes (`size ≤ MAX_SMALL`).
#[inline]
pub fn size_class(size: u64) -> usize {
    debug_assert!(size <= MAX_SMALL);
    let rounded = size.max(8).next_power_of_two();
    (rounded.trailing_zeros() - 3) as usize
}

/// Allocation size of class `idx`.
#[inline]
pub fn class_size(idx: usize) -> u64 {
    8 << idx
}

/// Segregated-fit layer: per-class free lists over an [`AllocSource`].
#[derive(Debug)]
pub struct SizeClassLayer<S> {
    source: S,
    free_lists: [Vec<u64>; NUM_CLASSES],
    line_size: u64,
}

impl<S: AllocSource> SizeClassLayer<S> {
    /// Wraps `source` with size-class free lists; `line_size` caps object
    /// alignment.
    pub fn new(source: S, line_size: u64) -> Self {
        SizeClassLayer {
            source,
            free_lists: Default::default(),
            line_size,
        }
    }

    /// Allocates a small object (`size ≤ MAX_SMALL`), preferring the free
    /// list. Returns the address; the usable size is the class size.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        let class = size_class(size);
        if let Some(addr) = self.free_lists[class].pop() {
            return Some(addr);
        }
        let csize = class_size(class);
        self.source.alloc_aligned(csize, csize.min(self.line_size))
    }

    /// Returns an object of `size` bytes at `addr` to its class free list.
    pub fn free(&mut self, addr: u64, size: u64) {
        self.free_lists[size_class(size)].push(addr);
    }

    /// Number of blocks currently cached in free lists.
    pub fn cached_blocks(&self) -> usize {
        self.free_lists.iter().map(Vec::len).sum()
    }

    /// The rounded allocation size a request of `size` bytes receives.
    pub fn usable_size(size: u64) -> u64 {
        class_size(size_class(size))
    }

    /// Access to the underlying source.
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bump_respects_alignment_and_bounds() {
        let mut b = BumpSource::new(0x1000, 0x1100);
        assert_eq!(b.alloc_aligned(8, 8), Some(0x1000));
        assert_eq!(b.alloc_aligned(8, 64), Some(0x1040));
        assert_eq!(b.remaining(), 0x1100 - 0x1048);
        // Exhaustion.
        assert_eq!(b.alloc_aligned(0x200, 8), None);
        // Exact fit.
        assert_eq!(b.alloc_aligned(0x1100 - 0x1048, 8), Some(0x1048));
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn bump_rejects_overflowing_requests() {
        let mut b = BumpSource::new(u64::MAX - 16, u64::MAX);
        assert_eq!(b.alloc_aligned(u64::MAX, 8), None);
    }

    #[test]
    fn segments_are_disjoint_and_aligned() {
        let mut s = SegmentSource::new(0, 1 << 20, 64 << 10, 64);
        let (a0, e0) = s.take_segment().unwrap();
        let (a1, _e1) = s.take_segment().unwrap();
        assert_eq!(e0, a1);
        assert_eq!(a0 % (64 << 10), 0);
        assert_eq!(s.remaining(), (1 << 20) - 2 * (64 << 10));
    }

    #[test]
    fn take_span_rounds_to_segments() {
        let mut s = SegmentSource::new(0, 1 << 20, 64 << 10, 64);
        let (start, end) = s.take_span(100_000).unwrap();
        assert_eq!(end - start, 128 << 10);
    }

    #[test]
    fn size_class_mapping() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(8), 0);
        assert_eq!(size_class(9), 1);
        assert_eq!(size_class(16), 1);
        assert_eq!(size_class(200), 5); // rounds to 256
        assert_eq!(class_size(5), 256);
        assert_eq!(size_class(MAX_SMALL), NUM_CLASSES - 1);
        assert_eq!(SizeClassLayer::<BumpSource>::usable_size(200), 256);
    }

    #[test]
    fn size_class_alloc_and_recycle() {
        let src = BumpSource::new(0, 1 << 16);
        let mut l = SizeClassLayer::new(src, 64);
        let a = l.alloc(24).unwrap(); // class 32
        let b = l.alloc(24).unwrap();
        assert_ne!(a, b);
        assert_eq!(a % 32, 0, "32-byte class aligned to 32");
        l.free(a, 24);
        assert_eq!(l.cached_blocks(), 1);
        let c = l.alloc(30).unwrap(); // same class → recycled
        assert_eq!(c, a);
        assert_eq!(l.cached_blocks(), 0);
    }

    #[test]
    fn large_class_aligned_to_line_not_size() {
        let src = BumpSource::new(0, 1 << 16);
        let mut l = SizeClassLayer::new(src, 64);
        let a = l.alloc(4096).unwrap();
        assert_eq!(a % 64, 0);
    }

    #[test]
    fn segment_chunks_refills_from_shared() {
        let shared = Arc::new(Mutex::new(SegmentSource::new(0, 1 << 20, 4096, 64)));
        let mut chunks = SegmentChunks::new(shared.clone());
        let a = chunks.alloc_aligned(64, 64).unwrap();
        // Fill the rest of the segment, forcing a refill.
        let mut last = a;
        for _ in 0..4096 / 64 {
            last = chunks.alloc_aligned(64, 64).unwrap();
        }
        assert!(last >= 4096, "second segment reached");
        assert_eq!(shared.lock().unwrap().remaining(), (1 << 20) - 2 * 4096);
    }

    #[test]
    fn two_chunk_users_never_share_a_line() {
        let shared = Arc::new(Mutex::new(SegmentSource::new(0, 1 << 20, 4096, 64)));
        let mut t0 = SegmentChunks::new(shared.clone());
        let mut t1 = SegmentChunks::new(shared);
        let mut lines0 = std::collections::HashSet::new();
        let mut lines1 = std::collections::HashSet::new();
        for _ in 0..200 {
            lines0.insert(t0.alloc_aligned(8, 8).unwrap() / 64);
            lines1.insert(t1.alloc_aligned(8, 8).unwrap() / 64);
        }
        assert!(
            lines0.is_disjoint(&lines1),
            "per-thread segments must isolate lines"
        );
    }

    proptest! {
        /// Bump allocations never overlap and never exceed bounds.
        #[test]
        fn prop_bump_disjoint(
            reqs in proptest::collection::vec((1u64..512, 0u32..7), 1..64)
        ) {
            let mut b = BumpSource::new(0x1000, 0x1000 + (1 << 16));
            let mut got: Vec<(u64, u64)> = Vec::new();
            for (size, ashift) in reqs {
                let align = 1u64 << ashift;
                if let Some(addr) = b.alloc_aligned(size, align) {
                    prop_assert_eq!(addr % align, 0);
                    prop_assert!(addr + size <= 0x1000 + (1 << 16));
                    for &(s, e) in &got {
                        prop_assert!(addr >= e || addr + size <= s, "overlap");
                    }
                    got.push((addr, addr + size));
                }
            }
        }

        /// A pow-2 object ≤ line size never straddles a line boundary.
        #[test]
        fn prop_small_objects_do_not_straddle(
            sizes in proptest::collection::vec(1u64..=64, 1..128)
        ) {
            let src = BumpSource::new(0, 1 << 20);
            let mut l = SizeClassLayer::new(src, 64);
            for size in sizes {
                let addr = l.alloc(size).unwrap();
                let usable = SizeClassLayer::<BumpSource>::usable_size(size);
                prop_assert_eq!(addr / 64, (addr + usable - 1) / 64,
                    "object [{:#x},{:#x}) straddles a line", addr, addr + usable);
            }
        }
    }
}
