//! # predator-alloc
//!
//! The custom memory allocator substrate of the PREDATOR false-sharing
//! detector (§2.3.2, "Custom Memory Allocation" and "Callsite Tracking for
//! Heap Objects").
//!
//! The paper builds its allocator with Heap Layers using a
//! "per-thread-heap" mechanism similar to Hoard, with two properties the
//! detector depends on:
//!
//! 1. **Isolation:** memory allocations from different threads never occupy
//!    the same physical cache line, so the allocator itself cannot *create*
//!    false sharing between objects — everything the detector flags comes
//!    from the application's own layout.
//! 2. **No pseudo false sharing from reuse:** detector metadata is refreshed
//!    when an object is freed, and objects involved in false sharing are
//!    never reused (quarantined), so accesses to two different logical
//!    objects that happen to recycle the same address are never conflated.
//!
//! This crate reproduces that design over the simulated address space of
//! `predator-shadow`:
//!
//! * [`layers`] — composable allocation layers in the Heap Layers spirit:
//!   a line-aligned [`layers::BumpSource`], a segregated
//!   [`layers::SizeClassLayer`], and the segment-carving
//!   [`layers::SegmentSource`] that hands whole line-multiple segments to
//!   per-thread heaps;
//! * [`callsite`] — allocation call-stack capture and interning (the
//!   `backtrace()` substitute), reported exactly like the paper's Figure 5;
//! * [`heap`] — [`heap::TrackedHeap`], the user-facing allocator:
//!   per-thread heaps, live-object registry for address→object attribution,
//!   free-time notification for metadata refresh, and the no-reuse
//!   quarantine.

pub mod callsite;
pub mod heap;
pub mod layers;

pub use callsite::{Callsite, CallsiteId, CallsiteTable, Frame};
pub use heap::{AllocError, FreeError, FreeOutcome, HeapStats, ObjectInfo, TrackedHeap};
