//! Allocation callsite capture and interning.
//!
//! "In order to precisely report the origins of heap objects with false
//! sharing problems, PREDATOR maintains detailed information so it can
//! report source code level information for each heap object. To obtain
//! callsite information, PREDATOR intercepts all memory allocations … and
//! relies on the `backtrace()` function" (§2.3.2).
//!
//! Our workloads are Rust functions, so instead of unwinding we capture
//! `file:line` frames explicitly: leaf frames via
//! [`std::panic::Location::caller`] (the [`Callsite::here`] constructor is
//! `#[track_caller]`), outer frames pushed by the workload where the paper's
//! reports show multi-frame stacks (e.g. Figure 5's
//! `./stddefines.h:53` / `./linear_regression-pthread.c:133`).
//!
//! Callsites are interned into dense [`CallsiteId`]s so per-object metadata
//! stays a single `u32`.

use std::collections::HashMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// One stack frame: source file and line.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Source file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl Frame {
    /// Creates a frame.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        Frame {
            file: file.into(),
            line,
        }
    }
}

impl std::fmt::Display for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// An allocation call stack, innermost frame first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Callsite {
    /// Frames, innermost (the allocation call itself) first.
    pub frames: Vec<Frame>,
}

impl Callsite {
    /// Captures the caller's location as a single-frame callsite.
    #[track_caller]
    pub fn here() -> Self {
        let loc = std::panic::Location::caller();
        Callsite {
            frames: vec![Frame::new(loc.file(), loc.line())],
        }
    }

    /// Builds a callsite from explicit frames (innermost first).
    pub fn from_frames(frames: Vec<Frame>) -> Self {
        Callsite { frames }
    }

    /// Returns this callsite with an outer frame appended (for multi-frame
    /// stacks like Figure 5's).
    pub fn with_outer(mut self, file: impl Into<String>, line: u32) -> Self {
        self.frames.push(Frame::new(file, line));
        self
    }

    /// An anonymous callsite for internal allocations.
    pub fn unknown() -> Self {
        Callsite {
            frames: vec![Frame::new("<unknown>", 0)],
        }
    }
}

impl std::fmt::Display for Callsite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for frame in &self.frames {
            writeln!(f, "{frame}")?;
        }
        Ok(())
    }
}

/// Dense identifier for an interned [`Callsite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CallsiteId(pub u32);

/// Thread-safe callsite interner.
///
/// Interning the same stack twice yields the same id; lookup by id is O(1).
#[derive(Debug, Default)]
pub struct CallsiteTable {
    inner: Mutex<TableInner>,
}

#[derive(Debug, Default)]
struct TableInner {
    by_site: HashMap<Callsite, CallsiteId>,
    sites: Vec<Callsite>,
}

impl CallsiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `site`, returning its dense id.
    pub fn intern(&self, site: Callsite) -> CallsiteId {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&id) = inner.by_site.get(&site) {
            return id;
        }
        let id = CallsiteId(inner.sites.len() as u32);
        inner.sites.push(site.clone());
        inner.by_site.insert(site, id);
        id
    }

    /// Returns the callsite for `id`, if it exists.
    pub fn resolve(&self, id: CallsiteId) -> Option<Callsite> {
        self.inner.lock().unwrap().sites.get(id.0 as usize).cloned()
    }

    /// Number of distinct interned callsites.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().sites.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn here_captures_this_file() {
        let site = Callsite::here();
        assert_eq!(site.frames.len(), 1);
        assert!(site.frames[0].file.ends_with("callsite.rs"));
        assert!(site.frames[0].line > 0);
    }

    #[test]
    fn with_outer_appends_frames() {
        let site = Callsite::from_frames(vec![Frame::new("./stddefines.h", 53)])
            .with_outer("./linear_regression-pthread.c", 133);
        assert_eq!(site.frames.len(), 2);
        assert_eq!(site.frames[1].line, 133);
    }

    #[test]
    fn display_matches_figure5_shape() {
        let site = Callsite::from_frames(vec![
            Frame::new("./stddefines.h", 53),
            Frame::new("./linear_regression-pthread.c", 133),
        ]);
        assert_eq!(
            site.to_string(),
            "./stddefines.h:53\n./linear_regression-pthread.c:133\n"
        );
    }

    #[test]
    fn interning_is_idempotent() {
        let t = CallsiteTable::new();
        let a = t.intern(Callsite::from_frames(vec![Frame::new("a.rs", 1)]));
        let b = t.intern(Callsite::from_frames(vec![Frame::new("b.rs", 2)]));
        let a2 = t.intern(Callsite::from_frames(vec![Frame::new("a.rs", 1)]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let t = CallsiteTable::new();
        let site = Callsite::from_frames(vec![Frame::new("x.rs", 7)]);
        let id = t.intern(site.clone());
        assert_eq!(t.resolve(id), Some(site));
        assert_eq!(t.resolve(CallsiteId(99)), None);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let t = std::sync::Arc::new(CallsiteTable::new());
        let ids: Vec<CallsiteId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let t = t.clone();
                    s.spawn(move || t.intern(Callsite::from_frames(vec![Frame::new("same.rs", 1)])))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.iter().all(|&i| i == ids[0]));
        assert_eq!(t.len(), 1);
    }
}
