//! End-to-end smoke tests for the `predator` binary's observability
//! surface: `--metrics`, `--trace-events`, and the `stats` renderer.

use std::process::Command;

use predator_core::{ObsSnapshot, Report};

fn predator() -> Command {
    Command::new(env!("CARGO_BIN_EXE_predator"))
}

/// Fast, deterministic run arguments shared by the tests.
const RUN: &[&str] = &[
    "run",
    "histogram",
    "--sensitive",
    "--threads",
    "2",
    "--iters",
    "200",
];

#[test]
fn json_report_with_metrics_dash_is_one_json_doc_embedding_snapshot() {
    let out = predator()
        .args(RUN)
        .args(["--json", "--metrics", "-"])
        .output()
        .expect("spawn predator");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    // One valid JSON document: the report, with the snapshot under `obs`.
    let report: Report =
        serde_json::from_str(&stdout).expect("stdout must be a single valid JSON report");
    if !predator_obs::disabled() {
        assert!(
            report.obs.counter("runtime_accesses_total").unwrap_or(0) > 0,
            "embedded snapshot should carry runtime counters"
        );
        assert!(
            !report.obs.phases().is_empty(),
            "embedded snapshot should carry span histograms"
        );
    }
}

#[test]
fn metrics_file_and_prometheus_text_are_written() {
    let dir = std::env::temp_dir().join(format!("predator-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("snap.json");
    let metrics_s = metrics.to_str().unwrap().to_string();

    let out = predator()
        .args(RUN)
        .args(["--metrics", &metrics_s])
        .output()
        .expect("spawn predator");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let snap: ObsSnapshot = serde_json::from_str(&text).expect("snapshot JSON parses");
    if !predator_obs::disabled() {
        assert!(snap.counter("track_sampled_accesses_total").unwrap_or(0) > 0);
    }

    let prom =
        std::fs::read_to_string(format!("{metrics_s}.prom")).expect("prometheus text written");
    if !predator_obs::disabled() {
        assert!(
            prom.contains("# TYPE"),
            "prometheus text has TYPE lines:\n{prom}"
        );
    }

    // The stats renderer accepts the bare snapshot file.
    let out = predator()
        .args(["stats", &metrics_s])
        .output()
        .expect("spawn stats");
    assert!(out.status.success());
    let table = String::from_utf8_lossy(&out.stdout);
    if !predator_obs::disabled() {
        assert!(table.contains("COUNTERS"), "table:\n{table}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_events_stream_is_valid_jsonl() {
    let dir = std::env::temp_dir().join(format!("predator-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("events.jsonl");
    let trace_s = trace.to_str().unwrap().to_string();

    let out = predator()
        .args(RUN)
        .args(["--trace-events", &trace_s])
        .output()
        .expect("spawn predator");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every event line carries at least these envelope fields; extra
    // per-kind fields are ignored by the deserializer.
    #[derive(serde::Deserialize)]
    struct Envelope {
        seq: u64,
        kind: String,
    }

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    if !predator_obs::disabled() {
        assert!(!text.trim().is_empty(), "sensitive run should emit events");
        for line in text.lines() {
            let ev: Envelope = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
            assert!(!ev.kind.is_empty(), "line {} has a kind", ev.seq);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs the binary and returns stdout, asserting success.
fn run_to_file(args: &[&str], path: &std::path::Path) {
    let out = predator().args(args).output().expect("spawn predator");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::write(path, &out.stdout).expect("write report");
}

#[test]
fn explain_renders_a_causal_timeline_from_a_json_report() {
    let dir = std::env::temp_dir().join(format!("predator-explain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("boost.json");
    run_to_file(
        &[
            "run",
            "boost",
            "--sensitive",
            "--threads",
            "4",
            "--iters",
            "300",
            "--json",
        ],
        &report,
    );
    let report_s = report.to_str().unwrap();

    let out = predator()
        .args(["explain", report_s])
        .output()
        .expect("spawn explain");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    if !predator_obs::disabled() {
        assert!(
            text.contains("Timeline for cache line"),
            "timeline header:\n{text}"
        );
        assert!(
            text.contains("invalidated t"),
            "victim attribution:\n{text}"
        );
        assert!(text.contains("Causal traces"), "trace section:\n{text}");
        assert!(text.contains("invalidating write"), "legend:\n{text}");

        // Asking for a line with no records degrades gracefully (exit 0).
        let out = predator()
            .args(["explain", report_s, "999999999"])
            .output()
            .expect("spawn explain");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("No flight-recorder records"), "{text}");
    } else {
        assert!(text.contains("No flight-recorder data"), "{text}");
    }

    // --no-recorder runs produce reports explain declines politely.
    let bare = dir.join("bare.json");
    run_to_file(
        &[
            "run",
            "boost",
            "--sensitive",
            "--threads",
            "2",
            "--iters",
            "200",
            "--json",
            "--no-recorder",
        ],
        &bare,
    );
    let out = predator()
        .args(["explain", bare.to_str().unwrap()])
        .output()
        .expect("spawn explain");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("No flight-recorder data"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_gate_passes_clean_and_fails_regressions_nonzero() {
    let dir = std::env::temp_dir().join(format!("predator-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let clean = dir.join("clean.json");
    let bad = dir.join("bad.json");
    let base: &[&str] = &[
        "run",
        "boost",
        "--sensitive",
        "--threads",
        "4",
        "--iters",
        "300",
    ];
    run_to_file(&[base, &["--fixed", "--json"]].concat(), &clean);
    run_to_file(&[base, &["--json"]].concat(), &bad);
    let (clean_s, bad_s) = (clean.to_str().unwrap(), bad.to_str().unwrap());

    // Identical reports: the gate passes.
    let out = predator()
        .args(["diff", clean_s, clean_s])
        .output()
        .expect("spawn diff");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // New findings appeared: nonzero exit and an explicit gate verdict.
    let out = predator()
        .args(["diff", clean_s, bad_s])
        .output()
        .expect("spawn diff");
    assert!(!out.status.success(), "regression must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("GATE: FAIL"));

    // A huge tolerance only forgives severity drift, never new findings.
    let out = predator()
        .args(["diff", clean_s, bad_s, "--tolerance", "100"])
        .output()
        .expect("spawn diff");
    assert!(!out.status.success());

    // Nonsense tolerance is a usage error.
    let out = predator()
        .args(["diff", clean_s, bad_s, "--tolerance", "-1"])
        .output()
        .expect("spawn diff");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tolerance"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_threads_is_a_usage_error() {
    let out = predator()
        .args(["run", "histogram", "--threads", "0"])
        .output()
        .expect("spawn predator");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads"), "stderr: {stderr}");
}
