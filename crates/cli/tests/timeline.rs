//! End-to-end validation of the self-profiling surface: the
//! `--trace-timeline` Chrome trace export, the `profile` subcommand's
//! sample-coverage guarantee, and the `bench-diff` telemetry gate.

use std::path::PathBuf;
use std::process::Command;

fn predator() -> Command {
    Command::new(env!("CARGO_BIN_EXE_predator"))
}

/// The checked-in example IR program (two writers false-sharing a line),
/// resolved relative to this crate's manifest so tests run from any CWD.
fn program() -> String {
    let p =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs/false_sharing.pir");
    p.to_str().unwrap().to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("predator-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The envelope fields shared by every Chrome trace event; per-event extras
/// (`args`, scopes) are ignored by the deserializer.
#[derive(serde::Deserialize)]
#[allow(non_snake_case)]
struct TraceEv {
    name: Option<String>,
    ph: String,
    ts: Option<f64>,
    tid: Option<u64>,
    id: Option<u64>,
}

#[derive(serde::Deserialize)]
#[allow(non_snake_case)]
struct OtherData {
    recorded: u64,
    dropped: u64,
    synthesized_ends: u64,
    orphan_ends_discarded: u64,
}

#[derive(serde::Deserialize)]
#[allow(non_snake_case)]
struct TraceDoc {
    traceEvents: Vec<TraceEv>,
    otherData: OtherData,
}

#[test]
fn trace_timeline_is_structurally_valid_chrome_json() {
    let dir = temp_dir("timeline");
    let trace = dir.join("trace.json");
    let trace_s = trace.to_str().unwrap().to_string();

    let out = predator()
        .args(["ir", &program(), "--threads", "4", "--iters", "3000"])
        .args(["--trace-timeline", &trace_s])
        .output()
        .expect("spawn predator ir");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc: TraceDoc = serde_json::from_str(&text).expect("trace parses as Chrome JSON");

    if predator_obs::disabled() {
        // obs-off still writes a well-formed (empty) document.
        assert_eq!(doc.otherData.recorded, 0);
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    assert!(
        !doc.traceEvents.is_empty(),
        "an instrumented run emits events"
    );
    assert_eq!(
        doc.otherData.dropped, 0,
        "small run must not overflow the buffer"
    );
    assert_eq!(
        doc.otherData.synthesized_ends, 0,
        "clean exit closes every span"
    );
    assert_eq!(doc.otherData.orphan_ends_discarded, 0);

    // Per-lane invariants: timestamps never go backwards, and every E pops
    // the innermost matching B (spans nest properly within a lane).
    let mut last_ts: std::collections::HashMap<u64, f64> = Default::default();
    let mut stacks: std::collections::HashMap<u64, Vec<String>> = Default::default();
    let mut flow_starts = std::collections::HashSet::new();
    let mut flow_finishes = std::collections::HashSet::new();
    for ev in &doc.traceEvents {
        if ev.ph == "M" {
            continue; // metadata carries no ts
        }
        let tid = ev.tid.expect("non-metadata events carry a tid");
        let ts = ev.ts.expect("non-metadata events carry a ts");
        let prev = last_ts.entry(tid).or_insert(ts);
        assert!(ts >= *prev, "ts regressed on lane {tid}: {ts} < {prev}");
        *prev = ts;
        match ev.ph.as_str() {
            "B" => stacks
                .entry(tid)
                .or_default()
                .push(ev.name.clone().unwrap()),
            "E" => {
                let popped = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(
                    popped.as_deref(),
                    ev.name.as_deref(),
                    "E must close the innermost B on lane {tid}"
                );
            }
            "s" => {
                flow_starts.insert(ev.id.expect("flow start has an id"));
            }
            "f" => {
                flow_finishes.insert(ev.id.expect("flow finish has an id"));
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "lane {tid} left open spans: {stack:?}");
    }
    assert_eq!(
        flow_starts, flow_finishes,
        "every flow id must start and finish"
    );
    assert!(
        !flow_starts.is_empty(),
        "false sharing must emit invalidation flows"
    );

    // Golden content: pipeline phases and detector moments are present.
    for needle in [
        "\"interpret\"",
        "\"detect\"",
        "invalidation",
        "report_emitted",
    ] {
        assert!(text.contains(needle), "trace must mention {needle}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_attributes_at_least_95_percent_of_instructions() {
    let dir = temp_dir("profile");
    let folded = dir.join("out.folded");
    let out = predator()
        .args(["profile", &program(), "--threads", "4", "--iters", "3000"])
        .args(["--out", folded.to_str().unwrap()])
        .output()
        .expect("spawn predator profile");

    if predator_obs::disabled() {
        assert!(
            !out.status.success(),
            "obs-off builds must refuse to profile"
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("obs-off"));
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // "attributed <X> of <Y> interpreted instructions (<Z>%)"
    let line = stdout
        .lines()
        .find(|l| l.starts_with("attributed "))
        .unwrap_or_else(|| panic!("no coverage line in:\n{stdout}"));
    let mut nums = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().unwrap());
    let (attributed, total) = (nums.next().unwrap(), nums.next().unwrap());
    assert!(total > 0);
    assert!(
        attributed as f64 >= total as f64 * 0.95,
        "sampler must attribute >=95% of instructions: {attributed}/{total}\n{stdout}"
    );

    // The collapsed-stack output is flamegraph-shaped: "a;b;leaf <weight>".
    let text = std::fs::read_to_string(&folded).expect("folded stacks written");
    let folded_sum: u64 = text
        .lines()
        .map(|l| {
            l.rsplit(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .expect("weight")
        })
        .sum();
    assert_eq!(
        folded_sum, attributed,
        "folded weights must sum to the attributed total"
    );
    assert!(
        text.lines().any(|l| l.contains("rt::")),
        "runtime cost centers appear as synthetic leaf frames:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_diff_gates_on_hot_path_regressions() {
    use predator_bench::telemetry::{BenchReport, HotPath, WorkloadBench};

    let report = |tracked: f64| BenchReport {
        schema: predator_bench::telemetry::SCHEMA.to_string(),
        obs_hooks: true,
        hot_path: HotPath {
            tracked_write_ns: tracked,
            untracked_read_ns: 20.0,
        },
        workloads: vec![WorkloadBench {
            name: "histogram".into(),
            threads: 4,
            iters: 100,
            wall_ms: 1.0,
            accesses: 1000,
            throughput_maccess_s: 1.0,
            findings: 1,
        }],
        peak_rss_kb: 1000,
        obs_overhead_pct: Some(1.0),
    };

    let dir = temp_dir("bench-diff");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, serde_json::to_string(&report(30.0)).unwrap()).unwrap();
    let (old_s, new_s) = (old.to_str().unwrap(), new.to_str().unwrap());

    // Identical numbers pass the gate.
    std::fs::write(&new, serde_json::to_string(&report(30.0)).unwrap()).unwrap();
    let out = predator()
        .args(["bench-diff", old_s, new_s])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("GATE: ok"));

    // A 2x hot-path regression fails with the default 50% tolerance…
    std::fs::write(&new, serde_json::to_string(&report(60.0)).unwrap()).unwrap();
    let out = predator()
        .args(["bench-diff", old_s, new_s])
        .output()
        .unwrap();
    assert!(!out.status.success(), "regression must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("GATE: FAIL"));

    // …but a generous tolerance forgives it.
    let out = predator()
        .args(["bench-diff", old_s, new_s, "--tolerance", "1.5"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // A wrong schema is a hard usage error, not a gate verdict.
    let mut wrong = report(30.0);
    wrong.schema = "predator-bench/999".into();
    std::fs::write(&new, serde_json::to_string(&wrong).unwrap()).unwrap();
    let out = predator()
        .args(["bench-diff", old_s, new_s])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));

    let _ = std::fs::remove_dir_all(&dir);
}
