//! End-to-end tests for `predator serve`: spawn the real binary, discover
//! the ephemeral port through `--ready-file`, scrape every endpoint with the
//! Rust HTTP client, and prove the signal path: SIGTERM lands as a graceful
//! shutdown with `FlushGuard` semantics (exit 0, `sink_summary` flushed).

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use predator_core::Report;
use predator_obs::{http_get, http_get_auth};

fn predator() -> Command {
    Command::new(env!("CARGO_BIN_EXE_predator"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("predator-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls `--ready-file` until the serve process writes its bound address.
fn wait_for_addr(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Scrapes `path` until `pred` accepts the body.
fn wait_for(addr: &str, path: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok((200, body)) = http_get(addr, path, Duration::from_secs(5)) {
            if pred(&body) {
                return body;
            }
        }
        assert!(Instant::now() < deadline, "condition never held for {path}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn sigterm(child: &Child) {
    let ok = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill failed");
}

#[test]
fn serve_workload_endpoints_scrape_and_sigterm_is_graceful() {
    let dir = temp_dir("serve");
    let ready = dir.join("addr.txt");
    let events = dir.join("events.jsonl");

    let mut child = predator()
        .args([
            "serve",
            "histogram",
            "--threads",
            "2",
            "--iters",
            "200",
            "--passes",
            "3",
            "--listen",
            "127.0.0.1:0",
            "--watchdog-interval-ms",
            "50",
            "--ready-file",
            ready.to_str().unwrap(),
            "--trace-events",
            events.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn predator serve");

    let addr = wait_for_addr(&ready);

    // /health reports liveness and converges on the requested pass count.
    let health = wait_for(&addr, "/health", |b| b.contains("\"passes\":3"));
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"mode\":\"workload\""), "{health}");
    assert!(
        health.contains("\"last_analysis_age_seconds\":"),
        "{health}"
    );

    // /metrics: build info with labels, uptime, the exact pass counter, and
    // the fleet ingest counters rendered (at zero — nothing ingested here).
    let metrics = wait_for(&addr, "/metrics", |b| b.contains("serve_passes_total 3"));
    assert!(
        metrics.contains("predator_build_info{version=\""),
        "{metrics}"
    );
    assert!(metrics.contains("mode=\"workload\""), "{metrics}");
    assert!(metrics.contains("# TYPE predator_uptime_seconds gauge"));
    for fleet in [
        "\nfleet_traces_ingested_total 0\n",
        "\nfleet_events_ingested_total 0\n",
        "\nfleet_bytes_ingested_total 0\n",
    ] {
        assert!(metrics.contains(fleet), "fleet counter missing:\n{metrics}");
    }
    assert!(
        metrics.contains("\npredator_backoff_tier "),
        "watchdog gauge missing:\n{metrics}"
    );

    // /report parses as the same Report schema `analyze`/`run --json` emit,
    // and the broken histogram workload has observable findings by pass 3.
    let report_body = http_get(&addr, "/report", Duration::from_secs(5))
        .expect("report scrape")
        .1;
    let report: Report = serde_json::from_str(&report_body).expect("report JSON parses");
    assert!(
        report.obs.counter("runtime_accesses_total").unwrap_or(0) > 0,
        "report embeds a live snapshot"
    );

    // /snapshot is the epoch-tagged delta document.
    let (status, snap) = http_get(&addr, "/snapshot", Duration::from_secs(5)).expect("scrape");
    assert_eq!(status, 200);
    assert!(
        snap.starts_with("{\"schema\":\"predator-snapshot-delta/1\",\"epoch\":"),
        "{snap}"
    );

    // `predator stats --url` renders tables from the live /snapshot.
    let url = format!("http://{addr}");
    let out = predator()
        .args(["stats", "--url", &url])
        .output()
        .expect("spawn stats --url");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("live snapshot from"), "{table}");
    assert!(table.contains("COUNTERS"), "{table}");

    // SIGTERM: the signal handler trips the shutdown flag, serve drains,
    // and FlushGuard semantics run — exit 0 with a sink_summary flushed.
    sigterm(&child);
    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    let text = std::fs::read_to_string(&events).expect("events file written");
    assert!(
        text.lines()
            .any(|l| l.contains("\"kind\":\"sink_summary\"")),
        "sink_summary missing from:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The default rule pack shipped in the repo, resolved from the cli crate.
fn rules_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/alerts.rules")
}

#[test]
fn serve_with_rules_and_auth_token_end_to_end() {
    let dir = temp_dir("serve-auth");
    let ready = dir.join("addr.txt");
    let rules = rules_path();
    const TOKEN: &str = "hunter2";

    let mut child = predator()
        .args([
            "serve",
            "histogram",
            "--threads",
            "2",
            "--iters",
            "200",
            "--sensitive",
            "--listen",
            "127.0.0.1:0",
            "--watchdog-interval-ms",
            "50",
            "--rules",
            rules.to_str().unwrap(),
            "--auth-token",
            TOKEN,
            "--ready-file",
            ready.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn predator serve");

    let addr = wait_for_addr(&ready);
    let get = |path: &str, token: Option<&str>| {
        http_get_auth(&addr, path, Duration::from_secs(5), token).expect("scrape")
    };

    // Everything but /health is gated: 401 without the token, 401 with the
    // wrong one, 200 with the right one.
    for path in ["/metrics", "/snapshot", "/report", "/alerts", "/query"] {
        assert_eq!(get(path, None).0, 401, "{path} served without a token");
        assert_eq!(get(path, Some("wrong")).0, 401, "{path} took a bad token");
    }
    assert_eq!(get("/health", None).0, 200, "/health must stay open");

    // Wait until the monitor has sampled the registry at least once (the
    // tsdb answers /query for a registered gauge), then /alerts and
    // /query answer with their schema-tagged documents.
    let deadline = Instant::now() + Duration::from_secs(60);
    let body = loop {
        let (status, body) = get("/query?metric=predator_backoff_tier&range=5m", Some(TOKEN));
        if status == 200 {
            break body;
        }
        assert!(Instant::now() < deadline, "monitor never sampled the tsdb");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        body.starts_with("{\"schema\":\"predator-tsdb/1\""),
        "{body}"
    );
    assert!(
        body.contains("\"metric\":\"predator_backoff_tier\""),
        "{body}"
    );
    let (status, body) = get("/alerts", Some(TOKEN));
    assert_eq!(status, 200);
    assert!(
        body.starts_with("{\"schema\":\"predator-alerts/1\""),
        "{body}"
    );
    assert!(
        body.contains("\"name\":\"overhead_budget_breach\""),
        "{body}"
    );
    // The series listing, an unknown metric, and a bad range.
    let (status, body) = get("/query", Some(TOKEN));
    assert_eq!(status, 200);
    assert!(body.contains("\"series\":["), "{body}");
    assert_eq!(get("/query?metric=no_such_series", Some(TOKEN)).0, 404);
    assert_eq!(
        get(
            "/query?metric=predator_backoff_tier&range=bogus",
            Some(TOKEN)
        )
        .0,
        400
    );

    // `stats --url --watch 0` renders one dashboard frame through the
    // same bearer token: alert states plus sparkline series.
    let url = format!("http://{addr}");
    let out = predator()
        .args([
            "stats",
            "--url",
            &url,
            "--watch",
            "0",
            "--auth-token",
            TOKEN,
        ])
        .output()
        .expect("spawn stats --watch 0");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let frame = String::from_utf8_lossy(&out.stdout);
    assert!(frame.contains("predator serve @"), "{frame}");
    assert!(frame.contains("alerts:"), "{frame}");
    assert!(frame.contains("predator_backoff_tier"), "{frame}");

    // `alerts eval` against the live instance goes through the token too;
    // its exit code is the gate (either way is valid here — the tiny
    // workload may or may not breach the budget at sample time).
    let out = predator()
        .args([
            "alerts",
            "eval",
            rules.to_str().unwrap(),
            &addr,
            "--auth-token",
            TOKEN,
        ])
        .output()
        .expect("spawn alerts eval");
    let eval = String::from_utf8_lossy(&out.stdout);
    assert!(eval.contains("evaluating 4 rule(s) against live"), "{eval}");
    assert!(eval.contains("condition(s) met"), "{eval}");

    sigterm(&child);
    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alerts_lint_gates_rule_files() {
    // The shipped pack lints clean.
    let out = predator()
        .args(["alerts", "lint", rules_path().to_str().unwrap()])
        .output()
        .expect("spawn alerts lint");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 rule(s) ok"));

    // A broken pack exits nonzero with line-numbered findings, not usage.
    let dir = temp_dir("lint");
    let bad = dir.join("bad.rules");
    std::fs::write(&bad, "alert x\n  expr: nonsense\n").unwrap();
    let out = predator()
        .args(["alerts", "lint", bad.to_str().unwrap()])
        .output()
        .expect("spawn alerts lint");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2:"), "{err}");
    assert!(!err.contains("USAGE"), "lint failure dumped usage: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_run_still_flushes_sink_summary() {
    let dir = temp_dir("interrupt");
    let events = dir.join("events.jsonl");

    // A run long enough that the SIGINT always lands mid-workload.
    let mut child = predator()
        .args([
            "run",
            "histogram",
            "--threads",
            "2",
            "--iters",
            "5000000",
            "--trace-events",
            events.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn predator run");

    // Give the process time to install its handlers, then interrupt.
    std::thread::sleep(Duration::from_millis(1000));
    let ok = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill -INT failed");

    let status = child.wait().expect("wait for run");
    assert_eq!(status.code(), Some(130), "interrupt exit code: {status:?}");
    let text = std::fs::read_to_string(&events).expect("events file written");
    assert!(
        text.lines()
            .any(|l| l.contains("\"kind\":\"sink_summary\"")),
        "sink_summary missing from:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_bad_arguments() {
    // Unknown target: neither workload nor trace file.
    let out = predator()
        .args(["serve", "no-such-thing"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("neither a workload"));

    // Budget out of range.
    let out = predator()
        .args(["serve", "histogram", "--overhead-budget", "1.5"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--overhead-budget"));

    // Watch mode without a corpus.
    let out = predator()
        .args(["serve", "--watch", "/tmp"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--corpus"));
}
