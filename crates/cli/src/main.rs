//! `predator` — run the evaluation workloads under the PREDATOR detector
//! and print ranked false-sharing reports (the paper's Figure 5 format).
//!
//! ```text
//! predator list
//! predator run linear_regression
//! predator run histogram --fixed --threads 8 --iters 50000
//! predator run mysql --no-prediction --json
//! predator native linear_regression --iters 2000000
//! predator replay trace.jsonl
//! ```

mod serve;

use std::io::BufReader;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use predator_core::{
    build_report, build_report_merged, suggest_fixes, Attribution, DetectorConfig, LayoutEdit,
    ObsSnapshot, Predator, Report, Session, SiteKind, TimelineOp, TimelineRecord,
};
use predator_instrument::{
    instrument_module, parse_module, InstrumentOptions, Machine, StepSchedule, ThreadSpec,
};
use predator_policy::{
    diff_reports, evaluate_report, evaluate_views, to_html, to_sarif_string, Baseline, Evaluation,
    FindingView, PolicyConfig, Suppressions,
};
use predator_shadow::SimSpace;
use predator_sim::{Access, ThreadId};
use predator_trace::{
    analyze_events, analyze_file, read_info, read_info_scan, sniff_format, verify_fixes,
    whatif_events, AnalyzeConfig, JsonlIter, LossStats, TraceFormat, TraceMeta, TraceReader,
    TraceSink, WhatIfFix,
};
use predator_workloads::{all, by_name, run_and_report, Variant, WorkloadConfig};

const USAGE: &str = "\
predator — predictive false sharing detection (PPoPP 2014 reproduction)

USAGE:
    predator list
        List the evaluation workloads.

    predator run <workload> [OPTIONS]
        Run a workload under the detector and print the report.
        --fixed             run the fixed (padded) variant
        --no-prediction     disable virtual-line prediction (PREDATOR-NP)
        --threads <N>       worker threads              [default: 4]
        --iters <N>         per-thread work items       [default: 20000]
        --seed <N>          input seed                  [default: 42]
        --sampling <RATE>   sampling rate in (0,1]      [default: 0.01]
        --tracking-mode <M> per-line state discipline: precise (mutex,
                            deterministic reports) or relaxed (lock-free
                            seqlock-style hot path)     [default: precise]
        --sensitive         tiny thresholds (small runs / demos)
        --json              machine-readable report

    predator native <workload> [OPTIONS]
        Run the uninstrumented native workload and print wall time.
        (same --fixed/--threads/--iters/--seed options)

    predator record <workload> -o <trace.ptrace> [OPTIONS]
        Run a workload with detection off, streaming the raw pre-filter
        access trace to a compact binary .ptrace file (attribution
        metadata — globals, live heap objects, callsites — rides along).
        (same --fixed/--threads/--iters/--seed options as `run`)

    predator analyze <trace> [OPTIONS]
        Sharded offline analysis of a recorded trace (.ptrace or JSONL,
        auto-detected). Cache-line clusters are partitioned across worker
        shards, each runs an independent detector, and the merged report is
        identical to a sequential replay's.
        --shards <N>        worker shards               [default: CPU count]
        --base <HEX> / --size <N>  address range for JSONL traces
                            (.ptrace headers carry their own)
        --verify-fixes      annotate each finding with its suggested fix's
                            measured replay delta (see `whatif`)
        --sensitive / --no-prediction / --sampling / --json as above

    predator whatif <trace> [OPTIONS]
        What-if layout replay: prove (or refute) fix suggestions against
        the recorded trace instead of printing untested advice. Each
        finding's suggested fix — or one user-supplied edit list — is
        applied as a pure address remap (injective, order-preserving, so
        the recorded interleaving is preserved verbatim), the remapped
        trace is re-analyzed at every portfolio line size (32/64/128/256
        bytes) and cross-checked against the MESI ground-truth simulator,
        and every finding is annotated with its measured before/after
        invalidation delta and a verdict (fixes/partial/ineffective).
        --pad <AT:BYTES[,AT:BYTES...]>  replay a user layout edit (insert
                            BYTES of padding before address AT; AT takes a
                            0x prefix for hex) instead of the per-finding
                            suggested fixes
        --min-delta <PCT>   exit nonzero unless the best verified fix
                            removes at least PCT% of invalidations at its
                            worst portfolio geometry (a CI gate)
        --shards <N> / --base <HEX> / --size <N> as `analyze`
        --sensitive / --no-prediction / --sampling / --json as above

    predator trace info <trace.ptrace> [--deep]
        Summarise a trace file: header, event/chunk counts, attribution
        metadata, corruption accounting (chunks skipped, records lost,
        bytes skipped, truncation — always printed). O(1) via the footer
        index when the file is intact; falls back to a full scan when
        damaged. The index cannot see mid-file payload corruption, so
        --deep forces the CRC-checking full scan regardless.

    predator trace cat <trace> [OPTIONS]
        Decode a trace (.ptrace or JSONL) to JSON lines on stdout.
        --limit <N>         stop after N events

    predator fleet ingest <trace.ptrace>... --corpus <dir> [OPTIONS]
        Ingest recorded traces into a corpus: each file is streamed through
        the sharded analyzer and its findings recorded in the corpus
        manifest (corpus.json). Traces are content-addressed, so
        re-ingesting a file is a no-op; corrupted traces degrade to loss
        accounting, never errors. The corpus pins the detector
        configuration of its first ingest and refuses mismatches.
        --corpus <DIR>      corpus directory (created on first ingest)
        --shards <N>        worker shards               [default: CPU count]
        --sensitive / --no-prediction / --sampling as `analyze`

    predator fleet report --corpus <dir> [OPTIONS]
        Merged cross-run report: findings deduped by stable callsite key
        across every run in the corpus, ranked by aggregate invalidation
        impact, with per-run provenance (run count, hit rate, worst run,
        first/last seen) and corpus-wide loss accounting.
        --run <ID>          print one member run's report instead
        --json              machine-readable report
        (--fail-on gates the merged aggregates by per-run mean
        invalidations; with --run, the full policy pipeline applies)

    predator fleet trend --corpus <dir> --baseline <corpus> [OPTIONS]
        Delta the corpus against a baseline corpus (a directory or its
        corpus.json): callsites classified as new / fixed / regressed /
        improved / steady by per-run mean invalidations.
        --tolerance <F>     relative mean-shift tolerance [default: 0.5]
        --fail-on-regression  exit nonzero when any callsite is new or
                            regressed (the CI gate)
        --json              machine-readable report

    predator fleet compact --corpus <dir> --keep <N>
        Retention: keep the N newest raw traces (by ingest order), fold
        older runs into merged aggregates in the manifest, delete their
        raw files. Merged totals are preserved exactly; per-run provenance
        of dropped runs is not.

    predator replay <trace> [OPTIONS]
        Stream an access trace (.ptrace or JSONL, auto-detected) through a
        single sequential detector.
        --base <HEX>        JSONL space base address    [default: 0x40000000]
        --size <N>          JSONL space size in bytes   [default: 64 MiB]
        --sensitive / --no-prediction / --json as above

    predator ir <program.pir> [OPTIONS]
        Instrument a textual-IR program and execute it under the detector.
        Runs the function named `worker` on each logical thread with
        arguments (base + thread*stride, iters).
        --threads <N>       logical threads             [default: 2]
        --iters <N>         loop bound argument         [default: 10000]
        --stride <N>        per-thread base offset      [default: 8]
        --quantum <N>       instructions per turn       [default: 7]
        --sensitive / --no-prediction / --json / --fixes as above

    predator explain <report.json> [line]
        Render a flight-recorder timeline for one cache line of a JSON
        report: interleaved per-thread lanes at word granularity, with
        invalidating writes highlighted and causally attributed. `line` is
        a decimal global line index or a 0x-prefixed byte address; omitted,
        the top finding's hottest line is used.

    predator diff <old.json> <new.json> [OPTIONS]
        Compare two JSON reports (from `run --json`); exits nonzero when the
        new report introduces findings the old one lacked (a CI gate).
        --tolerance <F>     severity-change ratio threshold [default: 0.5]

    predator baseline write <report.json> -o <baseline.json>
        Snapshot every finding's callsite key from a JSON report into a
        baseline file. Commit it next to the code: a later
        `analyze --baseline <file> --fail-on <sev>` reports everything but
        gates only on findings at keys the baseline has never seen.

    predator baseline diff <baseline.json> <report.json> [OPTIONS]
        Compare a report against a baseline: each callsite key classifies
        as NEW / FIXED / WORSE / BETTER / steady. Exits nonzero when any
        NEW key appears (the CI gate; drift alone never fails).
        --tolerance <F>     relative drift tolerance      [default: 0.5]

    predator profile <program.pir> [OPTIONS]
        Execute a textual-IR program under the instruction-sampling
        self-profiler and print where interpreted instructions went: a
        top-N table over IR functions/basic blocks and runtime cost centers
        (rt::handle_access, rt::track, rt::recorder, rt::mesi), plus
        collapsed stacks for flamegraph tooling.
        --profile-period <N>  sample every N-th instruction [default: 64]
        --top <N>           rows in the table             [default: 20]
        --out <PATH>        write collapsed stacks (folded format) to PATH
        (also accepts ir's --threads/--iters/--stride/--quantum options)

    predator bench-diff <old.json> <new.json> [OPTIONS]
        Compare two BENCH_*.json telemetry files (from scripts/bench.sh);
        exits nonzero when workload throughput or hot-path ns/access
        regressed beyond tolerance (the nightly CI gate).
        --tolerance <F>     allowed regression fraction   [default: 0.5]

    predator serve [<workload>|<trace.ptrace>] [OPTIONS]
        Live monitoring: run the source continuously and expose telemetry
        over HTTP. With a workload name (default: histogram), tracked
        passes repeat over one long-lived session; with a .ptrace path,
        the trace is looped through a detector; with --watch, a fleet
        spool directory is polled and complete traces auto-ingested.
        Endpoints: /metrics (Prometheus text), /health (liveness JSON),
        /report (findings, same schema as `analyze`; ?format=json|sarif|
        html, HTTP 412 when the --fail-on policy gate fails), /snapshot
        (delta since previous scrape, epoch-tagged), /query (recent
        metric history from the embedded time-series store: bounded
        per-series rings with 10s/60s downsampling tiers), /alerts
        (rule states, 404 until --rules is given). A watchdog thread
        estimates the detector's own overhead from calibrated per-access
        costs and sheds sampling through a tiered backoff controller when
        the budget is violated; new allocation sites re-arm it. SIGINT or
        SIGTERM shuts the loop down gracefully (observability streams are
        flushed on the way out).
        --listen <ADDR>     bind address            [default: 127.0.0.1:0]
        --overhead-budget <F>  self-overhead budget fraction [default: 0.05]
        --watchdog-interval-ms <N>  watchdog/poll period [default: 500]
        --passes <N>        stop driving after N passes (0 = forever);
                            the server keeps serving until a signal
        --ready-file <PATH> write the bound address to PATH once listening
        --watch <DIR>       fleet spool directory to poll (needs --corpus)
        --corpus <DIR>      fleet corpus directory for --watch
        --rules <FILE>      alert rules evaluated each watchdog tick
                            (see docs/alerts.rules); state behind /alerts,
                            transitions stream to --trace-events
        --auth-token <TOK>  require `Authorization: Bearer <TOK>` on every
                            endpoint except /health
        (plus `run`'s workload and detector options)

    predator alerts lint <rules>
        Parse and validate an alert-rules file; print the normalized
        rules, or every error with its line number (exit nonzero).

    predator alerts eval <rules> <report.json|snapshot.json|ADDR>
        One-shot rule evaluation against a JSON report, a bare metrics
        snapshot, or a live serve instance's /snapshot. `for:` hysteresis
        is ignored (there is no history to hold against); rate() needs a
        live ADDR (two scrapes, 1s apart). Exits nonzero when any
        condition holds — a CI gate over recorded reports.
        --auth-token <TOK>  bearer token for a live ADDR

    predator stats <snapshot.json>
        Render an observability snapshot (from `--metrics`, or the `obs`
        field of a `--json` report) as a human-readable table. `-` reads
        from stdin.
        --url <ADDR>        scrape a live `predator serve` instance's
                            /snapshot instead of reading a file
        --watch <SECS>      with --url: redraw a live dashboard every SECS
                            seconds — firing alerts from /alerts plus
                            sparkline history from /query (0 = render one
                            frame and exit, for scripts)
        --auth-token <TOK>  bearer token for --url scrapes

    Common flags:
        --fixes             also print prescriptive fix suggestions
        --markdown          render the report as GitHub-flavoured markdown
        --format <F>        report output format: text|json|markdown|
                            sarif|html (--json/--markdown stay as aliases).
                            SARIF 2.1.0 and self-contained HTML embed fix
                            suggestions and the policy verdicts; both own
                            stdout, so redirect to a file
        --fail-on <SEV>     gate: exit nonzero when any finding classifies
                            at or above SEV (info|warning|error) after
                            suppressions and the baseline are applied.
                            Applies to run/ir/replay/analyze/fleet report;
                            under serve, a failed gate turns /report into
                            HTTP 412. The verdict prints to stderr
        --suppressions <FILE>  suppression list: one callsite key per
                            line (trailing `*` = prefix match, `#` starts
                            a comment); suppressed findings are reported
                            but never gate
        --baseline <FILE>   known-findings baseline (from `baseline
                            write`); baselined keys never gate
        --policy <NAME>     severity classification policy
                            [default: threshold]
        --metrics <PATH>    write the metrics snapshot as JSON to PATH and
                            Prometheus text to PATH.prom after the run;
                            `-` prints the JSON to stdout (skipped under
                            --json, whose report already embeds it)
        --trace-events <PATH>  stream structured JSONL events (line
                            promotions, invalidations, prediction units,
                            callsite attribution) to PATH during the run
        --trace-timeline <PATH>  write a Chrome trace-event JSON timeline
                            (pipeline phase spans, per-thread interpreter
                            lanes, invalidation instants with flow arrows
                            to their victim threads) to PATH; open it in
                            Perfetto or chrome://tracing
        --no-recorder       disable the flight recorder (on by default for
                            run/ir/replay; powers `explain` timelines)
        --recorder-depth <N>  records kept per cache line [default: 64]
";

struct Args {
    positional: Vec<String>,
    flags: Vec<String>,
    options: std::collections::HashMap<String, String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    const VALUED: &[&str] = &[
        "--threads",
        "--iters",
        "--seed",
        "--sampling",
        "--tracking-mode",
        "--base",
        "--size",
        "--stride",
        "--quantum",
        "--metrics",
        "--trace-events",
        "--trace-timeline",
        "--recorder-depth",
        "--tolerance",
        "--profile-period",
        "--top",
        "--out",
        "--shards",
        "--limit",
        "--corpus",
        "--baseline",
        "--keep",
        "--run",
        "--listen",
        "--overhead-budget",
        "--watchdog-interval-ms",
        "--passes",
        "--ready-file",
        "--watch",
        "--url",
        "--rules",
        "--auth-token",
        "--format",
        "--fail-on",
        "--suppressions",
        "--policy",
        "--pad",
        "--min-delta",
    ];
    let mut args = Args {
        positional: Vec::new(),
        flags: Vec::new(),
        options: Default::default(),
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if VALUED.contains(&a.as_str()) {
            let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
            args.options.insert(a.clone(), v.clone());
        } else if a == "-o" {
            // `record`'s short output flag, aliased onto --out.
            let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
            args.options.insert("--out".to_string(), v.clone());
        } else if a.starts_with("--") {
            args.flags.push(a.clone());
        } else {
            args.positional.push(a.clone());
        }
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String> {
    match args.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {key}: {v}")),
    }
}

fn detector_config(args: &Args) -> Result<DetectorConfig, String> {
    let mut det = if args.flags.iter().any(|f| f == "--sensitive") {
        DetectorConfig::sensitive()
    } else {
        DetectorConfig::paper()
    };
    if args.flags.iter().any(|f| f == "--no-prediction") {
        det.prediction = false;
    }
    let rate: f64 = num(args, "--sampling", det.sampling_rate())?;
    if !(0.0..=1.0).contains(&rate) || rate == 0.0 {
        return Err(format!("--sampling must be in (0, 1], got {rate}"));
    }
    if let Some(mode) = args.options.get("--tracking-mode") {
        det.tracking_mode = mode.parse()?;
    }
    Ok(det.with_sampling_rate(rate))
}

fn workload_config(args: &Args) -> Result<WorkloadConfig, String> {
    let threads: usize = num(args, "--threads", 4usize)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(WorkloadConfig {
        threads,
        iters: num(args, "--iters", 20_000u64)?,
        seed: num(args, "--seed", 42u64)?,
        variant: if args.flags.iter().any(|f| f == "--fixed") {
            Variant::Fixed
        } else {
            Variant::Broken
        },
    })
}

fn cmd_list() {
    println!(
        "{:<20} {:<18} EXPECTED (broken variant)",
        "WORKLOAD", "SUITE"
    );
    for w in all() {
        let exp = match w.expectation() {
            predator_workloads::Expectation::Clean => "clean",
            predator_workloads::Expectation::Observed => "false sharing (observed)",
            predator_workloads::Expectation::PredictedOnly => "false sharing (prediction only)",
        };
        println!("{:<20} {:<18} {}", w.name(), w.suite().to_string(), exp);
    }
}

/// Routes structured events to `--trace-events <PATH>` for the rest of the
/// process. Installed before the run so hot-path emitters see an enabled
/// sink.
fn install_trace_sink(args: &Args) -> Result<(), String> {
    let Some(path) = args.options.get("--trace-events") else {
        return Ok(());
    };
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    predator_obs::events().install(
        Box::new(std::io::BufWriter::new(file)),
        TRACE_CAPACITY,
        /* sample_every = */ 1,
    );
    Ok(())
}

/// Upper bound on JSONL event lines per run; past it, events are counted as
/// dropped rather than written (keeps trace files bounded on huge runs).
const TRACE_CAPACITY: u64 = 1_000_000;

/// Arms the Chrome-trace timeline buffer when `--trace-timeline <PATH>` is
/// present; the file itself is written by [`FlushGuard`] at exit so
/// panicking or early-exiting runs still leave a valid trace.
fn install_timeline(args: &Args) -> Option<String> {
    let path = args.options.get("--trace-timeline")?;
    predator_obs::timeline().install(predator_obs::timeline::DEFAULT_CAPACITY);
    Some(path.clone())
}

/// Flushes every buffered observability stream when dropped — on the normal
/// exit path, on gate failures, and during panic unwinding alike — so
/// truncated runs still leave valid, loss-accounted files behind.
struct FlushGuard {
    timeline_path: Option<String>,
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        predator_obs::events().flush();
        if let Some(path) = self.timeline_path.take() {
            write_timeline(&path);
        }
    }
}

fn write_timeline(path: &str) {
    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        predator_obs::timeline().write_json(&mut out)
    };
    match write() {
        Ok(()) => eprintln!("trace timeline written to {path}"),
        Err(e) => eprintln!("error: cannot write {path}: {e}"),
    }
}

/// Registers SIGINT/SIGTERM handlers that set the process-wide graceful
/// shutdown flag ([`predator_core::shutdown`]). The handler body is a
/// relaxed store to a static atomic — async-signal-safe; everything else
/// happens on normal threads that notice the flag.
#[cfg(unix)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        predator_core::shutdown::request();
    }
    // std links libc; declaring `signal` here keeps the CLI dependency-free.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// For commands whose main loop does not poll the shutdown flag (`run`,
/// `analyze`, ... — everything except `serve`), a detached watcher turns an
/// interrupt into a flush-then-exit: the event sink gets its `sink_summary`
/// line and the `--trace-timeline` file is written before the process dies,
/// exactly as [`FlushGuard`] would have done on a normal exit.
fn arm_interrupt_watcher(timeline_path: Option<String>) {
    let _ = std::thread::Builder::new()
        .name("predator-sigwatch".into())
        .spawn(move || loop {
            if predator_core::shutdown::requested() {
                eprintln!("interrupted — flushing observability streams");
                predator_obs::events().flush();
                if let Some(path) = &timeline_path {
                    write_timeline(path);
                }
                // 130 = 128 + SIGINT, the conventional interrupt exit code.
                std::process::exit(130);
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
}

/// Default flight-recorder ring depth (records kept per cache line).
const RECORDER_DEPTH: usize = 64;

/// Turns the flight recorder on for detector-running commands (so reports
/// embed timelines for `explain`) unless `--no-recorder` opts out.
fn install_recorder(args: &Args) -> Result<(), String> {
    if !matches!(
        args.positional.first().map(String::as_str),
        Some("run" | "ir" | "replay")
    ) {
        return Ok(());
    }
    if args.flags.iter().any(|f| f == "--no-recorder") {
        return Ok(());
    }
    let depth: usize = num(args, "--recorder-depth", RECORDER_DEPTH)?;
    if depth == 0 {
        return Err("--recorder-depth must be at least 1".into());
    }
    predator_obs::recorder::recorder().enable(depth);
    Ok(())
}

/// Writes the end-of-run metrics snapshot where `--metrics` asked for it.
fn emit_metrics(args: &Args) -> Result<(), String> {
    let Some(path) = args.options.get("--metrics") else {
        return Ok(());
    };
    let snap = predator_obs::global().snapshot();
    if path == "-" {
        // Machine formats own stdout (a --json report already embeds the
        // snapshot; SARIF/HTML documents must not be followed by stray
        // JSON), so the inline dump only renders for human formats.
        if !output_format(args).is_ok_and(Format::is_machine) {
            println!("{}", snap.to_json());
        }
    } else {
        std::fs::write(path, snap.to_json() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let prom = format!("{path}.prom");
        std::fs::write(&prom, snap.to_prometheus())
            .map_err(|e| format!("cannot write {prom}: {e}"))?;
    }
    Ok(())
}

/// Report output format: `--format <F>` wins; the legacy `--json` and
/// `--markdown` flags keep working as aliases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Markdown,
    Sarif,
    Html,
}

impl Format {
    /// Machine formats own stdout: no preamble lines, no duplicate metrics
    /// JSON on the same stream.
    fn is_machine(self) -> bool {
        matches!(self, Format::Json | Format::Sarif | Format::Html)
    }
}

fn output_format(args: &Args) -> Result<Format, String> {
    if let Some(f) = args.options.get("--format") {
        return match f.as_str() {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "markdown" => Ok(Format::Markdown),
            "sarif" => Ok(Format::Sarif),
            "html" => Ok(Format::Html),
            other => Err(format!(
                "unknown format `{other}` (text|json|markdown|sarif|html)"
            )),
        };
    }
    if args.flags.iter().any(|f| f == "--json") {
        Ok(Format::Json)
    } else if args.flags.iter().any(|f| f == "--markdown") {
        Ok(Format::Markdown)
    } else {
        Ok(Format::Text)
    }
}

/// Builds the policy configuration shared by every report-emitting command
/// (`run`, `ir`, `replay`, `analyze`, `fleet report`, `serve`): the
/// classifier (`--policy`), suppressions file, baseline file, and the
/// `--fail-on` gate threshold.
fn policy_config(args: &Args) -> Result<PolicyConfig, String> {
    let mut cfg = PolicyConfig::default();
    if let Some(name) = args.options.get("--policy") {
        cfg.policy = predator_policy::policy_by_name(name).ok_or_else(|| {
            format!(
                "unknown policy `{name}` (available: {})",
                predator_policy::policy_names().join(", ")
            )
        })?;
    }
    if let Some(path) = args.options.get("--suppressions") {
        cfg.suppressions = Suppressions::load(Path::new(path))?;
    }
    if let Some(path) = args.options.get("--baseline") {
        cfg.baseline = Some(Baseline::load(Path::new(path))?);
    }
    if let Some(sev) = args.options.get("--fail-on") {
        cfg.fail_on = Some(sev.parse()?);
    }
    Ok(cfg)
}

/// Applies the `--fail-on` gate verdict: the summary goes to stderr (so
/// `--format sarif > out.sarif` redirects stay clean) and a failed gate
/// travels back through main as a nonzero exit code, same contract as
/// `diff` and `fleet trend`.
fn gate_exit(eval: &Evaluation) -> ExitCode {
    if eval.fail_on.is_none() {
        return ExitCode::SUCCESS;
    }
    if eval.gate_failed() {
        eprintln!("GATE: FAIL — {}", eval.gate_summary());
        return ExitCode::FAILURE;
    }
    eprintln!("GATE: ok — {}", eval.gate_summary());
    ExitCode::SUCCESS
}

/// Reads a JSON report (from `run --json` / `analyze --json`).
fn load_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not a JSON report: {e}"))
}

fn emit_report(args: &Args, det: &DetectorConfig, report: &Report) -> Result<ExitCode, String> {
    let _span = predator_obs::span("report");
    let format = output_format(args)?;
    let pcfg = policy_config(args)?;
    let eval = evaluate_report(report, &pcfg);
    match format {
        Format::Json => println!("{}", report.to_json()),
        Format::Markdown => println!("{}", report.to_markdown()),
        Format::Sarif => println!("{}", to_sarif_string(report, &eval, det.geometry)),
        Format::Html => println!("{}", to_html(report, &eval, det.geometry)),
        Format::Text => println!("{report}"),
    }
    if args.flags.iter().any(|f| f == "--fixes") {
        let fixes = suggest_fixes(report, det.geometry);
        if fixes.is_empty() {
            println!("\nNo fixes to suggest.");
        } else {
            println!("\nSuggested fixes:");
            for (idx, fix) in fixes {
                println!("  [finding {idx}] {fix}");
            }
        }
    }
    Ok(gate_exit(&eval))
}

fn cmd_run(args: &Args) -> Result<ExitCode, String> {
    let name = args.positional.get(1).ok_or("run: missing workload name")?;
    let w = by_name(name).ok_or_else(|| format!("unknown workload `{name}` (try `list`)"))?;
    let det = detector_config(args)?;
    let cfg = workload_config(args)?;
    let report = run_and_report(w.as_ref(), det, &cfg);
    emit_report(args, &det, &report)
}

fn cmd_ir(args: &Args) -> Result<ExitCode, String> {
    let path = args.positional.get(1).ok_or("ir: missing program path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut module = parse_module(&text).map_err(|e| format!("parse error: {e}"))?;
    let stats = instrument_module(&mut module, &InstrumentOptions::default());
    eprintln!(
        "instrumented: {} probes ({} accesses, {} deduped)",
        stats.probes_inserted, stats.accesses_seen, stats.deduped
    );

    let threads: usize = num(args, "--threads", 2usize)?;
    let iters: i64 = num(args, "--iters", 10_000i64)?;
    let stride: u64 = num(args, "--stride", 8u64)?;
    let quantum: u64 = num(args, "--quantum", 7u64)?;
    let det = detector_config(args)?;

    let space = SimSpace::new(1 << 20);
    let rt = Predator::for_space(det, &space);
    let machine = Machine::new(&module, &space, &rt).map_err(|e| e.to_string())?;
    let specs: Vec<ThreadSpec> = (0..threads)
        .map(|t| ThreadSpec {
            tid: ThreadId(t as u16),
            function: "worker".into(),
            args: vec![(space.base() + t as u64 * stride) as i64, iters],
        })
        .collect();
    machine
        .run(&specs, StepSchedule::RoundRobin { quantum }, 1 << 32)
        .map_err(|e| e.to_string())?;
    let report = build_report(&rt, None);
    emit_report(args, &det, &report)
}

fn cmd_native(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .get(1)
        .ok_or("native: missing workload name")?;
    let w = by_name(name).ok_or_else(|| format!("unknown workload `{name}` (try `list`)"))?;
    let cfg = workload_config(args)?;
    let d = w.run_native(&cfg);
    println!(
        "{name} ({:?}, {} threads, {} iters): {:.3} ms",
        cfg.variant,
        cfg.threads,
        cfg.iters,
        d.as_secs_f64() * 1e3
    );
    Ok(())
}

/// The `--base`/`--size` fallback range for JSONL traces (which, unlike
/// `.ptrace`, carry no header naming the space they cover).
fn jsonl_range(args: &Args) -> Result<(u64, u64), String> {
    let base = u64::from_str_radix(
        args.options
            .get("--base")
            .map(|s| s.trim_start_matches("0x"))
            .unwrap_or("40000000"),
        16,
    )
    .map_err(|e| format!("bad --base: {e}"))?;
    let size: u64 = num(args, "--size", 64 << 20)?;
    Ok((base, size))
}

fn warn_loss(path: &str, loss: &LossStats) {
    if loss.any() {
        eprintln!(
            "warning: {path} is damaged: {} chunk(s) skipped, {} record(s) lost, \
             {} byte(s) skipped{}",
            loss.chunks_skipped,
            loss.records_lost,
            loss.bytes_skipped,
            if loss.truncated {
                ", file truncated"
            } else {
                ""
            }
        );
    }
}

fn cmd_replay(args: &Args) -> Result<ExitCode, String> {
    let path = args.positional.get(1).ok_or("replay: missing trace path")?;
    let det = detector_config(args)?;
    // Both branches stream: one event in flight, never the whole trace.
    let (report, events) = match sniff_format(Path::new(path))? {
        TraceFormat::Ptrace => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut r =
                TraceReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
            let rt = Predator::new(det, r.base(), r.size());
            let mut n = 0u64;
            for a in &mut r {
                rt.handle_access(a.tid, a.addr, a.size, a.kind);
                n += 1;
            }
            warn_loss(path, &r.stats());
            let report = match r.take_meta() {
                Some(meta) => {
                    meta.apply_globals(&rt);
                    let dir = meta.directory();
                    build_report_merged(&[&rt], Attribution::Directory(&dir))
                }
                None => build_report(&rt, None),
            };
            (report, n)
        }
        TraceFormat::Jsonl => {
            let (base, size) = jsonl_range(args)?;
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let rt = Predator::new(det, base, size);
            let mut n = 0u64;
            for a in JsonlIter::new(BufReader::new(file)) {
                let a = a.map_err(|e| format!("bad trace: {e}"))?;
                rt.handle_access(a.tid, a.addr, a.size, a.kind);
                n += 1;
            }
            (build_report(&rt, None), n)
        }
    };
    if !output_format(args)?.is_machine() {
        println!("replayed {events} events");
    }
    emit_report(args, &det, &report)
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .get(1)
        .ok_or("record: missing workload name")?;
    let w = by_name(name).ok_or_else(|| format!("unknown workload `{name}` (try `list`)"))?;
    let out = args
        .options
        .get("--out")
        .ok_or("record: missing output path (-o <trace.ptrace>)")?;
    let cfg = workload_config(args)?;
    // Detection off, tap on: the file gets the raw pre-filter access
    // stream, so offline analysis can apply *any* detector configuration.
    let mut det = detector_config(args)?;
    det.enabled = false;
    let session = Session::with_config(det);
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let sink = Arc::new(
        TraceSink::create(
            std::io::BufWriter::new(file),
            session.space().base(),
            session.space().size(),
        )
        .map_err(|e| format!("cannot start {out}: {e}"))?,
    );
    session.runtime().install_tap(sink.clone())?;
    {
        let _span = predator_obs::span("interpret");
        w.run_tracked(&session, &cfg);
    }
    let meta = TraceMeta::capture(session.runtime(), session.heap());
    let summary = sink
        .finish(&meta)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "recorded {} events in {} chunks to {out} ({} bytes, {:.2} bytes/event)",
        summary.events,
        summary.chunks,
        summary.bytes,
        summary.bytes as f64 / summary.events.max(1) as f64
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .get(1)
        .ok_or("analyze: missing trace path")?;
    let det = detector_config(args)?;
    let shards = shard_count(args)?;
    let (base, size) = jsonl_range(args)?;
    let cfg = AnalyzeConfig::new(det, shards);
    if args.flags.iter().any(|f| f == "--verify-fixes") {
        // Verification replays the trace under each suggested fix, so the
        // events must be resident; the streaming path won't do.
        let (events, base, size, meta) = load_trace_events(args, path)?;
        let out = analyze_events(&events, base, size, meta.as_ref(), &cfg);
        let mut report = out.report;
        let verified = verify_fixes(&events, base, size, meta.as_ref(), &mut report, &cfg);
        if !output_format(args)?.is_machine() {
            println!(
                "analyzed {} events on {} of {} shard(s), {} line cluster(s); \
                 {verified} fix(es) verified by replay",
                out.events, out.shards_used, shards, out.clusters,
            );
        }
        return emit_report(args, &det, &report);
    }
    let out = analyze_file(Path::new(path), &cfg, base, size)?;
    warn_loss(path, &out.loss);
    if !output_format(args)?.is_machine() {
        println!(
            "analyzed {} events on {} of {} shard(s), {} line cluster(s){}",
            out.events,
            out.shards_used,
            shards,
            out.clusters,
            if out.meta_applied {
                ", attribution metadata applied"
            } else {
                ""
            }
        );
    }
    emit_report(args, &det, &out.report)
}

/// Loads a whole trace (either format) into memory: the what-if replay
/// re-analyzes the event list several times, so streaming buys nothing.
fn load_trace_events(
    args: &Args,
    path: &str,
) -> Result<(Vec<Access>, u64, u64, Option<TraceMeta>), String> {
    match sniff_format(Path::new(path))? {
        TraceFormat::Ptrace => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut r =
                TraceReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
            let base = r.base();
            let size = r.size();
            let events: Vec<Access> = (&mut r).collect();
            warn_loss(path, &r.stats());
            let meta = r.take_meta();
            Ok((events, base, size, meta))
        }
        TraceFormat::Jsonl => {
            let (base, size) = jsonl_range(args)?;
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut events = Vec::new();
            for a in JsonlIter::new(BufReader::new(file)) {
                events.push(a.map_err(|e| format!("bad trace: {e}"))?);
            }
            Ok((events, base, size, None))
        }
    }
}

/// Parses `--pad AT:BYTES[,AT:BYTES...]` into layout edits. `AT` accepts a
/// `0x` prefix for hex (addresses usually are); `BYTES` is decimal.
fn parse_pad_edits(spec: &str) -> Result<Vec<LayoutEdit>, String> {
    spec.split(',')
        .map(|part| {
            let (at, pad) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --pad entry `{part}` (want AT:BYTES)"))?;
            let at = if let Some(hex) = at.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                at.parse()
            }
            .map_err(|e| format!("bad --pad address `{at}`: {e}"))?;
            let pad: u64 = pad
                .parse()
                .map_err(|e| format!("bad --pad byte count `{pad}`: {e}"))?;
            Ok(LayoutEdit { at, pad })
        })
        .collect()
}

fn cmd_whatif(args: &Args) -> Result<ExitCode, String> {
    let path = args.positional.get(1).ok_or("whatif: missing trace path")?;
    let det = detector_config(args)?;
    let shards = shard_count(args)?;
    let (events, base, size, meta) = load_trace_events(args, path)?;
    let cfg = AnalyzeConfig::new(det, shards);
    let fix = match args.options.get("--pad") {
        Some(spec) => WhatIfFix::Edits(parse_pad_edits(spec)?),
        None => WhatIfFix::Suggested,
    };
    let out = whatif_events(&events, base, size, meta.as_ref(), &cfg, &fix);
    let format = output_format(args)?;
    let pcfg = policy_config(args)?;
    let eval = evaluate_report(&out.report, &pcfg);
    match format {
        Format::Json => println!("{}", out.report.to_json()),
        Format::Markdown => println!("{}", out.report.to_markdown()),
        Format::Sarif => println!("{}", to_sarif_string(&out.report, &eval, det.geometry)),
        Format::Html => println!("{}", to_html(&out.report, &eval, det.geometry)),
        Format::Text => print!("{}", out.to_text()),
    }
    if let Some(min) = args.options.get("--min-delta") {
        let min: u64 = min
            .parse()
            .map_err(|_| format!("invalid value for --min-delta: {min}"))?;
        let best = out.best_pct().unwrap_or(0);
        if best < min {
            eprintln!("WHATIF GATE: FAIL — best fix removes {best}% (< {min}%)");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!("WHATIF GATE: ok — best fix removes {best}% (>= {min}%)");
    }
    Ok(gate_exit(&eval))
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("trace: missing subcommand (info|cat)")?;
    let path = args
        .positional
        .get(2)
        .ok_or_else(|| format!("trace {sub}: missing trace path"))?;
    match sub {
        "info" => cmd_trace_info(args, path),
        "cat" => cmd_trace_cat(args, path),
        other => Err(format!("unknown trace subcommand `{other}` (info|cat)")),
    }
}

fn cmd_trace_info(args: &Args, path: &str) -> Result<(), String> {
    if sniff_format(Path::new(path))? != TraceFormat::Ptrace {
        return Err(format!(
            "{path}: not a .ptrace file (JSONL traces have no header; use `trace cat` or `wc -l`)"
        ));
    }
    // The footer index summarises without CRC-checking event payloads, so
    // --deep forces the full scan: the only way to surface mid-file
    // corruption in an otherwise intact-looking file.
    let info = if args.flags.iter().any(|f| f == "--deep") {
        read_info_scan(Path::new(path)).map_err(|e| format!("{path}: {e}"))?
    } else {
        read_info(Path::new(path)).map_err(|e| format!("{path}: {e}"))?
    };
    println!("{path}: .ptrace v{}", info.header.version);
    println!(
        "  range:   {:#x} .. {:#x} ({} bytes)",
        info.header.base,
        info.header.base + info.header.size,
        info.header.size
    );
    println!(
        "  events:  {} in {} event chunk(s) ({} chunk(s) total)",
        info.events, info.event_chunks, info.total_chunks
    );
    println!(
        "  size:    {} bytes ({:.2} bytes/event)",
        info.file_bytes,
        info.file_bytes as f64 / info.events.max(1) as f64
    );
    println!(
        "  footer:  {}",
        match (info.has_footer, info.via_index) {
            (true, true) => "intact (summarised via index, no scan)",
            (true, false) => "intact (index unusable, full scan)",
            (false, _) => "missing (file truncated; full scan)",
        }
    );
    match &info.meta {
        Some(m) => println!(
            "  meta:    {} global(s), {} heap object(s), {} app bytes live",
            m.globals.len(),
            m.objects.len(),
            m.app_live_bytes
        ),
        None => println!("  meta:    absent"),
    }
    // Corruption accounting is always printed in full — a zero is a
    // statement ("this scan saw no damage"), not an omission. Via the
    // index, zeros only cover what the index can see.
    println!(
        "  loss:    {} chunk(s) skipped, {} record(s) lost, {} byte(s) skipped, truncated: {}{}",
        info.loss.chunks_skipped,
        info.loss.records_lost,
        info.loss.bytes_skipped,
        if info.loss.truncated { "yes" } else { "no" },
        if info.via_index {
            " (index-derived; --deep CRC-checks every chunk)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_trace_cat(args: &Args, path: &str) -> Result<(), String> {
    use std::io::Write as _;
    let limit: u64 = num(args, "--limit", u64::MAX)?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut emit = |a: &predator_sim::Access, n: u64| -> Result<bool, String> {
        if n >= limit {
            return Ok(false);
        }
        serde_json::to_writer(&mut out, a).map_err(|e| e.to_string())?;
        out.write_all(b"\n").map_err(|e| e.to_string())?;
        Ok(true)
    };
    let mut n = 0u64;
    match sniff_format(Path::new(path))? {
        TraceFormat::Ptrace => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let mut r =
                TraceReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
            for a in &mut r {
                if !emit(&a, n)? {
                    break;
                }
                n += 1;
            }
            if n < limit {
                warn_loss(path, &r.stats());
            }
        }
        TraceFormat::Jsonl => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            for a in JsonlIter::new(BufReader::new(file)) {
                let a = a.map_err(|e| format!("bad trace: {e}"))?;
                if !emit(&a, n)? {
                    break;
                }
                n += 1;
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

/// Short source label for a finding's object (first allocation frame,
/// global name, or hex address) — the `explain` header form.
fn site_label(site: &SiteKind, start: u64) -> String {
    match site {
        SiteKind::Heap { callsite, .. } => callsite
            .frames
            .first()
            .map(|fr| fr.to_string())
            .unwrap_or_else(|| format!("{start:#x}")),
        SiteKind::Global { name } => name.clone(),
        SiteKind::Unknown => format!("{start:#x}"),
    }
}

/// `explain`'s line operand: a decimal global line index, or a 0x-prefixed
/// byte address mapped to its 64-byte line.
fn parse_line_arg(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
            .map(|addr| addr >> 6)
            .map_err(|e| format!("bad address {s}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad line index {s}: {e}"))
    }
}

fn fmt_word(w: u8) -> String {
    if w == u8::MAX {
        "?".to_string()
    } else {
        w.to_string()
    }
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("explain: missing report path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: Report =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not a JSON report: {e}"))?;

    let line = match args.positional.get(2) {
        Some(s) => parse_line_arg(s)?,
        // Default to the top finding's hottest line: the one its most
        // recent invalidation trace names, else its first timeline record.
        None => match report.findings.iter().find_map(|f| {
            f.invalidation_traces
                .last()
                .map(|t| t.line)
                .or_else(|| f.timeline.first().map(|r| r.line))
        }) {
            Some(l) => l,
            None => {
                println!("No flight-recorder data embedded in {path}.");
                println!(
                    "Re-run the workload with the recorder on (the default unless \
                     --no-recorder; unavailable in obs-off builds)."
                );
                return Ok(());
            }
        },
    };

    // Gather the line's records across all findings (a line can back both an
    // observed and a predicted finding), deduplicating shared records.
    let mut recs: Vec<&TimelineRecord> = report
        .findings
        .iter()
        .flat_map(|f| f.timeline.iter())
        .filter(|r| r.line == line)
        .collect();
    recs.sort_by_key(|r| (r.seq, r.tid.index(), r.word));
    recs.dedup_by(|a, b| a == b);
    if recs.is_empty() {
        println!("No flight-recorder records for line {line}.");
        let mut avail: Vec<u64> = report
            .findings
            .iter()
            .flat_map(|f| f.timeline.iter().map(|r| r.line))
            .collect();
        avail.sort_unstable();
        avail.dedup();
        if !avail.is_empty() {
            let lines: Vec<String> = avail.iter().map(u64::to_string).collect();
            println!("Lines with recorded data: {}", lines.join(", "));
        }
        return Ok(());
    }

    // Header: prefer the observed finding for the line (directly witnessed)
    // over predicted findings sharing its records.
    let covers = |f: &&predator_core::Finding| f.timeline.iter().any(|r| r.line == line);
    let owner = report
        .findings
        .iter()
        .filter(covers)
        .find(|f| f.kind == predator_core::FindingKind::Observed)
        .or_else(|| report.findings.iter().find(covers));
    println!(
        "Timeline for cache line {} (bytes {:#x}..{:#x}):",
        line,
        line * 64,
        line * 64 + 64
    );
    if let Some(f) = owner {
        println!(
            "  object: {} — {}, {} ({} invalidations total)",
            site_label(&f.object.site, f.object.start),
            f.class,
            f.kind,
            f.invalidations
        );
    }
    println!();

    // Lanes: every thread that issued a record or was invalidated.
    let mut tids: Vec<usize> = recs
        .iter()
        .flat_map(|r| {
            let victim = match r.op {
                TimelineOp::Invalidation { victim, .. } => Some(victim.index()),
                _ => None,
            };
            std::iter::once(r.tid.index()).chain(victim)
        })
        .collect();
    tids.sort_unstable();
    tids.dedup();

    // One row per (seq, issuer); multi-victim invalidations share a row.
    struct Row {
        seq: u64,
        tid: usize,
        cell: String,
        notes: Vec<String>,
    }
    let mut rows: Vec<Row> = Vec::new();
    for r in &recs {
        let tid = r.tid.index();
        match r.op {
            TimelineOp::Read => {
                rows.push(Row {
                    seq: r.seq,
                    tid,
                    cell: format!("r{}", r.word),
                    notes: vec![],
                });
            }
            TimelineOp::Write => {
                rows.push(Row {
                    seq: r.seq,
                    tid,
                    cell: format!("W{}", r.word),
                    notes: vec![],
                });
            }
            TimelineOp::Invalidation {
                victim,
                victim_word,
            } => {
                let note = format!(
                    "invalidated t{}'s copy (last word {})",
                    victim.index(),
                    fmt_word(victim_word)
                );
                match rows.last_mut() {
                    Some(last) if last.seq == r.seq && last.tid == tid => {
                        last.notes.push(note);
                    }
                    _ => {
                        rows.push(Row {
                            seq: r.seq,
                            tid,
                            cell: format!("W{}!", r.word),
                            notes: vec![note],
                        });
                    }
                }
            }
        }
    }

    const LANE: usize = 6;
    let mut hdr = format!("  {:>8}", "seq");
    for t in &tids {
        hdr.push_str(&format!("  {:<LANE$}", format!("t{t}")));
    }
    println!("{hdr}");
    println!("  {}", "-".repeat(hdr.len()));
    for row in rows {
        let mut out = format!("  {:>8}", row.seq);
        for t in &tids {
            let cell = if *t == row.tid { row.cell.as_str() } else { "" };
            out.push_str(&format!("  {cell:<LANE$}"));
        }
        if !row.notes.is_empty() {
            out.push_str(&format!("  {}", row.notes.join("; ")));
        }
        println!("{}", out.trim_end());
    }
    println!("\n  (rN = read, WN = write, WN! = invalidating write; N = word offset)");

    if let Some(f) = owner {
        let traces: Vec<_> = f
            .invalidation_traces
            .iter()
            .filter(|t| t.line == line)
            .collect();
        if !traces.is_empty() {
            println!("\nCausal traces (last {}):", traces.len());
            for t in traces {
                println!("  {t}");
            }
        }
    }
    Ok(())
}

/// `fleet`'s shard count: same default and validation as `analyze`.
fn shard_count(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let shards: usize = num(args, "--shards", default)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(shards)
}

fn cmd_fleet(args: &Args) -> Result<ExitCode, String> {
    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("fleet: missing subcommand (ingest|report|trend|compact)")?;
    let corpus = args
        .options
        .get("--corpus")
        .ok_or_else(|| format!("fleet {sub}: missing --corpus <dir>"))?;
    let dir = Path::new(corpus);
    match sub {
        "ingest" => cmd_fleet_ingest(args, dir).map(|()| ExitCode::SUCCESS),
        "report" => cmd_fleet_report(args, dir),
        "trend" => cmd_fleet_trend(args, dir),
        "compact" => cmd_fleet_compact(args, dir).map(|()| ExitCode::SUCCESS),
        other => Err(format!(
            "unknown fleet subcommand `{other}` (ingest|report|trend|compact)"
        )),
    }
}

fn cmd_fleet_ingest(args: &Args, dir: &Path) -> Result<(), String> {
    let paths: Vec<std::path::PathBuf> = args.positional[2..]
        .iter()
        .map(std::path::PathBuf::from)
        .collect();
    if paths.is_empty() {
        return Err("fleet ingest: no trace files given".into());
    }
    let cfg = AnalyzeConfig::new(detector_config(args)?, shard_count(args)?);
    let outcomes = predator_fleet::ingest(dir, &paths, &cfg)?;
    for o in &outcomes {
        if o.added {
            println!(
                "ingested {}: {} event(s), {} finding(s), {} bytes",
                o.id, o.events, o.findings, o.bytes
            );
        } else {
            println!("skipped {}: already in corpus", o.id);
        }
    }
    let m = predator_fleet::Manifest::load_required(dir)?;
    println!(
        "corpus {}: {} run(s), {} event(s)",
        dir.display(),
        m.runs(),
        m.events()
    );
    Ok(())
}

fn cmd_fleet_report(args: &Args, dir: &Path) -> Result<ExitCode, String> {
    let m = predator_fleet::Manifest::load_required(dir)?;
    // --run <id>: one member's stored per-run report, in the same formats
    // `analyze` emits (the corpus keeps findings+stats verbatim; the obs
    // section is process-global and freshly captured, as everywhere else).
    if let Some(id) = args.options.get("--run") {
        let t = m.find(id).ok_or_else(|| {
            format!(
                "fleet report: no run `{id}` in {} (see `fleet report` for member ids)",
                dir.display()
            )
        })?;
        warn_loss(&dir.join(&t.file).display().to_string(), &t.loss);
        let report = Report {
            findings: t.findings.clone(),
            stats: t.stats,
            obs: ObsSnapshot::capture(),
        };
        return emit_report(args, &m.config, &report);
    }
    let r = predator_fleet::build_fleet_report(&m);
    match output_format(args)? {
        Format::Json => println!("{}", r.to_json()),
        Format::Text | Format::Markdown => print!("{r}"),
        Format::Sarif | Format::Html => {
            return Err(
                "fleet report: --format sarif|html renders per-run reports only \
                 (add --run <id>)"
                    .into(),
            )
        }
    }
    // The merged aggregates gate through the same classify → suppress →
    // baseline → gate pipeline as live findings; per-run *mean*
    // invalidations keep the policy thresholds scale-free in corpus size.
    let pcfg = policy_config(args)?;
    let eval = evaluate_views(
        r.aggregates.iter().map(|a| {
            let runs = a.runs.max(1);
            FindingView {
                key: &a.key,
                kind: &a.kind,
                class: a.class,
                invalidations: a.total_invalidations / runs,
                accesses: a.total_accesses / runs,
                object_size: a.object_size,
            }
        }),
        &pcfg,
    );
    Ok(gate_exit(&eval))
}

fn cmd_fleet_trend(args: &Args, dir: &Path) -> Result<ExitCode, String> {
    let baseline = args
        .options
        .get("--baseline")
        .ok_or("fleet trend: missing --baseline <corpus dir or corpus.json>")?;
    // Accept the corpus directory or its manifest file interchangeably.
    let bpath = Path::new(baseline);
    let bdir = if bpath.is_file() {
        bpath
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or(Path::new("."))
    } else {
        bpath
    };
    let tolerance: f64 = num(args, "--tolerance", predator_fleet::DEFAULT_TOLERANCE)?;
    if tolerance.is_nan() || tolerance < 0.0 {
        return Err(format!("--tolerance must be >= 0, got {tolerance}"));
    }
    let base = predator_fleet::build_fleet_report(&predator_fleet::Manifest::load_required(bdir)?);
    let cur = predator_fleet::build_fleet_report(&predator_fleet::Manifest::load_required(dir)?);
    let t = predator_fleet::trend(&base, &cur, tolerance);
    if args.flags.iter().any(|f| f == "--json") {
        println!("{}", t.to_json());
    } else {
        print!("{t}");
    }
    if args.flags.iter().any(|f| f == "--fail-on-regression") {
        if t.has_regressions() {
            // Gate failure, not a usage error: the code travels back through
            // main so Drop guards still flush (same contract as `diff`).
            eprintln!(
                "GATE: FAIL — {} new, {} regressed callsite(s)",
                t.count(predator_fleet::TrendStatus::New),
                t.count(predator_fleet::TrendStatus::Regressed)
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("GATE: ok (tolerance {:.0}%)", tolerance * 100.0);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fleet_compact(args: &Args, dir: &Path) -> Result<(), String> {
    let keep: usize = args
        .options
        .get("--keep")
        .ok_or("fleet compact: missing --keep <N>")?
        .parse()
        .map_err(|_| "invalid value for --keep".to_string())?;
    let out = predator_fleet::compact(dir, keep)?;
    println!(
        "compacted {}: dropped {} raw trace(s), kept {}, reclaimed {} bytes",
        dir.display(),
        out.dropped,
        out.kept,
        out.bytes_reclaimed
    );
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<ExitCode, String> {
    let load = |idx: usize, what: &str| -> Result<Report, String> {
        let path = args
            .positional
            .get(idx)
            .ok_or_else(|| format!("diff: missing {what} report path"))?;
        load_report(path)
    };
    let old = load(1, "old")?;
    let new = load(2, "new")?;
    let tolerance: f64 = num(args, "--tolerance", 0.5f64)?;
    if tolerance.is_nan() || tolerance < 0.0 {
        return Err(format!("--tolerance must be >= 0, got {tolerance}"));
    }
    let diff = diff_reports(&old, &new, tolerance);
    print!("{diff}");
    if diff.has_regressions() {
        // Gate failure, not a usage error: no USAGE dump — and the failure
        // exit code travels back through main so Drop guards (event sink,
        // timeline) still flush.
        eprintln!("GATE: FAIL — {} new finding(s)", diff.appeared.len());
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_baseline(args: &Args) -> Result<ExitCode, String> {
    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("baseline: missing subcommand (write|diff)")?;
    match sub {
        "write" => {
            let path = args
                .positional
                .get(2)
                .ok_or("baseline write: missing <report.json>")?;
            let out = args
                .options
                .get("--out")
                .ok_or("baseline write: missing output path (-o <baseline.json>)")?;
            let b = Baseline::from_report(&load_report(path)?);
            b.save(Path::new(out))?;
            println!(
                "baseline {out}: {} callsite key(s) from {path}",
                b.entries.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let bpath = args
                .positional
                .get(2)
                .ok_or("baseline diff: missing <baseline.json>")?;
            let rpath = args
                .positional
                .get(3)
                .ok_or("baseline diff: missing <report.json>")?;
            let tolerance: f64 = num(args, "--tolerance", 0.5f64)?;
            if tolerance.is_nan() || tolerance < 0.0 {
                return Err(format!("--tolerance must be >= 0, got {tolerance}"));
            }
            let b = Baseline::load(Path::new(bpath))?;
            let entries = b.diff(&load_report(rpath)?, tolerance);
            use predator_policy::Delta;
            let mut new_keys = 0usize;
            for e in &entries {
                let label = match e.delta {
                    Delta::Added => {
                        new_keys += 1;
                        "NEW"
                    }
                    Delta::Removed => "FIXED",
                    Delta::Increased => "WORSE",
                    Delta::Decreased => "BETTER",
                    Delta::Steady => "steady",
                };
                println!(
                    "  {label:<7} {:>12} -> {:>12}  {}",
                    e.before as u64, e.after as u64, e.key
                );
            }
            if entries.is_empty() {
                println!("  (baseline and report agree: no findings either side)");
            }
            if new_keys > 0 {
                eprintln!("GATE: FAIL — {new_keys} callsite(s) not in baseline");
                return Ok(ExitCode::FAILURE);
            }
            println!("GATE: ok (tolerance {:.0}%)", tolerance * 100.0);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown baseline subcommand `{other}` (write|diff)"
        )),
    }
}

fn cmd_bench_diff(args: &Args) -> Result<ExitCode, String> {
    use predator_bench::telemetry::{
        diff_reports, diff_values, schema_of, BenchReport, Value, SCHEMA,
    };
    let read = |idx: usize, what: &str| -> Result<(String, String), String> {
        let path = args
            .positional
            .get(idx)
            .ok_or_else(|| format!("bench-diff: missing {what} telemetry path"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Ok((path.clone(), text))
    };
    let (old_path, old_text) = read(1, "old")?;
    let (new_path, new_text) = read(2, "new")?;
    let tolerance: f64 = num(args, "--tolerance", 0.5f64)?;
    if tolerance.is_nan() || tolerance < 0.0 {
        return Err(format!("--tolerance must be >= 0, got {tolerance}"));
    }
    let sniff = |path: &str, text: &str| -> Result<(Value, String), String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("{path}: not a telemetry file: {e}"))?;
        let schema = schema_of(&v)
            .ok_or_else(|| format!("{path}: no `schema` tag — not a BENCH_*.json telemetry file"))?
            .to_string();
        Ok((v, schema))
    };
    let (old_value, old_schema) = sniff(&old_path, &old_text)?;
    let (new_value, new_schema) = sniff(&new_path, &new_text)?;
    if old_schema != new_schema {
        return Err(format!(
            "bench-diff: schema mismatch — cannot compare `{old_schema}` against `{new_schema}`"
        ));
    }
    // The native workload/hot-path schema keeps its exact typed comparison;
    // every other schema (fleet bench, future emitters) goes through
    // schema-agnostic numeric key discovery.
    let diff = if old_schema == SCHEMA {
        let load = |path: &str, text: &str| -> Result<BenchReport, String> {
            let report: BenchReport = serde_json::from_str(text)
                .map_err(|e| format!("{path}: not a bench report: {e}"))?;
            report.check_schema().map_err(|e| format!("{path}: {e}"))?;
            Ok(report)
        };
        diff_reports(
            &load(&old_path, &old_text)?,
            &load(&new_path, &new_text)?,
            tolerance,
        )
    } else {
        diff_values(&old_value, &new_value, tolerance)
    };
    print!("{diff}");
    if diff.has_regressions() {
        eprintln!(
            "GATE: FAIL — bench regression beyond {:.0}% tolerance",
            tolerance * 100.0
        );
        return Ok(ExitCode::FAILURE);
    }
    println!("GATE: ok (tolerance {:.0}%)", tolerance * 100.0);
    Ok(ExitCode::SUCCESS)
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("profile: missing program path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut module = parse_module(&text).map_err(|e| format!("parse error: {e}"))?;
    instrument_module(&mut module, &InstrumentOptions::default());

    let threads: usize = num(args, "--threads", 2usize)?;
    let iters: i64 = num(args, "--iters", 10_000i64)?;
    let stride: u64 = num(args, "--stride", 8u64)?;
    let quantum: u64 = num(args, "--quantum", 7u64)?;
    let period: u64 = num(args, "--profile-period", 64u64)?;
    if period == 0 {
        return Err("--profile-period must be at least 1".into());
    }
    let top: usize = num(args, "--top", 20usize)?;
    let det = detector_config(args)?;

    if predator_obs::disabled() {
        return Err("this binary was built with obs-off: the profiler is compiled out".into());
    }
    predator_obs::profiler().install(period);

    let space = SimSpace::new(1 << 20);
    let rt = Predator::for_space(det, &space);
    let machine = Machine::new(&module, &space, &rt).map_err(|e| e.to_string())?;
    let specs: Vec<ThreadSpec> = (0..threads)
        .map(|t| ThreadSpec {
            tid: ThreadId(t as u16),
            function: "worker".into(),
            args: vec![(space.base() + t as u64 * stride) as i64, iters],
        })
        .collect();
    machine
        .run(&specs, StepSchedule::RoundRobin { quantum }, 1 << 32)
        .map_err(|e| e.to_string())?;

    let prof = predator_obs::profiler();
    let attributed = prof.attributed();
    let stacks = prof.take();
    let total = predator_obs::global()
        .counter("interp_instructions_total")
        .get();

    println!(
        "PROFILE {path} — {threads} threads x {iters} iters, sampling every {period} instructions"
    );
    println!();
    println!("  {:>6}  {:>12}  FRAME (self)", "%", "INSTS");
    for (frame, weight) in predator_obs::profile::top_leaves(&stacks, top) {
        println!(
            "  {:>5.1}%  {weight:>12}  {frame}",
            weight as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!();
    let report = build_report(&rt, None);
    println!(
        "attributed {attributed} of {total} interpreted instructions ({:.1}%); \
         {} finding(s) — run `predator ir` for the full report",
        attributed as f64 / total.max(1) as f64 * 100.0,
        report.findings.len()
    );

    if let Some(out) = args.options.get("--out") {
        let folded = predator_obs::profile::collapsed(&stacks);
        std::fs::write(out, folded).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("collapsed stacks written to {out} (feed to flamegraph tooling)");
    }
    Ok(())
}

/// Normalizes a `--url`/ADDR operand to the bare `host:port` the obs HTTP
/// client expects.
fn norm_addr(url: &str) -> String {
    url.trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

/// HTTP client timeout for live scrapes (`stats --url`, `alerts eval`).
const SCRAPE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Scrapes a live serve instance's /snapshot and returns the scrape epoch
/// plus the embedded cumulative [`ObsSnapshot`].
fn scrape_snapshot(addr: &str, token: Option<&str>) -> Result<(u64, ObsSnapshot), String> {
    use serde::{Deserialize as _, Value};
    let (status, body) = predator_obs::http_get_auth(addr, "/snapshot", SCRAPE_TIMEOUT, token)
        .map_err(|e| format!("cannot scrape {addr}/snapshot: {e}"))?;
    if status != 200 {
        return Err(format!("{addr}/snapshot returned HTTP {status}"));
    }
    let v: Value =
        serde_json::from_str(&body).map_err(|e| format!("{addr}/snapshot: not JSON: {e}"))?;
    let epoch = match v.field("epoch") {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        _ => 0,
    };
    let cum = v.field("cumulative");
    if matches!(cum, Value::Null) {
        return Err(format!("{addr}/snapshot: no `cumulative` section"));
    }
    let snap = ObsSnapshot::from_value(cum)
        .map_err(|e| format!("{addr}/snapshot: bad cumulative snapshot: {e}"))?;
    Ok((epoch, snap))
}

/// Re-types a report's embedded [`ObsSnapshot`] as the obs crate's raw
/// snapshot so it can be fed through the tsdb/alerting machinery.
fn raw_snapshot(s: &ObsSnapshot) -> predator_obs::Snapshot {
    predator_obs::Snapshot {
        counters: s
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect(),
        gauges: s.gauges.iter().map(|g| (g.name.clone(), g.value)).collect(),
        histograms: s
            .histograms
            .iter()
            .map(|h| predator_obs::HistogramSnapshot {
                name: h.name.clone(),
                count: h.count,
                sum: h.sum,
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| predator_obs::Bucket {
                        lo: b.lo,
                        count: b.count,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Reads an [`ObsSnapshot`] from a file (`-` = stdin): either a bare
/// snapshot (from `--metrics`) or a full `--json` report (whose `obs`
/// field embeds one).
fn snapshot_from_file(path: &str) -> Result<ObsSnapshot, String> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    serde_json::from_str::<ObsSnapshot>(&text)
        .or_else(|_| serde_json::from_str::<Report>(&text).map(|r| r.obs))
        .map_err(|e| format!("{path}: neither a snapshot nor a report: {e}"))
}

fn cmd_alerts(args: &Args) -> Result<ExitCode, String> {
    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("alerts: missing subcommand (lint|eval)")?;
    let path = args
        .positional
        .get(2)
        .ok_or_else(|| format!("alerts {sub}: missing rules path"))?;
    // Rule errors are lint findings, not usage errors: print them without
    // the USAGE dump and exit through the gate code path.
    let rules = match serve::load_rules(path) {
        Ok(rules) => rules,
        Err(e) => {
            eprintln!("{e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    match sub {
        "lint" => {
            println!("{path}: {} rule(s) ok", rules.len());
            for r in &rules {
                let hold = if r.for_ms == 0 {
                    String::new()
                } else if r.for_ms % 1000 == 0 {
                    format!("  for: {}s", r.for_ms / 1000)
                } else {
                    format!("  for: {}ms", r.for_ms)
                };
                println!(
                    "  {:<28} {:<8} {}{hold}",
                    r.name,
                    r.severity.as_str(),
                    r.expr.render()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "eval" => cmd_alerts_eval(args, &rules),
        other => Err(format!("unknown alerts subcommand `{other}` (lint|eval)")),
    }
}

/// `alerts eval` — one-shot rule evaluation against a snapshot source.
/// `for:` hysteresis is ignored (a single evaluation has no history to
/// hold against); the exit code is the gate: nonzero when any condition
/// currently holds.
fn cmd_alerts_eval(args: &Args, rules: &[predator_obs::Rule]) -> Result<ExitCode, String> {
    use predator_obs::alerts::Expr;
    let src = args
        .positional
        .get(3)
        .ok_or("alerts eval: missing <report.json|snapshot.json|ADDR>")?;
    let mut db = predator_obs::Tsdb::default();
    let now_ms;
    if src == "-" || Path::new(src).is_file() {
        // A recorded report/snapshot is one instant: threshold rules
        // evaluate, rate() rules read as "no data" (never met).
        db.sample(&raw_snapshot(&snapshot_from_file(src)?), 0);
        now_ms = 0;
        println!("evaluating {} rule(s) against {src}", rules.len());
    } else {
        // A live instance: two scrapes a second apart give rate() a
        // window while threshold rules read the newest sample.
        let addr = norm_addr(src);
        let token = args.options.get("--auth-token").map(String::as_str);
        let t0 = std::time::Instant::now();
        let (_, first) = scrape_snapshot(&addr, token)?;
        db.sample(&raw_snapshot(&first), 0);
        std::thread::sleep(std::time::Duration::from_secs(1));
        let (epoch, second) = scrape_snapshot(&addr, token)?;
        now_ms = t0.elapsed().as_millis() as u64;
        db.sample(&raw_snapshot(&second), now_ms);
        println!(
            "evaluating {} rule(s) against live {addr} (scrape epoch {epoch})",
            rules.len()
        );
    }
    println!(
        "  {:<28} {:<8} {:<44} {:>14}  MET",
        "ALERT", "SEV", "CONDITION", "VALUE"
    );
    let (mut met, mut nodata) = (0usize, 0usize);
    for r in rules {
        let v = r.expr.value(&db, now_ms);
        let holds = match (&r.expr, v) {
            (_, None) => false,
            (Expr::Threshold { cmp, value, .. }, Some(lhs))
            | (Expr::Rate { cmp, value, .. }, Some(lhs)) => cmp.eval(lhs, *value),
        };
        let shown = match v {
            Some(x) => fmt_value(x),
            None => {
                nodata += 1;
                "no data".to_string()
            }
        };
        if holds {
            met += 1;
        }
        println!(
            "  {:<28} {:<8} {:<44} {:>14}  {}",
            r.name,
            r.severity.as_str(),
            r.expr.render(),
            shown,
            if holds { "YES" } else { "no" }
        );
    }
    println!(
        "{met} of {} condition(s) met{}",
        rules.len(),
        if nodata > 0 {
            format!(" ({nodata} with no data)")
        } else {
            String::new()
        }
    );
    if met > 0 {
        eprintln!("GATE: FAIL — {met} alert condition(s) hold");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Compact numeric rendering for alert values and sparkline legends.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// The metric set `stats --watch` plots; series a mode never registers are
/// skipped, so the dashboard degrades gracefully across serve modes.
const WATCH_SERIES: &[&str] = &[
    "predator_watchdog_overhead_ppm",
    "predator_sampling_rate_ppm",
    "predator_backoff_tier",
    "predator_report_findings",
    "alloc_live_bytes",
    "runtime_accesses_total",
    "serve_requests_total",
    "fleet_traces_ingested_total",
];

/// Unicode eighth-block sparkline, min..max scaled per series.
fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max <= min {
        // Flat or empty series (empty folds to +inf..-inf) — no spread.
        return vals.iter().map(|_| BARS[0]).collect();
    }
    vals.iter()
        .map(|v| BARS[(((v - min) / (max - min)) * 7.0).round() as usize % 8])
        .collect()
}

/// Renders one `stats --watch` frame: liveness header, alert states, and
/// sparkline history for [`WATCH_SERIES`].
fn render_watch_frame(addr: &str, token: Option<&str>, secs: u64) -> Result<String, String> {
    use serde::Value;
    use std::fmt::Write as _;
    let get = |path: &str| -> Result<(u16, String), String> {
        predator_obs::http_get_auth(addr, path, SCRAPE_TIMEOUT, token)
            .map_err(|e| format!("cannot scrape {addr}{path}: {e}"))
    };
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    };
    let mut out = String::new();

    let (status, body) = get("/health")?;
    if status != 200 {
        return Err(format!("{addr}/health returned HTTP {status}"));
    }
    let h: Value =
        serde_json::from_str(&body).map_err(|e| format!("{addr}/health: not JSON: {e}"))?;
    let _ = writeln!(
        out,
        "predator serve @ http://{addr} — mode {}, up {}s, {} passes{}",
        match h.field("mode") {
            Value::Str(s) => s.as_str(),
            _ => "?",
        },
        num(h.field("uptime_seconds")).unwrap_or(0.0) as u64,
        num(h.field("passes")).unwrap_or(0.0) as u64,
        if secs > 0 {
            format!(" (refresh {secs}s, Ctrl-C stops)")
        } else {
            String::new()
        }
    );

    let (status, body) = get("/alerts")?;
    if status == 404 {
        let _ = writeln!(out, "\nalerts: none (serve started without --rules)");
    } else if status != 200 {
        return Err(format!("{addr}/alerts returned HTTP {status}"));
    } else {
        let a: Value =
            serde_json::from_str(&body).map_err(|e| format!("{addr}/alerts: not JSON: {e}"))?;
        let _ = writeln!(
            out,
            "\nalerts: {} firing, {} pending, {} transition(s)",
            num(a.field("firing")).unwrap_or(0.0) as u64,
            num(a.field("pending")).unwrap_or(0.0) as u64,
            num(a.field("transitions_total")).unwrap_or(0.0) as u64
        );
        for al in a.field("alerts").as_seq().unwrap_or(&[]) {
            let state = match al.field("state") {
                Value::Str(s) => s.clone(),
                _ => "?".into(),
            };
            let mark = match state.as_str() {
                "firing" => "!!",
                "pending" => " ~",
                _ => "  ",
            };
            let name = match al.field("name") {
                Value::Str(s) => s.clone(),
                _ => "?".into(),
            };
            let sev = match al.field("severity") {
                Value::Str(s) => s.clone(),
                _ => "?".into(),
            };
            let expr = match al.field("expr") {
                Value::Str(s) => s.clone(),
                _ => String::new(),
            };
            let val = match num(al.field("value")) {
                Some(v) => fmt_value(v),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                " {mark} {state:<8} {name:<28} {sev:<8} {expr}  [{val}]"
            );
        }
    }

    let _ = writeln!(out);
    for metric in WATCH_SERIES {
        let (status, body) = get(&format!("/query?metric={metric}&range=300s"))?;
        if status == 404 {
            continue; // series not registered in this serve mode
        }
        if status != 200 {
            return Err(format!("{addr}/query returned HTTP {status}"));
        }
        let q: Value =
            serde_json::from_str(&body).map_err(|e| format!("{addr}/query: not JSON: {e}"))?;
        let kind = match q.field("kind") {
            Value::Str(s) => s.clone(),
            _ => "gauge".into(),
        };
        let mut vals: Vec<f64> = q
            .field("points")
            .as_seq()
            .unwrap_or(&[])
            .iter()
            .filter_map(|p| p.as_seq().and_then(|xy| xy.get(1)).and_then(num))
            .collect();
        if vals.is_empty() {
            continue;
        }
        // Counters plot per-interval deltas (the rate's shape); gauges plot
        // levels. Either way the legend shows the newest raw value.
        let last = *vals.last().unwrap();
        if kind == "counter" && vals.len() > 1 {
            vals = vals.windows(2).map(|w| w[1] - w[0]).collect();
        }
        const WIDTH: usize = 48;
        if vals.len() > WIDTH {
            vals.drain(..vals.len() - WIDTH);
        }
        let _ = writeln!(
            out,
            "  {metric:<34} {:<WIDTH$}  last {} ({kind})",
            sparkline(&vals),
            fmt_value(last)
        );
    }
    Ok(out)
}

/// `stats --url --watch <secs>`: redraw the dashboard until interrupted;
/// 0 renders a single frame without clearing (script/CI mode).
fn watch_loop(addr: &str, token: Option<&str>, secs: u64) -> Result<(), String> {
    loop {
        let frame = render_watch_frame(addr, token, secs)?;
        if secs == 0 {
            print!("{frame}");
            return Ok(());
        }
        // Clear + home, then the frame in one write: no visible flicker.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_secs(secs));
        if predator_core::shutdown::requested() {
            return Ok(());
        }
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    // --url scrapes a live `predator serve` instance's /snapshot endpoint
    // and renders its embedded cumulative ObsSnapshot; with --watch it
    // becomes a refreshing dashboard over /alerts and /query instead.
    if let Some(url) = args.options.get("--url") {
        let addr = norm_addr(url);
        let token = args.options.get("--auth-token").map(String::as_str);
        if let Some(watch) = args.options.get("--watch") {
            let secs: u64 = watch
                .parse()
                .map_err(|_| format!("invalid value for --watch: {watch}"))?;
            return watch_loop(&addr, token, secs);
        }
        let (epoch, snap) = scrape_snapshot(&addr, token)?;
        println!("live snapshot from {addr} (scrape epoch {epoch})");
        print!("{}", snap.render_table());
        return Ok(());
    }
    let path = args
        .positional
        .get(1)
        .ok_or("stats: missing snapshot path (or --url <addr>)")?;
    print!("{}", snapshot_from_file(path)?.render_table());
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Dropped last thing before exit: flushes the event sink and writes the
    // `--trace-timeline` file on every path out of main, including gate
    // failures and panics. Commands must therefore *return* their exit code
    // rather than calling `std::process::exit` (which skips destructors).
    let timeline_path = install_timeline(&args);
    let _flush = FlushGuard {
        timeline_path: timeline_path.clone(),
    };
    install_signal_handlers();
    // `serve` polls the shutdown flag itself and exits its loop gracefully
    // (FlushGuard then runs on the normal path); every other command gets
    // the flush-then-exit watcher.
    if args.positional.first().map(String::as_str) != Some("serve") {
        arm_interrupt_watcher(timeline_path);
    }
    let result = install_trace_sink(&args)
        .and_then(|()| install_recorder(&args))
        .and_then(|()| {
            match args.positional.first().map(String::as_str) {
                Some("list") => {
                    cmd_list();
                    Ok(ExitCode::SUCCESS)
                }
                Some("run") => cmd_run(&args),
                Some("native") => cmd_native(&args).map(|()| ExitCode::SUCCESS),
                Some("record") => cmd_record(&args).map(|()| ExitCode::SUCCESS),
                Some("analyze") => cmd_analyze(&args),
                Some("whatif") => cmd_whatif(&args),
                Some("trace") => cmd_trace(&args).map(|()| ExitCode::SUCCESS),
                Some("fleet") => cmd_fleet(&args),
                Some("replay") => cmd_replay(&args),
                Some("ir") => cmd_ir(&args),
                Some("profile") => cmd_profile(&args).map(|()| ExitCode::SUCCESS),
                Some("explain") => cmd_explain(&args).map(|()| ExitCode::SUCCESS),
                Some("diff") => cmd_diff(&args),
                Some("baseline") => cmd_baseline(&args),
                Some("bench-diff") => cmd_bench_diff(&args),
                Some("serve") => serve::cmd_serve(&args).map(|()| ExitCode::SUCCESS),
                Some("alerts") => cmd_alerts(&args),
                Some("stats") => cmd_stats(&args).map(|()| ExitCode::SUCCESS),
                Some("help") | None => {
                    println!("{USAGE}");
                    Ok(ExitCode::SUCCESS)
                }
                Some(other) => Err(format!("unknown command `{other}`")),
            }
            .and_then(|code| emit_metrics(&args).map(|()| code))
        });
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Args {
        parse_args(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_positionals_flags_and_options() {
        let a = args(&["run", "histogram", "--fixed", "--threads", "8", "--json"]);
        assert_eq!(a.positional, vec!["run", "histogram"]);
        assert!(a.flags.contains(&"--fixed".to_string()));
        assert_eq!(a.options.get("--threads"), Some(&"8".to_string()));
    }

    #[test]
    fn missing_option_value_is_an_error() {
        let raw: Vec<String> = vec!["run".into(), "--threads".into()];
        assert!(parse_args(&raw).is_err());
    }

    #[test]
    fn detector_config_applies_flags() {
        let a = args(&["run", "x", "--no-prediction", "--sensitive"]);
        let det = detector_config(&a).unwrap();
        assert!(!det.prediction);
        assert_eq!(det.report_threshold, 1);
    }

    #[test]
    fn tracking_mode_flag_selects_mode() {
        use predator_core::TrackingMode;
        let a = args(&["run", "x"]);
        assert_eq!(
            detector_config(&a).unwrap().tracking_mode,
            TrackingMode::Precise
        );
        let a = args(&["run", "x", "--tracking-mode", "relaxed"]);
        assert_eq!(
            detector_config(&a).unwrap().tracking_mode,
            TrackingMode::Relaxed
        );
        let a = args(&["run", "x", "--tracking-mode", "eventual"]);
        let err = detector_config(&a).unwrap_err();
        assert!(err.contains("tracking mode"), "unexpected error: {err}");
    }

    #[test]
    fn sampling_rate_validation() {
        let a = args(&["run", "x", "--sampling", "0"]);
        assert!(detector_config(&a).is_err());
        let a = args(&["run", "x", "--sampling", "0.1"]);
        assert!((detector_config(&a).unwrap().sampling_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_threads_is_rejected() {
        let a = args(&["run", "x", "--threads", "0"]);
        let err = workload_config(&a).unwrap_err();
        assert!(err.contains("--threads"), "unexpected error: {err}");
        let a = args(&["run", "x", "--threads", "1"]);
        assert_eq!(workload_config(&a).unwrap().threads, 1);
    }

    #[test]
    fn metrics_and_trace_flags_take_values() {
        let a = args(&["run", "x", "--metrics", "-", "--trace-events", "ev.jsonl"]);
        assert_eq!(a.options.get("--metrics"), Some(&"-".to_string()));
        assert_eq!(
            a.options.get("--trace-events"),
            Some(&"ev.jsonl".to_string())
        );
        assert!(a.positional == vec!["run", "x"]);
    }

    #[test]
    fn workload_config_defaults_and_overrides() {
        let a = args(&["run", "x"]);
        let cfg = workload_config(&a).unwrap();
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.variant, Variant::Broken);
        let a = args(&["run", "x", "--fixed", "--iters", "99"]);
        let cfg = workload_config(&a).unwrap();
        assert_eq!(cfg.iters, 99);
        assert_eq!(cfg.variant, Variant::Fixed);
    }
}
