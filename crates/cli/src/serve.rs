//! `predator serve` — live monitoring mode.
//!
//! Runs a detection source continuously and exposes its state over a
//! zero-dependency HTTP/1.1 endpoint ([`predator_obs::HttpServer`]):
//!
//! * `/metrics` — Prometheus text exposition of the process-global
//!   registry, prefixed with `predator_build_info` and a fresh
//!   `predator_uptime_seconds` gauge;
//! * `/health` — liveness JSON (uptime, pass count, last-analysis age);
//! * `/report` — the current findings, same schema as `analyze`;
//!   `?format=json|sarif|html` picks the document, and when `--fail-on`
//!   is armed a failed policy gate answers HTTP 412;
//! * `/snapshot` — the delta since the previous scrape
//!   ([`predator_obs::DeltaTracker`]), tagged with a monotonic epoch;
//! * `/query` — range queries over the embedded time-series store
//!   ([`predator_obs::Tsdb`]) that samples every metric each watchdog
//!   tick (`?metric=&range=`; no `metric` lists the series);
//! * `/alerts` — the rule pack's pending/firing/resolved states
//!   ([`predator_obs::AlertEngine`], loaded from `--rules <file>`).
//!
//! `--auth-token <tok>` gates every endpoint except `/health` behind
//! `Authorization: Bearer <tok>`.
//!
//! Three sources, picked from the arguments:
//!
//! * **workload** (default) — repeated tracked passes of an evaluation
//!   workload over one long-lived [`Session`]; the session is rotated when
//!   the simulated heap nears capacity (quarantined frees are never
//!   recycled), carrying the dynamic sampling settings across;
//! * **replay** — a `.ptrace` file looped through a single detector;
//! * **watch** (`--watch <dir> --corpus <dir>`) — a fleet spool directory
//!   polled for complete traces and auto-ingested into a corpus
//!   ([`predator_fleet::Watcher`]); `/report` serves the merged fleet view.
//!
//! A watchdog thread ticks [`Watchdog`] every `--watchdog-interval-ms`:
//! calibrated per-access costs × hot-path counter deltas give the
//! detector's own overhead, and sustained violations of
//! `--overhead-budget` shed sampling through the tiered backoff
//! controller; new allocation sites re-arm it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use predator_core::adaptive::Watchdog;
use predator_core::{
    build_report, build_report_merged, shutdown, Attribution, DetectorConfig, ObjectDirectory,
    Predator, Session,
};
use predator_obs::alerts::parse_duration_ms;
use predator_obs::{AlertEngine, DeltaTracker, HttpServer, Response, Rule, Tsdb};
use predator_policy::{
    evaluate_report, evaluate_views, to_html, to_sarif_string, FindingView, PolicyConfig,
};
use predator_trace::{sniff_format, AnalyzeConfig, TraceFormat, TraceReader};
use predator_workloads::by_name;

use crate::{detector_config, num, policy_config, shard_count, workload_config, Args};

/// Default watchdog evaluation interval.
const DEFAULT_WATCHDOG_MS: u64 = 500;
/// Default self-overhead budget (fraction of wall time).
const DEFAULT_BUDGET: f64 = 0.05;
/// Responsiveness granule for interruptible sleeps.
const POLL_MS: u64 = 20;
/// Rotate the workload session when this fraction of its address space has
/// been consumed (carved into thread segments or handed to large objects —
/// carving is never undone, so consumption only grows).
const ROTATE_NUM: u64 = 3;
const ROTATE_DEN: u64 = 4;

/// Sleeps up to `ms`, waking early on shutdown; true when shutdown was
/// requested.
fn sleep_poll(ms: u64) -> bool {
    let mut slept = 0;
    while slept < ms {
        if shutdown::requested() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(POLL_MS.min(ms - slept)));
        slept += POLL_MS;
    }
    shutdown::requested()
}

/// State shared between the drive loop, the watchdog, and HTTP handlers.
struct ServeState {
    mode: &'static str,
    started: Instant,
    /// Completed drive iterations (workload passes, replay passes, or
    /// watch polls, by mode).
    passes: AtomicU64,
    /// Seconds-since-start of the last completed analysis activity.
    last_analysis_s: AtomicU64,
    delta: Mutex<DeltaTracker>,
}

impl ServeState {
    fn new(mode: &'static str) -> Arc<Self> {
        Arc::new(ServeState {
            mode,
            started: Instant::now(),
            passes: AtomicU64::new(0),
            last_analysis_s: AtomicU64::new(0),
            delta: Mutex::new(DeltaTracker::new()),
        })
    }

    fn mark_activity(&self, passes: u64) {
        self.passes.store(passes, Ordering::Relaxed);
        self.last_analysis_s
            .store(self.started.elapsed().as_secs(), Ordering::Relaxed);
    }
}

/// The embedded monitor: the metric time-series store plus (when `--rules`
/// was given) the alerting engine, ticked together from the watchdog loop
/// and read by the `/query` and `/alerts` endpoints.
struct Monitor {
    started: Instant,
    tsdb: Mutex<Tsdb>,
    engine: Option<Mutex<AlertEngine>>,
}

impl Monitor {
    fn new(started: Instant, rules: Option<Vec<Rule>>) -> Arc<Self> {
        Arc::new(Monitor {
            started,
            tsdb: Mutex::new(Tsdb::default()),
            engine: rules.map(|r| Mutex::new(AlertEngine::new(r))),
        })
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Samples the global registry into the tsdb and evaluates the alert
    /// rules — one call per watchdog tick (or watch poll).
    fn tick(&self) {
        let now = self.now_ms();
        let snap = predator_obs::global().snapshot();
        let mut db = self.tsdb.lock().unwrap();
        db.sample(&snap, now);
        if let Some(engine) = &self.engine {
            // Transitions are emitted to the JSONL event sink by eval().
            engine.lock().unwrap().eval(&db, now);
        }
    }
}

/// `range=` accepts a duration (`90s`, `5m`) or a bare number of seconds.
fn parse_range_ms(v: &str) -> Option<u64> {
    parse_duration_ms(v).or_else(|| v.parse::<u64>().ok().and_then(|s| s.checked_mul(1000)))
}

/// Touches every metric the endpoints promise, so a scrape taken before the
/// first pass already renders the full namespace at zero — fleet ingest
/// counters included (they only tick in watch mode, but exist in all).
fn register_static_metrics() {
    let g = predator_obs::global();
    for c in [
        "fleet_traces_ingested_total",
        "fleet_events_ingested_total",
        "fleet_bytes_ingested_total",
        "serve_requests_total",
        "serve_request_errors_total",
        "serve_passes_total",
        "predator_backoff_transitions_total",
        "predator_alert_transitions_total",
        "policy_findings_classified_total",
        "policy_suppressed_total",
        "policy_baselined_total",
        "policy_gate_failures_total",
    ] {
        g.counter(c);
    }
    g.gauge("predator_uptime_seconds").set(0);
    g.gauge("predator_backoff_tier").set(0);
    g.gauge("predator_alerts_firing").set(0);
    g.gauge("predator_alerts_pending").set(0);
    g.gauge("predator_report_findings").set(0);
}

/// Registers the endpoints every mode shares; `/report` is mode-specific
/// and added by the caller.
fn common_routes(srv: HttpServer, state: &Arc<ServeState>, monitor: &Arc<Monitor>) -> HttpServer {
    let mon = monitor.clone();
    let srv = srv.route("/alerts", move |_| match &mon.engine {
        Some(engine) => Response::json(engine.lock().unwrap().to_json(mon.now_ms())),
        None => Response::error(404, "no alert rules loaded (serve --rules <file>)"),
    });
    let mon = monitor.clone();
    let srv = srv.route("/query", move |req| {
        let mut metric: Option<String> = None;
        let mut range_ms = 300_000u64; // default window: 5 minutes
        for pair in req.query.as_deref().unwrap_or("").split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match k {
                "metric" if !v.is_empty() => metric = Some(v.to_string()),
                "range" => match parse_range_ms(v) {
                    Some(ms) => range_ms = ms,
                    None => {
                        return Response::error(
                            400,
                            &format!("bad range `{v}` (want e.g. 90s, 5m, or seconds)"),
                        )
                    }
                },
                _ => {}
            }
        }
        let now = mon.now_ms();
        let db = mon.tsdb.lock().unwrap();
        match metric {
            None => Response::json(db.series_json()),
            Some(m) => match db.query(&m, range_ms, now) {
                Some(q) => Response::json(q.to_json(now, range_ms, db.loss())),
                None => Response::error(404, &format!("unknown metric `{m}` (GET /query lists)")),
            },
        }
    });
    let st = state.clone();
    let srv = srv.route("/metrics", move |_| {
        predator_obs::static_gauge!("predator_uptime_seconds")
            .set(st.started.elapsed().as_secs() as i64);
        let mut body = predator_obs::prom_info_metric(
            "predator_build_info",
            &[("version", env!("CARGO_PKG_VERSION")), ("mode", st.mode)],
        );
        body.push_str(&predator_obs::global().snapshot().to_prometheus());
        Response::prometheus(body)
    });
    let st = state.clone();
    let srv = srv.route("/health", move |_| {
        let uptime = st.started.elapsed().as_secs();
        let age = uptime.saturating_sub(st.last_analysis_s.load(Ordering::Relaxed));
        Response::json(format!(
            "{{\"status\":\"ok\",\"mode\":\"{}\",\"uptime_seconds\":{uptime},\
             \"passes\":{},\"last_analysis_age_seconds\":{age}}}",
            st.mode,
            st.passes.load(Ordering::Relaxed)
        ))
    });
    let st = state.clone();
    srv.route("/snapshot", move |_| {
        let snap = predator_obs::global().snapshot();
        let d = st.delta.lock().unwrap().scrape(snap);
        Response::json(d.to_json())
    })
}

/// Writes the bound address where `--ready-file` asked (tests and scripts
/// recover ephemeral ports from it), then announces on stderr.
fn announce(args: &Args, addr: std::net::SocketAddr, mode: &str) -> Result<(), String> {
    if let Some(path) = args.options.get("--ready-file") {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!(
        "serving ({mode}) on http://{addr} — /metrics /health /report /snapshot /alerts /query"
    );
    Ok(())
}

struct ServeOpts {
    listen: String,
    budget: f64,
    wd_ms: u64,
    max_passes: u64,
    /// Parsed `--rules` pack; `None` leaves `/alerts` unconfigured.
    rules: Option<Vec<Rule>>,
    /// `--auth-token` bearer token; `None` serves unauthenticated.
    auth: Option<String>,
    /// Policy configuration (`--policy`, `--suppressions`, `--baseline`,
    /// `--fail-on`) applied to every `/report` response.
    policy: PolicyConfig,
}

/// Reads and parses an alert-rules file, rendering every lint error.
pub(crate) fn load_rules(path: &str) -> Result<Vec<Rule>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read rules {path}: {e}"))?;
    predator_obs::parse_rules(&text).map_err(|errs| {
        let mut msg = format!("{path}: {} rule error(s):", errs.len());
        for e in errs {
            msg.push_str(&format!("\n  {e}"));
        }
        msg
    })
}

fn serve_opts(args: &Args) -> Result<ServeOpts, String> {
    let budget: f64 = num(args, "--overhead-budget", DEFAULT_BUDGET)?;
    if !(budget > 0.0 && budget < 1.0) {
        return Err(format!("--overhead-budget must be in (0, 1), got {budget}"));
    }
    let wd_ms: u64 = num(args, "--watchdog-interval-ms", DEFAULT_WATCHDOG_MS)?;
    if wd_ms == 0 {
        return Err("--watchdog-interval-ms must be at least 1".into());
    }
    let rules = match args.options.get("--rules") {
        Some(path) => Some(load_rules(path)?),
        None => None,
    };
    Ok(ServeOpts {
        listen: args
            .options
            .get("--listen")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        budget,
        wd_ms,
        max_passes: num(args, "--passes", 0u64)?,
        rules,
        auth: args.options.get("--auth-token").cloned(),
        policy: policy_config(args)?,
    })
}

/// `/report`'s `format=` query parameter (`json` when absent).
fn query_format(query: Option<&str>) -> &str {
    query
        .unwrap_or("")
        .split('&')
        .find_map(|pair| pair.strip_prefix("format="))
        .filter(|v| !v.is_empty())
        .unwrap_or("json")
}

/// Renders `/report` for the live-`Report` modes (workload, replay):
/// `?format=json|sarif|html` picks the document, and when `--fail-on` is
/// armed a failed gate answers HTTP 412 (Precondition Failed) so probes
/// can alert on the status line without parsing the body.
fn report_response(
    report: &predator_core::Report,
    geom: predator_sim::CacheGeometry,
    policy: &PolicyConfig,
    query: Option<&str>,
) -> Response {
    let eval = evaluate_report(report, policy);
    let (content_type, body): (&'static str, String) = match query_format(query) {
        "json" => ("application/json", report.to_json()),
        "sarif" => ("application/json", to_sarif_string(report, &eval, geom)),
        "html" => ("text/html; charset=utf-8", to_html(report, &eval, geom)),
        other => {
            return Response::error(400, &format!("unknown format `{other}` (json|sarif|html)"))
        }
    };
    Response {
        status: if eval.gate_failed() { 412 } else { 200 },
        content_type,
        body: body.into_bytes(),
        headers: Vec::new(),
    }
}

pub fn cmd_serve(args: &Args) -> Result<(), String> {
    let opts = serve_opts(args)?;
    let det = detector_config(args)?;
    register_static_metrics();
    if let Some(watch_dir) = args.options.get("--watch") {
        return serve_watch(args, det, watch_dir, &opts);
    }
    let target = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("histogram");
    if by_name(target).is_some() {
        serve_workload(args, det, target, &opts)
    } else if Path::new(target).is_file() {
        serve_replay(det, target, &opts, args)
    } else {
        Err(format!(
            "serve: `{target}` is neither a workload (try `list`) nor a trace file"
        ))
    }
}

/// Spawns the watchdog loop against whatever runtime the `current` closure
/// yields (sessions rotate under workload mode, so the runtime is looked up
/// fresh each tick).
fn spawn_watchdog(
    det: DetectorConfig,
    opts: &ServeOpts,
    stop: Arc<AtomicBool>,
    started: Instant,
    monitor: Arc<Monitor>,
    current: impl Fn() -> (Arc<Session>, u64) + Send + 'static,
) -> Result<std::thread::JoinHandle<()>, String> {
    let wd_ms = opts.wd_ms;
    let budget = opts.budget;
    std::thread::Builder::new()
        .name("predator-watchdog".into())
        .spawn(move || {
            // Calibration micro-times the hot paths on a scratch runtime —
            // done on this thread so serving starts immediately.
            let mut wd = Watchdog::for_detector(&det, budget);
            while !stop.load(Ordering::Relaxed) && !sleep_poll(wd_ms) {
                let (sess, callsites) = current();
                wd.tick(
                    sess.runtime(),
                    callsites,
                    started.elapsed().as_nanos() as u64,
                );
                // Sample *after* the tick so the overhead/backoff gauges
                // the alert rules watch are at their freshest.
                monitor.tick();
            }
        })
        .map_err(|e| format!("cannot spawn watchdog: {e}"))
}

fn serve_workload(
    args: &Args,
    det: DetectorConfig,
    name: &str,
    opts: &ServeOpts,
) -> Result<(), String> {
    let w = by_name(name).expect("caller checked the workload exists");
    let wcfg = workload_config(args)?;
    let state = ServeState::new("workload");
    let monitor = Monitor::new(state.started, opts.rules.clone());
    let session = Arc::new(Mutex::new(Arc::new(Session::with_config(det))));

    let srv = HttpServer::bind(&opts.listen)
        .map_err(|e| format!("cannot bind {}: {e}", opts.listen))?
        .with_auth(opts.auth.clone());
    let addr = srv.local_addr();
    let srv = common_routes(srv, &state, &monitor);
    let sess_for_report = session.clone();
    let policy = opts.policy.clone();
    let srv = srv.route("/report", move |req| {
        let sess = sess_for_report.lock().unwrap().clone();
        report_response(&sess.report(), det.geometry, &policy, req.query.as_deref())
    });
    let handle = srv.spawn().map_err(|e| format!("cannot serve: {e}"))?;
    announce(args, addr, "workload")?;

    let stop_wd = Arc::new(AtomicBool::new(false));
    let sess_for_wd = session.clone();
    let wd_thread = spawn_watchdog(
        det,
        opts,
        stop_wd.clone(),
        state.started,
        monitor,
        move || {
            let sess = sess_for_wd.lock().unwrap().clone();
            let callsites = sess.heap().callsites().len() as u64;
            (sess, callsites)
        },
    )?;

    let mut done = 0u64;
    while !shutdown::requested() {
        if opts.max_passes != 0 && done >= opts.max_passes {
            // Passes bound the workload driving, not the server: keep
            // serving scrapes until a signal arrives.
            sleep_poll(POLL_MS);
            continue;
        }
        let sess = session.lock().unwrap().clone();
        {
            let _span = predator_obs::span("interpret");
            w.run_tracked(&sess, &wcfg);
        }
        done += 1;
        state.mark_activity(done);
        predator_obs::static_counter!("serve_passes_total").inc();

        // Segment carving and quarantined frees are never undone, so a
        // long-lived session eventually exhausts its simulated heap: rotate
        // to a fresh one before that happens, carrying the watchdog's
        // dynamic settings across. Consumption is measured as address space
        // no longer available (size − uncarved), not usable bytes handed
        // out — workloads that register threads every pass burn a 64 KiB
        // segment per thread that usable-byte counters never see.
        let space = sess.space().size();
        let consumed = space - sess.heap().uncarved_bytes();
        if consumed * ROTATE_DEN >= space * ROTATE_NUM {
            let rate = sess.runtime().sampling_rate();
            let stride = sess.runtime().analysis_stride();
            let fresh = Arc::new(Session::with_config(det));
            fresh.runtime().set_sampling_rate(rate);
            fresh.runtime().set_analysis_stride(stride);
            *session.lock().unwrap() = fresh;
            predator_obs::static_counter!("serve_session_rotations_total").inc();
        }
    }
    stop_wd.store(true, Ordering::Relaxed);
    let _ = wd_thread.join();
    handle.stop();
    eprintln!("serve: {done} workload pass(es), shutting down");
    Ok(())
}

fn serve_replay(
    det: DetectorConfig,
    path: &str,
    opts: &ServeOpts,
    args: &Args,
) -> Result<(), String> {
    if sniff_format(Path::new(path))? != TraceFormat::Ptrace {
        return Err(format!(
            "serve: {path}: only .ptrace traces can be served (JSONL has no header)"
        ));
    }
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader =
        TraceReader::new(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let (base, size) = (reader.base(), reader.size());
    drop(reader);

    let rt = Arc::new(Predator::new(det, base, size));
    let directory: Arc<Mutex<Option<ObjectDirectory>>> = Arc::new(Mutex::new(None));
    let state = ServeState::new("replay");
    let monitor = Monitor::new(state.started, opts.rules.clone());

    let srv = HttpServer::bind(&opts.listen)
        .map_err(|e| format!("cannot bind {}: {e}", opts.listen))?
        .with_auth(opts.auth.clone());
    let addr = srv.local_addr();
    let srv = common_routes(srv, &state, &monitor);
    let rt_for_report = rt.clone();
    let dir_for_report = directory.clone();
    let policy = opts.policy.clone();
    let srv = srv.route("/report", move |req| {
        let report = match &*dir_for_report.lock().unwrap() {
            Some(dir) => {
                build_report_merged(&[rt_for_report.as_ref()], Attribution::Directory(dir))
            }
            None => build_report(&rt_for_report, None),
        };
        report_response(&report, det.geometry, &policy, req.query.as_deref())
    });
    let handle = srv.spawn().map_err(|e| format!("cannot serve: {e}"))?;
    announce(args, addr, "replay")?;

    // No allocator in replay mode: the callsite count stays 0, so the
    // re-arm signal never fires — backoff is budget-driven only.
    let stop_wd = Arc::new(AtomicBool::new(false));
    let wd_thread = {
        let rt = rt.clone();
        let budget = opts.budget;
        let wd_ms = opts.wd_ms;
        let started = state.started;
        std::thread::Builder::new()
            .name("predator-watchdog".into())
            .spawn({
                let stop = stop_wd.clone();
                let monitor = monitor.clone();
                move || {
                    let mut wd = Watchdog::for_detector(&det, budget);
                    while !stop.load(Ordering::Relaxed) && !sleep_poll(wd_ms) {
                        wd.tick(&rt, 0, started.elapsed().as_nanos() as u64);
                        monitor.tick();
                    }
                }
            })
            .map_err(|e| format!("cannot spawn watchdog: {e}"))?
    };

    let mut done = 0u64;
    'serve: while !shutdown::requested() {
        if opts.max_passes != 0 && done >= opts.max_passes {
            sleep_poll(POLL_MS);
            continue;
        }
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let mut r =
            TraceReader::new(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
        let mut n = 0u64;
        for a in &mut r {
            rt.handle_access(a.tid, a.addr, a.size, a.kind);
            n += 1;
            // Stay responsive to signals inside long traces.
            if n.is_multiple_of(65_536) && shutdown::requested() {
                break 'serve;
            }
        }
        if directory.lock().unwrap().is_none() {
            if let Some(meta) = r.take_meta() {
                meta.apply_globals(&rt);
                *directory.lock().unwrap() = Some(meta.directory());
            }
        }
        done += 1;
        state.mark_activity(done);
        predator_obs::static_counter!("serve_passes_total").inc();
    }
    stop_wd.store(true, Ordering::Relaxed);
    let _ = wd_thread.join();
    handle.stop();
    eprintln!("serve: {done} replay pass(es), shutting down");
    Ok(())
}

fn serve_watch(
    args: &Args,
    det: DetectorConfig,
    watch_dir: &str,
    opts: &ServeOpts,
) -> Result<(), String> {
    let corpus = args
        .options
        .get("--corpus")
        .ok_or("serve --watch: missing --corpus <dir>")?;
    let cfg = AnalyzeConfig::new(det, shard_count(args)?);
    let mut watcher = predator_fleet::Watcher::new(Path::new(watch_dir), Path::new(corpus), cfg);
    let state = ServeState::new("watch");
    let monitor = Monitor::new(state.started, opts.rules.clone());

    let srv = HttpServer::bind(&opts.listen)
        .map_err(|e| format!("cannot bind {}: {e}", opts.listen))?
        .with_auth(opts.auth.clone());
    let addr = srv.local_addr();
    let srv = common_routes(srv, &state, &monitor);
    let corpus_dir = PathBuf::from(corpus);
    let policy = opts.policy.clone();
    let srv = srv.route("/report", move |req| {
        // The merged fleet view has no per-finding Report to render, so
        // only JSON is served here; the gate still applies, over per-run
        // mean invalidations, with the same 412 contract as other modes.
        if query_format(req.query.as_deref()) != "json" {
            return Response::error(
                400,
                "watch mode serves the merged fleet report as JSON only",
            );
        }
        match predator_fleet::Manifest::load(&corpus_dir) {
            Ok(Some(m)) => {
                let r = predator_fleet::build_fleet_report(&m);
                let eval = evaluate_views(
                    r.aggregates.iter().map(|a| {
                        let runs = a.runs.max(1);
                        FindingView {
                            key: &a.key,
                            kind: &a.kind,
                            class: a.class,
                            invalidations: a.total_invalidations / runs,
                            accesses: a.total_accesses / runs,
                            object_size: a.object_size,
                        }
                    }),
                    &policy,
                );
                Response {
                    status: if eval.gate_failed() { 412 } else { 200 },
                    content_type: "application/json",
                    body: r.to_json().into_bytes(),
                    headers: Vec::new(),
                }
            }
            Ok(None) => Response::error(404, "corpus empty (no trace ingested yet)"),
            Err(e) => Response::error(500, &e),
        }
    });
    let handle = srv.spawn().map_err(|e| format!("cannot serve: {e}"))?;
    announce(args, addr, "watch")?;

    // Analysis runs inside ingest with per-shard runtimes, so there is no
    // long-lived detector for the watchdog to throttle in this mode.
    let mut polls = 0u64;
    while !shutdown::requested() {
        match watcher.poll() {
            Ok(out) => {
                if out.added() > 0 {
                    eprintln!(
                        "watch: ingested {} trace(s) ({} incomplete pending)",
                        out.added(),
                        out.incomplete
                    );
                }
                for e in &out.errors {
                    eprintln!("watch: {e}");
                }
                polls += 1;
                state.mark_activity(polls);
                if opts.max_passes != 0 && polls >= opts.max_passes {
                    break;
                }
            }
            Err(e) => eprintln!("watch: {e}"),
        }
        // No watchdog thread in this mode: the poll loop doubles as the
        // monitor tick (fleet-ingest rates and alert evaluation).
        monitor.tick();
        if sleep_poll(opts.wd_ms) {
            break;
        }
    }
    handle.stop();
    eprintln!("serve: {polls} watch poll(s), shutting down");
    Ok(())
}
