//! `bench_serve` — live-monitoring overhead telemetry (`BENCH_8.json`).
//!
//! ```text
//! bench_serve [out.json] [--passes N] [--iters N] [--scrape-ms N]
//! ```
//!
//! Reproduces `predator serve`'s steady state in-process and measures what
//! the monitoring stack costs the workload it watches:
//!
//! * **baseline** — repeated tracked passes of the histogram workload under
//!   `--tracking-mode relaxed`, no server, no watchdog;
//! * **serve mode** — the same passes with the HTTP endpoint up, a
//!   Prometheus-style scraper hitting `/metrics` + `/snapshot` on a fixed
//!   cadence, and the self-overhead watchdog ticking its calibrated cost
//!   model, the backoff controller, the embedded time-series store
//!   (every registry metric sampled per tick) and the alert engine over
//!   the shipped `docs/alerts.rules` pack throughout — the full
//!   `serve --rules` monitor stack.
//!
//! Reported: per-pass wall time for both phases, the serve-mode overhead
//! percentage, scrape latency percentiles, monitor-tick (tsdb sample +
//! alert eval) latency percentiles, tsdb series/sample counts, and the
//! watchdog's end state (tier, transitions, effective sampling rate)
//! proving it was engaged.
//! The ≤5% overhead gate is enforced on machines with ≥4 cores; on smaller
//! machines the serve threads time-slice against the workload itself, so
//! the number is reported but advisory (same policy as `bench_scaling`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use predator_bench::telemetry::peak_rss_kb;
use predator_core::adaptive::Watchdog;
use predator_core::{DetectorConfig, Session, TrackingMode};
use predator_obs::{http_get, parse_rules, AlertEngine, DeltaTracker, HttpServer, Response, Tsdb};
use predator_workloads::{by_name, Variant, Workload, WorkloadConfig};
use serde::Serialize;

#[derive(Serialize)]
struct ServeBench {
    schema: &'static str,
    workload: &'static str,
    passes: u64,
    threads: usize,
    iters: u64,
    cores: usize,
    baseline_wall_ms: f64,
    baseline_ms_per_pass: f64,
    serve_wall_ms: f64,
    serve_ms_per_pass: f64,
    overhead_pct: f64,
    scrapes: u64,
    scrape_p50_us: u64,
    scrape_p99_us: u64,
    watchdog_interval_ms: u64,
    backoff_transitions: u64,
    final_tier: i64,
    final_sampling_rate_ppm: i64,
    alert_rules: u64,
    alert_transitions: u64,
    monitor_ticks: u64,
    monitor_tick_p50_us: u64,
    monitor_tick_p99_us: u64,
    tsdb_series: u64,
    tsdb_samples: u64,
    peak_rss_kb: u64,
}

/// The default rule pack `predator serve --rules docs/alerts.rules` ships
/// with — the bench evaluates exactly what production would.
const RULE_PACK: &str = include_str!("../../../../docs/alerts.rules");

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_passes(sess: &Session, w: &dyn Workload, cfg: &WorkloadConfig, passes: u64) -> Duration {
    let t = Instant::now();
    for _ in 0..passes {
        w.run_tracked(sess, cfg);
    }
    t.elapsed()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Sleeps `ms` in small slices so the stop flag is honoured promptly.
fn sleep_unless(stop: &AtomicBool, ms: u64) -> bool {
    let mut slept = 0;
    while slept < ms {
        if stop.load(Ordering::Relaxed) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10.min(ms - slept)));
        slept += 10;
    }
    stop.load(Ordering::Relaxed)
}

const WATCHDOG_MS: u64 = 500;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_8.json".to_string();
    let mut passes: u64 = 200;
    let mut iters: u64 = 20_000;
    let mut scrape_ms: u64 = 250;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--passes" => passes = it.next().and_then(|v| v.parse().ok()).expect("--passes N"),
            "--iters" => iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--scrape-ms" => {
                scrape_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scrape-ms N")
            }
            other => out_path = other.to_string(),
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let w = by_name("histogram").expect("histogram workload exists");
    let mut det = DetectorConfig::paper();
    det.tracking_mode = TrackingMode::Relaxed;
    let wcfg = WorkloadConfig {
        threads: 4,
        iters,
        seed: 42,
        variant: Variant::Broken,
    };

    println!("SERVE BENCH — histogram x {passes} passes, {iters} iters, relaxed tracking");

    // Warmup: first-touch costs (registry interning, thread spawn paths)
    // land outside both measured phases.
    run_passes(&Session::with_config(det), w.as_ref(), &wcfg, 2);

    let base_sess = Session::with_config(det);
    let baseline = run_passes(&base_sess, w.as_ref(), &wcfg, passes);
    drop(base_sess);
    println!(
        "  baseline: {:.1} ms ({:.2} ms/pass)",
        ms(baseline),
        ms(baseline) / passes as f64
    );

    // --- serve mode: endpoint + scraper + watchdog around the same passes.
    let sess = Arc::new(Session::with_config(det));
    let delta = Arc::new(Mutex::new(DeltaTracker::new()));
    let srv = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = srv.local_addr().to_string();
    let d2 = delta.clone();
    let handle = srv
        .route("/metrics", |_| {
            Response::prometheus(predator_obs::global().snapshot().to_prometheus())
        })
        .route("/snapshot", move |_| {
            let snap = predator_obs::global().snapshot();
            Response::json(d2.lock().unwrap().scrape(snap).to_json())
        })
        .spawn()
        .expect("spawn server");

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    let rules = parse_rules(RULE_PACK).expect("shipped rule pack parses");
    let rule_count = rules.len() as u64;
    let wd_thread = {
        let sess = sess.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut wd = Watchdog::for_detector(&det, 0.05);
            // The same monitor stack `serve --rules` runs per tick: sample
            // the registry into the tsdb, evaluate the rule pack over it.
            let mut tsdb = Tsdb::default();
            let mut engine = AlertEngine::new(rules);
            let mut tick_us: Vec<u64> = Vec::new();
            while !sleep_unless(&stop, WATCHDOG_MS) {
                let callsites = sess.heap().callsites().len() as u64;
                wd.tick(
                    sess.runtime(),
                    callsites,
                    started.elapsed().as_nanos() as u64,
                );
                let t = Instant::now();
                let now_ms = started.elapsed().as_millis() as u64;
                let snap = predator_obs::global().snapshot();
                tsdb.sample(&snap, now_ms);
                engine.eval(&tsdb, now_ms);
                tick_us.push(t.elapsed().as_micros() as u64);
            }
            let series = tsdb.series_names().len() as u64;
            let samples = tsdb.samples_total();
            (tick_us, series, samples)
        })
    };

    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let scraper = {
        let stop = stop.clone();
        let latencies = latencies.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            while !sleep_unless(&stop, scrape_ms) {
                for path in ["/metrics", "/snapshot"] {
                    let t = Instant::now();
                    if http_get(&addr, path, Duration::from_secs(2)).is_ok() {
                        latencies
                            .lock()
                            .unwrap()
                            .push(t.elapsed().as_micros() as u64);
                    }
                }
            }
        })
    };

    let serve = run_passes(&sess, w.as_ref(), &wcfg, passes);
    stop.store(true, Ordering::Relaxed);
    let (mut tick_us, tsdb_series, tsdb_samples) = wd_thread.join().expect("watchdog thread");
    let _ = scraper.join();
    handle.stop();

    tick_us.sort_unstable();
    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let overhead_pct = (ms(serve) - ms(baseline)) / ms(baseline) * 100.0;
    // Effective rate from the runtime itself — the gauge is only written on
    // transitions, so an untouched tier-0 run would read as zero.
    let effective_rate_ppm = (sess.runtime().sampling_rate() * 1e6).round() as i64;
    let g = predator_obs::global();
    let report = ServeBench {
        schema: "predator-serve-bench/2",
        workload: "histogram",
        passes,
        threads: wcfg.threads,
        iters,
        cores,
        baseline_wall_ms: ms(baseline),
        baseline_ms_per_pass: ms(baseline) / passes as f64,
        serve_wall_ms: ms(serve),
        serve_ms_per_pass: ms(serve) / passes as f64,
        overhead_pct,
        scrapes: lat.len() as u64,
        scrape_p50_us: percentile(&lat, 0.50),
        scrape_p99_us: percentile(&lat, 0.99),
        watchdog_interval_ms: WATCHDOG_MS,
        backoff_transitions: g.counter("predator_backoff_transitions_total").get(),
        final_tier: g.gauge("predator_backoff_tier").get(),
        final_sampling_rate_ppm: effective_rate_ppm,
        alert_rules: rule_count,
        alert_transitions: g.counter("predator_alert_transitions_total").get(),
        monitor_ticks: tick_us.len() as u64,
        monitor_tick_p50_us: percentile(&tick_us, 0.50),
        monitor_tick_p99_us: percentile(&tick_us, 0.99),
        tsdb_series,
        tsdb_samples,
        peak_rss_kb: peak_rss_kb(),
    };
    println!(
        "  serve:    {:.1} ms ({:.2} ms/pass) — overhead {overhead_pct:+.2}%, \
         {} scrape(s) p50 {}us p99 {}us",
        ms(serve),
        ms(serve) / passes as f64,
        report.scrapes,
        report.scrape_p50_us,
        report.scrape_p99_us
    );
    println!(
        "  watchdog: tier {} after {} transition(s), sampling {} ppm",
        report.final_tier, report.backoff_transitions, report.final_sampling_rate_ppm
    );
    println!(
        "  monitor:  {} tick(s) over {} series ({} rule(s)) — tick p50 {}us p99 {}us, \
         {} alert transition(s)",
        report.monitor_ticks,
        report.tsdb_series,
        report.alert_rules,
        report.monitor_tick_p50_us,
        report.monitor_tick_p99_us,
        report.alert_transitions
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&out_path, json + "\n").expect("write telemetry");
    println!("wrote {out_path}");

    // The ≤5% budget is the acceptance bar on multi-core machines; with
    // fewer cores the serve threads time-slice against the workload and the
    // comparison is apples-to-oranges, so it degrades to advisory.
    if overhead_pct > 5.0 {
        if cores >= 4 {
            eprintln!("GATE: FAIL — serve-mode overhead {overhead_pct:.2}% exceeds 5% budget");
            std::process::exit(1);
        }
        println!(
            "GATE: advisory on {cores} core(s) — overhead {overhead_pct:.2}% exceeds 5% \
             (threads time-slice against the workload here)"
        );
    } else {
        println!("GATE: ok — serve-mode overhead {overhead_pct:.2}% within 5% budget");
    }
}
