//! `bench_telemetry` — the JSON emitter behind `scripts/bench.sh`.
//!
//! ```text
//! bench_telemetry measure <out.json> [--iters N] [--hot-iters N] [--workloads a,b,c]
//! bench_telemetry merge <obs_on.json> <obs_off.json> <out.json>
//! ```
//!
//! `measure` runs the small workload suite plus the hot-path
//! microbenchmark in the *current* build (hooks on or `obs-off`) and
//! writes a schema-versioned [`telemetry::BenchReport`]. `merge` combines
//! an obs-on and an obs-off run into the published `BENCH_<n>.json`,
//! filling `obs_overhead_pct`.

use std::process::ExitCode;

use predator_bench::telemetry::{self, BenchReport};

fn usage() -> String {
    "usage:\n  bench_telemetry measure <out.json> [--iters N] [--hot-iters N] [--workloads a,b,c]\n  bench_telemetry merge <obs_on.json> <obs_off.json> <out.json>"
        .to_string()
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: BenchReport =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not a bench report: {e}"))?;
    report.check_schema()?;
    Ok(report)
}

fn store(path: &str, report: &BenchReport) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    std::fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))
}

fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("measure") => {
            let out = args.get(1).ok_or_else(usage)?;
            let iters: u64 = match opt(&args, "--iters") {
                Some(v) => v.parse().map_err(|_| format!("bad --iters: {v}"))?,
                None => 2_000,
            };
            let hot_iters: u64 = match opt(&args, "--hot-iters") {
                Some(v) => v.parse().map_err(|_| format!("bad --hot-iters: {v}"))?,
                None => 2_000_000,
            };
            let names: Vec<String> = match opt(&args, "--workloads") {
                Some(list) => list.split(',').map(str::to_string).collect(),
                None => telemetry::SMALL_SUITE
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            };
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let report = BenchReport::measure(&refs, iters, hot_iters)?;
            store(out, &report)?;
            eprintln!(
                "wrote {out} (obs_hooks={}, tracked hot path {:.1} ns/access, {} workloads)",
                report.obs_hooks,
                report.hot_path.tracked_write_ns,
                report.workloads.len()
            );
            Ok(())
        }
        Some("merge") => {
            let (on, off, out) = match (args.get(1), args.get(2), args.get(3)) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => return Err(usage()),
            };
            let merged = load(on)?.with_overhead_from(&load(off)?)?;
            store(out, &merged)?;
            eprintln!(
                "wrote {out} (obs overhead {:+.2}% on the tracked hot path)",
                merged.obs_overhead_pct.unwrap_or(0.0)
            );
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
