//! Figures 8 and 9 — memory overhead of PREDATOR.
//!
//! Figure 8 plots absolute physical memory (original vs. with PREDATOR);
//! Figure 9 the ratio. Paper shape: under 50% overhead for 17 of 22
//! applications; large *relative* outliers only where the application
//! footprint is tiny (swaptions and aget are sub-megabyte, so PREDATOR's
//! fixed-size structures dominate their ratios; 7.8× / 6.8× in Figure 9).
//!
//! We account detector metadata exactly instead of sampling
//! `/proc/self/smaps`, split into:
//!
//! * **fixed** — the `CacheWrites`/`CacheTracking` shadow arrays: 12 bytes
//!   per shadowed 64-byte line (≈ 19% of the shadowed heap), paid up front
//!   for the whole predefined heap regardless of use — the same design the
//!   paper inherits from its fixed-address custom heap;
//! * **dynamic** — per-line tracking state and prediction units,
//!   proportional to how much memory actually saw heavy writes.
//!
//! Because our workloads are miniatures (kilobytes of live data), the fixed
//! part dominates every ratio; the *dynamic* column is the size-dependent
//! signal that scales the way the paper's per-application differences do.

use predator_bench::{eval_config, eval_iters, header};
use predator_core::Session;
use predator_workloads::{all, WorkloadConfig};

fn main() {
    let iters = eval_iters();
    let cfg = WorkloadConfig {
        iters,
        ..WorkloadConfig::default()
    };
    let det = eval_config();
    // A heap sized for the miniature workloads (4 MiB) keeps the fixed
    // shadow arrays proportionate, as the paper's fixed heap is to its
    // applications.
    let heap_bytes = 4u64 << 20;

    header("Figures 8-9: memory overhead");
    println!(
        "{:<20} {:>11} {:>12} {:>13} {:>10} {:>10}",
        "workload", "app (KiB)", "fixed (KiB)", "dynamic (KiB)", "rel total", "rel dyn"
    );

    let mut totals = Vec::new();
    let mut dyns = Vec::new();
    for w in all() {
        let session = Session::new(det, heap_bytes);
        w.run_tracked(&session, &cfg);
        let rt = session.runtime();
        let app = session.heap().live_bytes() as f64 / 1024.0;
        let fixed = rt.metadata_fixed_bytes() as f64 / 1024.0;
        let dynamic = rt.metadata_dynamic_bytes() as f64 / 1024.0;
        let rel_total = if app > 0.0 {
            (app + fixed + dynamic) / app
        } else {
            f64::NAN
        };
        let rel_dyn = if app > 0.0 {
            (app + dynamic) / app
        } else {
            f64::NAN
        };
        totals.push(rel_total);
        dyns.push(rel_dyn);
        println!(
            "{:<20} {:>11.1} {:>12.1} {:>13.1} {:>9.2}x {:>9.2}x",
            w.name(),
            app,
            fixed,
            dynamic,
            rel_total,
            rel_dyn
        );
    }
    let avg = |v: &[f64]| {
        v.iter().filter(|r| r.is_finite()).sum::<f64>()
            / v.iter().filter(|r| r.is_finite()).count() as f64
    };
    println!(
        "{:<20} {:>11} {:>12} {:>13} {:>9.2}x {:>9.2}x",
        "AVERAGE",
        "",
        "",
        "",
        avg(&totals),
        avg(&dyns)
    );
    println!("\nfixed = CacheWrites + CacheTracking shadow arrays (12 B per 64 B line,");
    println!(
        "        paid for the whole {} MiB predefined heap).",
        heap_bytes >> 20
    );
    println!("paper shape: modest ratios for real-sized apps; tiny-footprint apps");
    println!("             (swaptions, aget) are the big relative outliers — here every");
    println!("             workload is miniature, so the fixed part dominates all rows.");
}
