//! Figure 10 — sampling-rate sensitivity.
//!
//! Paper: on histogram, linear_regression, reverse_index, word_count and
//! streamcluster, lowering the sampling rate from the default 1% to 0.1%
//! reduces overhead while *still detecting every problem* (with smaller
//! invalidation counts); 10% costs more. Runtime normalized to the 1%
//! default, plus the detection verdict at each rate.

use predator_bench::{eval_config, eval_iters, header, ratio, run_tracked_with_report};
use predator_core::DetectorConfig;
use predator_workloads::{by_name, WorkloadConfig};

fn main() {
    let iters = eval_iters();
    let cfg = WorkloadConfig {
        iters,
        ..WorkloadConfig::default()
    };

    // Detection must stay meaningful at 0.1%: scale the report threshold
    // with the sampling rate like the paper's fixed threshold effectively
    // does against its much longer runs.
    let det_at = |rate: f64| -> DetectorConfig {
        let base = eval_config();
        DetectorConfig {
            report_threshold: ((base.report_threshold as f64) * rate / 0.01).max(2.0) as u64,
            ..base
        }
        .with_sampling_rate(rate)
    };

    header("Figure 10: sampling rate sensitivity");
    println!(
        "{:<20} {:>16} {:>16} {:>16}",
        "workload", "0.1% (norm/det)", "1% (norm/det)", "10% (norm/det)"
    );

    let names = [
        "histogram",
        "linear_regression",
        "reverse_index",
        "word_count",
        "streamcluster",
    ];
    let mut avgs = [0.0f64; 3];
    for name in names {
        let w = by_name(name).unwrap();
        let mut cells = Vec::new();
        let (base_time, _) = run_tracked_with_report(w.as_ref(), det_at(0.01), &cfg);
        for (i, rate) in [0.001, 0.01, 0.1].into_iter().enumerate() {
            let (t, report) = run_tracked_with_report(w.as_ref(), det_at(rate), &cfg);
            let norm = ratio(t, base_time);
            avgs[i] += norm;
            cells.push(format!(
                "{:.2}x/{}",
                norm,
                if report.has_false_sharing() {
                    "yes"
                } else {
                    "MISS"
                }
            ));
        }
        println!(
            "{:<20} {:>16} {:>16} {:>16}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!(
        "{:<20} {:>16} {:>16} {:>16}",
        "AVERAGE",
        format!("{:.2}x", avgs[0] / names.len() as f64),
        format!("{:.2}x", avgs[1] / names.len() as f64),
        format!("{:.2}x", avgs[2] / names.len() as f64)
    );
    println!("\npaper: all problems still detected at 0.1% (with fewer invalidations);");
    println!("       lower rates run faster, 10% slower.");
}
