//! `bench_scaling` — multi-thread scaling of the tracked-line hot path.
//!
//! ```text
//! bench_scaling [out.json] [--iters N] [--reps N]
//! ```
//!
//! Sweeps 1/2/4/8 threads hammering ONE fully-tracked cache line (each
//! thread owns a distinct word — the canonical false-sharing shape, so the
//! history table invalidates on almost every write) and measures
//! `CacheTrack::handle` throughput in both tracking modes:
//!
//! * `precise` — the `Mutex<TrackState>` baseline: every access serialises
//!   on one lock, so adding threads adds contention, not throughput;
//! * `relaxed` — the lock-free seqlock-style path: packed-atomic history
//!   CAS plus per-thread access batching.
//!
//! The acceptance bar is relaxed ≥ 2× precise at 8 threads. That is a
//! statement about *parallel* hardware: on a box with fewer than 8 cores
//! the 8 "threads" time-slice one another and the mutex never actually
//! contends, so the gate is recorded in the JSON but only *enforced*
//! (non-zero exit) when `cores >= 8`. The committed `BENCH_5.json` carries
//! whatever the build machine honestly measured, cores field included.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use predator_core::{CacheTrack, DetectorConfig, TrackingMode};
use predator_sim::{AccessKind, ThreadId};
use serde::Serialize;

#[derive(Serialize)]
struct Sample {
    mode: String,
    threads: usize,
    iters_per_thread: u64,
    total_accesses: u64,
    /// Best-of-`reps` wall time for the whole sweep.
    wall_ms: f64,
    accesses_per_s: f64,
    /// Throughput relative to the same mode at 1 thread.
    self_speedup: f64,
}

#[derive(Serialize)]
struct Gate {
    /// relaxed ÷ precise throughput at the widest sweep point.
    speedup_at_max_threads: f64,
    required: f64,
    /// The bar only binds when the machine can actually run the widest
    /// sweep point in parallel.
    enforced: bool,
    passed: bool,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    cores: usize,
    thread_counts: Vec<usize>,
    iters_per_thread: u64,
    reps: usize,
    samples: Vec<Sample>,
    gate: Gate,
}

/// One timed sweep point: `threads` workers, each issuing `iters` writes to
/// its own word of one shared tracked line, plus a sprinkle of reads so the
/// read path stays on the profile. Returns wall seconds.
fn run_once(mode: TrackingMode, threads: usize, iters: u64) -> f64 {
    let mut cfg = DetectorConfig::paper().with_tracking_mode(mode);
    cfg.sampling = false; // measure the tracked path itself, not the sampler
    let geom = cfg.geometry;
    let track = Arc::new(CacheTrack::new(0, geom, mode));
    let barrier = Arc::new(Barrier::new(threads + 1));

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let track = Arc::clone(&track);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let tid = ThreadId(t as u16);
                let addr = (t as u64 % geom.words_per_line() as u64) * 8;
                barrier.wait();
                for i in 0..iters {
                    let kind = if i % 8 == 7 {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    track.handle(tid, addr, 8, kind, &cfg);
                }
            })
        })
        .collect();

    // Clock starts BEFORE the release: on a single core the scheduler can
    // run every worker to completion before this thread wakes from the
    // barrier, which would otherwise time the sweep at ~0.
    let start = Instant::now();
    barrier.wait();
    for h in handles {
        h.join().expect("worker panicked");
    }
    start.elapsed().as_secs_f64()
}

fn measure(mode: TrackingMode, threads: usize, iters: u64, reps: usize) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(run_once(mode, threads, iters));
    }
    let total = threads as u64 * iters;
    (best * 1e3, total as f64 / best)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_scaling_local.json".to_string();
    let mut iters: u64 = 200_000;
    let mut reps: usize = 3;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => iters = it.next().expect("--iters needs a value").parse().unwrap(),
            "--reps" => reps = it.next().expect("--reps needs a value").parse().unwrap(),
            other => out = other.to_string(),
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts = vec![1usize, 2, 4, 8];
    let max_threads = *thread_counts.last().unwrap();

    let mut samples = Vec::new();
    let mut base: f64 = 1.0;
    let mut at_max = [0.0f64; 2]; // [precise, relaxed] accesses/s at max threads
    for (m, mode) in [TrackingMode::Precise, TrackingMode::Relaxed]
        .into_iter()
        .enumerate()
    {
        for &threads in &thread_counts {
            let (wall_ms, per_s) = measure(mode, threads, iters, reps);
            if threads == 1 {
                base = per_s;
            }
            if threads == max_threads {
                at_max[m] = per_s;
            }
            eprintln!(
                "{mode:>7} x{threads}: {:>12.0} tracked accesses/s ({:.1} ms)",
                per_s, wall_ms
            );
            samples.push(Sample {
                mode: mode.to_string(),
                threads,
                iters_per_thread: iters,
                total_accesses: threads as u64 * iters,
                wall_ms,
                accesses_per_s: per_s,
                self_speedup: per_s / base,
            });
        }
    }

    let speedup = at_max[1] / at_max[0];
    let enforced = cores >= max_threads;
    let gate = Gate {
        speedup_at_max_threads: speedup,
        required: 2.0,
        enforced,
        passed: speedup >= 2.0,
    };
    eprintln!(
        "relaxed/precise at {max_threads} threads: {speedup:.2}x (gate {} on {cores} cores)",
        if enforced { "enforced" } else { "advisory" }
    );

    let report = Report {
        schema: "predator-bench-scaling/1",
        cores,
        thread_counts,
        iters_per_thread: iters,
        reps,
        samples,
        gate,
    };
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap())
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if enforced && speedup < 2.0 {
        eprintln!("FAIL: relaxed mode is only {speedup:.2}x precise at {max_threads} threads");
        std::process::exit(1);
    }
}
