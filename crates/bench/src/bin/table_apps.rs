//! §4.1.2 — real applications.
//!
//! Paper findings: PREDATOR pinpoints the known false sharing in **MySQL**
//! (the InnoDB scalability collapse, worth 6× when fixed) and the **Boost**
//! spinlock pool (40%); **memcached / aget / pbzip2 / pfscan** show no
//! severe false sharing.

use predator_bench::{
    eval_config, eval_iters, eval_reps, header, mark, median_time, projected_improvement,
};
use predator_workloads::{by_name, run_and_report, Variant, WorkloadConfig};

fn main() {
    let iters = eval_iters();
    let det = eval_config();
    let reps = eval_reps();

    header("Real applications (§4.1.2)");
    println!(
        "{:<12} {:>10} {:>22} {:>14}",
        "application", "detected", "attribution", "improvement"
    );

    for name in ["mysql", "boost", "memcached", "aget", "pbzip2", "pfscan"] {
        let w = by_name(name).expect("workload");
        let cfg = WorkloadConfig {
            iters,
            ..WorkloadConfig::default()
        };
        let report = run_and_report(w.as_ref(), det, &cfg);
        let detected = report.has_false_sharing();
        let site = report
            .false_sharing()
            .next()
            .map(|f| match &f.object.site {
                predator_core::SiteKind::Heap { callsite, .. } => callsite
                    .frames
                    .first()
                    .map(|fr| fr.to_string())
                    .unwrap_or_else(|| "heap".into()),
                predator_core::SiteKind::Global { name } => {
                    let mut n = name.clone();
                    n.truncate(22);
                    n
                }
                predator_core::SiteKind::Unknown => "<unknown>".into(),
            })
            .unwrap_or_else(|| "-".into());

        let improvement = if detected {
            // Projected from exact invalidation rates over the native fixed
            // runtime (see table1_detection); PREDATOR_NATIVE=1 additionally
            // times native broken-vs-fixed (meaningful only on multicore).
            format!(
                "{:+.2}%",
                projected_improvement(w.as_ref(), &cfg, iters.max(200_000), reps)
            )
        } else {
            "-".into()
        };

        println!(
            "{:<12} {:>10} {:>22} {:>14}",
            name,
            mark(detected),
            site,
            improvement
        );

        if detected && std::env::var("PREDATOR_NATIVE").is_ok() {
            let ncfg = WorkloadConfig {
                iters: iters.max(200_000),
                ..WorkloadConfig::default()
            };
            let broken = median_time(reps, || w.run_native(&ncfg));
            let fixed = median_time(reps, || w.run_native(&ncfg.with_variant(Variant::Fixed)));
            println!(
                "    native (this host): {:+.2}%",
                (broken.as_secs_f64() / fixed.as_secs_f64() - 1.0) * 100.0
            );
        }
    }

    println!("\npaper: MySQL and Boost detected (6x / 40% when fixed); others clean.");
}
