//! Table 1 — false sharing in the Phoenix and PARSEC suites.
//!
//! For every benchmark workload: run under the detector *without* prediction
//! and *with* prediction (the table's two detection columns), and estimate
//! the fix's benefit (the table's "Improvement" column).
//!
//! The improvement estimate is *modeled* from exact invalidation counts
//! (`modeled_improvement`): every access costs one L1-hit unit, every
//! coherence invalidation 100 units. On this container there is no
//! alternative — with a single core, falsely-shared threads never run
//! concurrently and native wall time shows nothing (§5.2's same-core
//! caveat). Set `PREDATOR_NATIVE=1` on a multicore host to also print
//! measured native broken-vs-fixed timings.
//!
//! Paper rows (expected detections):
//!
//! | benchmark          | source                          | new | w/o pred | w/ pred | improvement |
//! |--------------------|---------------------------------|-----|----------|---------|-------------|
//! | histogram          | histogram-pthread.c:213         | yes | yes      | yes     | 46.22%      |
//! | linear_regression  | linear_regression-pthread.c:133 |     | -        | yes     | 1206.93%    |
//! | reverse_index      | reverseindex-pthread.c:511      |     | yes      | yes     | 0.09%       |
//! | word_count         | word_count-pthread.c:136        |     | yes      | yes     | 0.14%       |
//! | streamcluster      | streamcluster.cpp:985           |     | yes      | yes     | 7.52%       |
//! | streamcluster      | streamcluster.cpp:1907          | yes | yes      | yes     | 4.77%       |

use predator_bench::{
    eval_config, eval_iters, eval_reps, header, lreg_offset_invalidations, mark, median_time,
    projected_improvement, INVALIDATION_SECONDS,
};
use predator_core::DetectorConfig;
use predator_workloads::{by_name, run_and_report, Variant, WorkloadConfig};

fn main() {
    let iters = eval_iters();
    let det = eval_config();
    let np = DetectorConfig {
        prediction: false,
        ..det
    };
    let native = std::env::var("PREDATOR_NATIVE").is_ok();

    header("Table 1: false sharing problems in Phoenix and PARSEC");
    println!(
        "{:<20} {:<6} {:>10} {:>10} {:>16}",
        "benchmark", "new", "w/o pred", "w/ pred", "improvement*"
    );

    let rows: &[(&str, bool)] = &[
        ("histogram", true),
        ("kmeans", false),
        ("linear_regression", false),
        ("matrix_multiply", false),
        ("pca", false),
        ("reverse_index", false),
        ("string_match", false),
        ("word_count", false),
        ("blackscholes", false),
        ("bodytrack", false),
        ("dedup", false),
        ("ferret", false),
        ("fluidanimate", false),
        ("streamcluster", true),
        ("swaptions", false),
    ];

    for &(name, is_new) in rows {
        let w = by_name(name).expect("workload");
        let cfg = WorkloadConfig {
            iters,
            ..WorkloadConfig::default()
        };
        let without = run_and_report(w.as_ref(), np, &cfg).has_observed_false_sharing();
        let with_report = run_and_report(w.as_ref(), det, &cfg);
        let with = with_report.has_false_sharing();

        let native_iters = iters.max(200_000);
        let improvement = if !(with || without) {
            "-".to_string()
        } else if name == "linear_regression" {
            // The latent case: on the isolating allocator no physical
            // invalidations occur, so the projection takes the invalidation
            // rate of the *worst placement* (offset 24, Figure 2) — the
            // scenario whose danger the prediction reports.
            let model_iters = iters.min(20_000);
            let (_, inv) = lreg_offset_invalidations(24, cfg.threads, model_iters);
            let ncfg = cfg.with_iters(native_iters).with_variant(Variant::Fixed);
            let t_fixed = median_time(eval_reps(), || w.run_native(&ncfg)).as_secs_f64();
            let scaled = inv as f64 * (native_iters as f64 / model_iters as f64);
            format!(
                "{:+.2}% (latent)",
                scaled * INVALIDATION_SECONDS / t_fixed.max(1e-9) * 100.0
            )
        } else {
            format!(
                "{:+.2}%",
                projected_improvement(w.as_ref(), &cfg, native_iters, eval_reps())
            )
        };

        println!(
            "{:<20} {:<6} {:>10} {:>10} {:>16}",
            name,
            mark(is_new && (with || without)),
            mark(without),
            mark(with),
            improvement
        );

        // Per-site detail for the workloads the paper lists by source line.
        for f in with_report.false_sharing() {
            if let predator_core::SiteKind::Heap { callsite, .. } = &f.object.site {
                if let Some(frame) = callsite.frames.first() {
                    println!(
                        "    {:<40} invalidations: {} ({})",
                        frame.to_string(),
                        f.invalidations,
                        f.kind
                    );
                }
            }
        }

        if native && (with || without) {
            let reps = eval_reps();
            let ncfg = WorkloadConfig {
                iters: iters.max(200_000),
                ..WorkloadConfig::default()
            };
            let broken = median_time(reps, || w.run_native(&ncfg));
            let fixed = median_time(reps, || w.run_native(&ncfg.with_variant(Variant::Fixed)));
            println!(
                "    native (this host): {:+.2}%",
                (broken.as_secs_f64() / fixed.as_secs_f64() - 1.0) * 100.0
            );
        }
    }

    println!("\n* projected: exact invalidation rate (unsampled detector, adversarial");
    println!("  interleaved schedule) x 100ns per invalidation, over the native fixed");
    println!("  variant's wall time. Upper bounds — real schedules interleave less.");
    println!("  Set PREDATOR_NATIVE=1 on a multicore host for measured numbers.");
    println!("paper: histogram/reverse_index/word_count/streamcluster detected both ways;");
    println!("       linear_regression detected ONLY with prediction; all others clean.");
}
