//! Figure 7 — execution-time overhead of PREDATOR.
//!
//! Paper: average 5.4–6× slowdown, no noticeable difference between
//! PREDATOR and PREDATOR-NP (prediction off); histogram worst (26×, its
//! own false sharing is *amplified* by metadata updates); kmeans, bodytrack,
//! ferret, swaptions >8×; I/O-bound workloads near 1×.
//!
//! Here "Original" runs the identical tracked harness with the detector
//! disabled (`DetectorConfig::disabled()`), so the ratio isolates detector
//! cost the way the paper's native-vs-instrumented comparison does.

use predator_bench::{eval_config, eval_iters, header, ratio, time_tracked};
use predator_core::DetectorConfig;
use predator_workloads::{all, WorkloadConfig};

fn main() {
    let iters = eval_iters();
    let cfg = WorkloadConfig {
        iters,
        ..WorkloadConfig::default()
    };
    let det = eval_config();
    let det_np = DetectorConfig {
        prediction: false,
        ..det
    };
    let det_off = DetectorConfig {
        enabled: false,
        ..det
    };

    header("Figure 7: execution time overhead (normalized to Original)");
    println!(
        "{:<20} {:>12} {:>14} {:>12}",
        "workload", "original", "PREDATOR-NP", "PREDATOR"
    );

    let mut np_ratios = Vec::new();
    let mut full_ratios = Vec::new();
    for w in all() {
        let original = time_tracked(w.as_ref(), det_off, &cfg);
        let np = time_tracked(w.as_ref(), det_np, &cfg);
        let full = time_tracked(w.as_ref(), det, &cfg);
        let (rn, rf) = (ratio(np, original), ratio(full, original));
        np_ratios.push(rn);
        full_ratios.push(rf);
        println!(
            "{:<20} {:>10.1}ms {:>13.2}x {:>11.2}x",
            w.name(),
            original.as_secs_f64() * 1e3,
            rn,
            rf
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<20} {:>12} {:>13.2}x {:>11.2}x",
        "AVERAGE",
        "",
        avg(&np_ratios),
        avg(&full_ratios)
    );
    println!("\npaper: average ~5.4x; prediction on vs off indistinguishable;");
    println!("       write-heavy tracked workloads (histogram/kmeans/bodytrack/ferret) worst.");
}
