//! `bench_whatif` — what-if layout-replay telemetry behind `scripts/bench.sh`.
//!
//! ```text
//! bench_whatif [out.json] [--iters N]
//! ```
//!
//! Builds a deterministic false-sharing trace (two threads ping-ponging on
//! adjacent words in several well-separated regions), then measures the
//! `predator whatif` machinery end to end:
//!
//! * plain sharded analysis throughput (the baseline the replay pays on
//!   top of);
//! * full what-if verification time — per-geometry baselines at all four
//!   portfolio line sizes, MESI ground truth, remap, and the re-analysis
//!   of the remapped trace — and its overhead factor over plain analysis;
//! * the measured invalidation delta of the suggested padding fix, which
//!   must clear the ≥90%-removed acceptance bar at its worst portfolio
//!   geometry (the ISSUE's headline number, asserted here so the bench
//!   doubles as a regression gate).
//!
//! The JSON it writes (`BENCH_9.json` by convention) is a standalone
//! schema-versioned artifact; `predator bench-diff` consumes it through
//! the schema-agnostic numeric-drift path.

use std::time::Instant;

use predator_core::{CacheGeometry, DetectorConfig, FixVerdict};
use predator_sim::{Access, ThreadId};
use predator_trace::{analyze_events, whatif_events, AnalyzeConfig, WhatIfFix};
use serde::Serialize;

const BASE: u64 = 0x4000_0000;
const SIZE: u64 = 64 << 20;

#[derive(Serialize)]
struct WhatIfBench {
    schema: &'static str,
    events: u64,
    regions: u64,
    geometries: usize,
    analyze_ms: f64,
    analyze_events_per_s: f64,
    whatif_ms: f64,
    whatif_events_per_s: f64,
    /// whatif time ÷ plain analyze time. The replay runs 4 baseline
    /// geometry analyses + 4 MESI simulations + the remapped re-analysis,
    /// so single-digit factors are the expected regime.
    whatif_overhead_x: f64,
    findings: usize,
    verified: usize,
    /// Best verified fix's worst-geometry percentage removed — the
    /// acceptance bar is ≥ 90 on this trace.
    best_pct_removed: u64,
    fixes_verdicts: usize,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Two threads ping-pong on adjacent words in `regions` well-separated
/// regions — the canonical false-sharing shape, one cluster per region.
fn false_sharing_trace(regions: u64, per_region: u64) -> Vec<Access> {
    let mut out = Vec::with_capacity((regions * per_region) as usize);
    for i in 0..per_region {
        for r in 0..regions {
            let rbase = BASE + r * 0x10000;
            out.push(Access::write(
                ThreadId((i % 2) as u16),
                rbase + (i % 2) * 8,
                8,
            ));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_9.json".to_string();
    let mut iters: u64 = 50_000; // per region; 4 regions ⇒ 200k events
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--iters" {
            iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N");
        } else {
            out_path = a.clone();
        }
    }

    let regions = 4u64;
    let events = false_sharing_trace(regions, iters);
    let cfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 4);

    println!(
        "bench_whatif: {} events over {} false-sharing regions",
        events.len(),
        regions
    );

    let t = Instant::now();
    let plain = analyze_events(&events, BASE, SIZE, None, &cfg);
    let analyze_d = t.elapsed();

    let t = Instant::now();
    let out = whatif_events(&events, BASE, SIZE, None, &cfg, &WhatIfFix::Suggested);
    let whatif_d = t.elapsed();

    let best_pct = out.best_pct().unwrap_or(0);
    let fixes_verdicts = out
        .report
        .findings
        .iter()
        .filter_map(|f| f.verified.as_ref())
        .filter(|v| v.verdict == FixVerdict::Fixes)
        .count();

    let report = WhatIfBench {
        schema: "predator-whatif-bench/1",
        events: plain.events,
        regions,
        geometries: CacheGeometry::PORTFOLIO_LINE_SIZES.len(),
        analyze_ms: ms(analyze_d),
        analyze_events_per_s: plain.events as f64 / analyze_d.as_secs_f64().max(1e-9),
        whatif_ms: ms(whatif_d),
        whatif_events_per_s: out.events as f64 / whatif_d.as_secs_f64().max(1e-9),
        whatif_overhead_x: whatif_d.as_secs_f64() / analyze_d.as_secs_f64().max(1e-9),
        findings: out.report.findings.len(),
        verified: out.verified,
        best_pct_removed: best_pct,
        fixes_verdicts,
    };

    println!(
        "  analyze:  {:.1} ms ({:.2} Mevents/s)",
        report.analyze_ms,
        report.analyze_events_per_s / 1e6
    );
    println!(
        "  whatif:   {:.1} ms ({:.2} Mevents/s) — {:.1}x analyze, {} geometries",
        report.whatif_ms,
        report.whatif_events_per_s / 1e6,
        report.whatif_overhead_x,
        report.geometries
    );
    println!(
        "  delta:    {}/{} findings verified, {} fix(es) proven, best removes {}%",
        report.verified, report.findings, report.fixes_verdicts, report.best_pct_removed
    );

    assert!(
        report.verified >= 1,
        "whatif must verify at least one finding"
    );
    assert!(
        report.best_pct_removed >= 90,
        "suggested padding fix must remove >=90% of invalidations at every \
         portfolio geometry on a pure false-sharing trace (got {}%)",
        report.best_pct_removed
    );

    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
