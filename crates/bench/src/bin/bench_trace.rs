//! `bench_trace` — trace-pipeline telemetry behind `scripts/bench.sh`.
//!
//! ```text
//! bench_trace [out.json] [--iters N]
//! ```
//!
//! Records the histogram workload (the Table-1 bug with a deterministic
//! tracked run) through the `.ptrace` streaming writer, then measures what
//! the ISSUE's acceptance bars ask for:
//!
//! * record throughput (events/s into the segmented binary writer);
//! * `.ptrace` vs JSONL size on the identical event stream (must be ≥5x);
//! * decode throughput for both formats;
//! * sharded offline analysis, 1 shard vs 4 (must speed up on ≥1M events,
//!   with byte-identical findings).
//!
//! The JSON it writes (`BENCH_4.json` by convention) is a standalone
//! schema-versioned artifact, separate from `bench_telemetry`'s
//! `predator-bench/1` reports.

use std::io::BufReader;
use std::sync::Arc;
use std::time::Instant;

use predator_core::{DetectorConfig, Session};
use predator_sim::{Access, ThreadId};
use predator_trace::{
    analyze_events, save_jsonl, AnalyzeConfig, JsonlIter, TraceMeta, TraceReader, TraceSink,
};
use predator_workloads::{by_name, Variant, WorkloadConfig};
use serde::Serialize;

#[derive(Serialize)]
struct RecordStats {
    wall_ms: f64,
    events: u64,
    events_per_s: f64,
    ptrace_bytes: u64,
    bytes_per_event: f64,
}

#[derive(Serialize)]
struct SizeStats {
    jsonl_bytes: u64,
    /// JSONL bytes ÷ `.ptrace` bytes — the acceptance bar is ≥ 5.
    size_ratio: f64,
}

#[derive(Serialize)]
struct DecodeStats {
    ptrace_events_per_s: f64,
    jsonl_events_per_s: f64,
}

#[derive(Serialize)]
struct AnalyzeStats {
    /// What was analysed: the sharding measurement runs on a synthetic
    /// multi-cluster trace, because histogram's false sharing lives in one
    /// tiny argument array — a single line cluster, which by construction
    /// cannot be split across shards.
    trace: &'static str,
    events: u64,
    clusters: usize,
    /// Cores visible to this process. Sharding is a parallelism play: with
    /// fewer than ~4 cores the dispatcher + worker threads time-slice one
    /// CPU and `speedup` dips below 1 — expected, not a regression. The
    /// tier-1 test asserts the >1 bar only on ≥4-core hosts.
    cores: usize,
    shards1_ms: f64,
    shards4_ms: f64,
    /// shards1 time ÷ shards4 time — the acceptance bar is > 1 on ≥1M
    /// events when `cores` ≥ 4.
    speedup: f64,
    events_per_s_shards4: f64,
    findings: usize,
    reports_identical: bool,
}

#[derive(Serialize)]
struct TraceBench {
    schema: &'static str,
    workload: &'static str,
    threads: usize,
    iters: u64,
    record: RecordStats,
    size: SizeStats,
    decode: DecodeStats,
    analyze: AnalyzeStats,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn per_s(events: u64, d: std::time::Duration) -> f64 {
    events as f64 / d.as_secs_f64().max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_4.json".to_string();
    let mut iters: u64 = 100_000; // 12 events/iter ⇒ 1.2M-event trace
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--iters" {
            iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N");
        } else {
            out_path = a.clone();
        }
    }
    let cfg = WorkloadConfig {
        threads: 4,
        iters,
        seed: 42,
        variant: Variant::Broken,
    };
    let w = by_name("histogram").unwrap();

    // Record through the tap with detection off, exactly like
    // `predator record`, into a temp file beside the output.
    let trace_path =
        std::env::temp_dir().join(format!("bench-trace-{}.ptrace", std::process::id()));
    let mut det = DetectorConfig::sensitive();
    det.enabled = false;
    let session = Session::with_config(det);
    let file = std::fs::File::create(&trace_path).expect("create trace");
    let sink = Arc::new(
        TraceSink::create(
            std::io::BufWriter::new(file),
            session.space().base(),
            session.space().size(),
        )
        .expect("start trace"),
    );
    session.runtime().install_tap(sink.clone()).unwrap();
    let t = Instant::now();
    w.run_tracked(&session, &cfg);
    let meta = TraceMeta::capture(session.runtime(), session.heap());
    let summary = sink.finish(&meta).expect("seal trace");
    let record_wall = t.elapsed();
    let (base, size) = (session.space().base(), session.space().size());
    drop(session);

    // Size: the identical event stream in both encodings.
    let t = Instant::now();
    let events: Vec<Access> = {
        let f = std::fs::File::open(&trace_path).expect("reopen trace");
        TraceReader::new(BufReader::new(f))
            .expect("trace header")
            .collect()
    };
    let ptrace_decode = t.elapsed();
    assert_eq!(events.len() as u64, summary.events, "lossless decode");
    let mut jsonl = Vec::new();
    save_jsonl(&events, &mut jsonl).expect("encode jsonl");
    let t = Instant::now();
    let back: Vec<Access> = JsonlIter::new(std::io::Cursor::new(&jsonl))
        .map(|r| r.unwrap())
        .collect();
    let jsonl_decode = t.elapsed();
    assert_eq!(back.len(), events.len());
    std::fs::remove_file(&trace_path).ok();

    // Sharded offline analysis, 1 vs 4 shards. Histogram's sharing lives in
    // one tiny argument array — a single cluster, which cannot shard — so
    // the speedup is measured on a synthetic trace with 8 independent
    // false-sharing clusters, matching the tier-1 integration test.
    let per_region = (iters * 12 / 8).max(150_000); // match the recorded trace's event count
    let synth = multi_cluster_trace(8, per_region, base);
    let det = DetectorConfig::sensitive();
    let run = |shards: usize| {
        let t = Instant::now();
        let out = analyze_events(&synth, base, size, None, &AnalyzeConfig::new(det, shards));
        (t.elapsed(), out)
    };
    let (t1, out1) = run(1);
    let (t4, out4) = run(4);
    let identical = report_essence(&out1.report) == report_essence(&out4.report);

    let report = TraceBench {
        schema: "predator-trace-bench/1",
        workload: "histogram",
        threads: cfg.threads,
        iters,
        record: RecordStats {
            wall_ms: ms(record_wall),
            events: summary.events,
            events_per_s: per_s(summary.events, record_wall),
            ptrace_bytes: summary.bytes,
            bytes_per_event: summary.bytes as f64 / summary.events.max(1) as f64,
        },
        size: SizeStats {
            jsonl_bytes: jsonl.len() as u64,
            size_ratio: jsonl.len() as f64 / summary.bytes.max(1) as f64,
        },
        decode: DecodeStats {
            ptrace_events_per_s: per_s(summary.events, ptrace_decode),
            jsonl_events_per_s: per_s(summary.events, jsonl_decode),
        },
        analyze: AnalyzeStats {
            trace: "synthetic-8-cluster-pingpong",
            events: out4.events,
            clusters: out4.clusters,
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            shards1_ms: ms(t1),
            shards4_ms: ms(t4),
            speedup: t1.as_secs_f64() / t4.as_secs_f64().max(1e-9),
            events_per_s_shards4: per_s(out4.events, t4),
            findings: out4.report.findings.len(),
            reports_identical: identical,
        },
    };

    println!(
        "TRACE BENCH — histogram, {} threads x {} iters",
        cfg.threads, iters
    );
    println!(
        "  record:   {} events in {:.1} ms ({:.1} Mevents/s), {:.2} bytes/event",
        report.record.events,
        report.record.wall_ms,
        report.record.events_per_s / 1e6,
        report.record.bytes_per_event
    );
    println!(
        "  size:     .ptrace {} B vs JSONL {} B — {:.1}x smaller",
        report.record.ptrace_bytes, report.size.jsonl_bytes, report.size.size_ratio
    );
    println!(
        "  decode:   .ptrace {:.1} Mevents/s vs JSONL {:.1} Mevents/s",
        report.decode.ptrace_events_per_s / 1e6,
        report.decode.jsonl_events_per_s / 1e6
    );
    println!(
        "  analyze:  {} ({} events, {} clusters, {} core(s)): 1 shard {:.1} ms, 4 shards {:.1} ms — {:.2}x speedup, {} finding(s), identical: {}",
        report.analyze.trace,
        report.analyze.events,
        report.analyze.clusters,
        report.analyze.cores,
        report.analyze.shards1_ms,
        report.analyze.shards4_ms,
        report.analyze.speedup,
        report.analyze.findings,
        report.analyze.reports_identical
    );
    assert!(
        report.analyze.reports_identical,
        "shard count must not change the report"
    );
    if report.analyze.cores < 4 {
        println!(
            "  note:     {} core(s) visible — shard workers time-slice the CPU, so speedup < 1 is expected here",
            report.analyze.cores
        );
    }

    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}

/// Two threads ping-pong on adjacent words in several well-separated
/// regions — independent false-sharing clusters the shard planner can
/// split, mirroring the tier-1 integration test's speedup workload.
fn multi_cluster_trace(regions: u64, per_region: u64, base: u64) -> Vec<Access> {
    let mut out = Vec::with_capacity((regions * per_region) as usize);
    for i in 0..per_region {
        for r in 0..regions {
            let rbase = base + r * 0x10000;
            out.push(Access::write(
                ThreadId((i % 2) as u16),
                rbase + (i % 2) * 8,
                8,
            ));
        }
    }
    out
}

/// Findings + stats only (the `obs` section is process-global telemetry).
fn report_essence(r: &predator_core::Report) -> String {
    format!(
        "{}\n{}",
        serde_json::to_string(&r.findings).unwrap(),
        serde_json::to_string(&r.stats).unwrap()
    )
}
