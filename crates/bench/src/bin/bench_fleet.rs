//! `bench_fleet` — fleet-pipeline telemetry behind `scripts/bench.sh`.
//!
//! ```text
//! bench_fleet [out.json] [--traces N] [--events-per-trace N]
//! ```
//!
//! Builds a synthetic multi-trace corpus (default 8 traces × 1.25M events
//! = 10M events, the ISSUE's ≥10⁷ bar), deliberately corrupts one member
//! mid-file so the loss-accounting path is always exercised, then measures
//! the fleet pipeline end to end:
//!
//! * ingest throughput (Mevents/s through the sharded analyzer into the
//!   corpus store);
//! * merged cross-run report build time;
//! * trend-vs-baseline time (first half of the corpus as baseline);
//! * peak RSS over the whole run.
//!
//! The JSON it writes (`BENCH_6.json` by convention) is schema-versioned
//! (`predator-fleet-bench/1`) and flows through `predator bench-diff`'s
//! schema-agnostic comparison: `*_mevents_per_s` gates on slowdown,
//! `*_wall_ms` / `peak_rss_kb` / `records_lost` gate on growth.

use std::io::BufWriter;
use std::path::PathBuf;
use std::time::Instant;

use predator_bench::telemetry::peak_rss_kb;
use predator_core::DetectorConfig;
use predator_fleet::{build_fleet_report, ingest, trend, Manifest, DEFAULT_TOLERANCE};
use predator_sim::{Access, ThreadId};
use predator_trace::{AnalyzeConfig, TraceWriter};
use serde::Serialize;

#[derive(Serialize)]
struct FleetBench {
    schema: &'static str,
    traces: u64,
    events: u64,
    corrupted_traces: u64,
    ingest_wall_ms: f64,
    ingest_mevents_per_s: f64,
    merge_wall_ms: f64,
    trend_wall_ms: f64,
    aggregates: u64,
    records_lost: u64,
    chunks_skipped: u64,
    peak_rss_kb: u64,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

const BASE: u64 = 0x4000_0000;
const SIZE: u64 = 64 << 20;

/// One synthetic run: two threads ping-pong on adjacent words across
/// several well-separated regions. `salt` shifts which regions are hot so
/// different traces overlap on some callsite keys and not others — the
/// merged report has both fleet-wide and run-local aggregates.
fn write_trace(path: &PathBuf, events: u64, salt: u64) -> u64 {
    let f = std::fs::File::create(path).expect("create trace");
    let mut w = TraceWriter::create(BufWriter::new(f), BASE, SIZE).expect("trace header");
    let regions = 4 + (salt % 3); // 4..=6 clusters per run
    let mut batch = Vec::with_capacity(4096);
    let mut written = 0u64;
    let mut i = 0u64;
    while written < events {
        let r = i % regions;
        let rbase = BASE + (r + salt) * 0x10000;
        batch.push(Access::write(
            ThreadId((i % 2) as u16),
            rbase + (i % 2) * 8,
            8,
        ));
        written += 1;
        i += 1;
        if batch.len() == 4096 {
            w.write_events(&batch).expect("write events");
            batch.clear();
        }
    }
    if !batch.is_empty() {
        w.write_events(&batch).expect("write events");
    }
    let (summary, _) = w.finish().expect("seal trace");
    summary.events
}

/// Flips bytes in the middle of one event chunk so the reader's CRC check
/// fails there: the corpus must absorb the damage as loss accounting.
fn corrupt_mid_file(path: &PathBuf) {
    let mut bytes = std::fs::read(path).expect("read trace");
    let mid = bytes.len() / 2;
    let end = (mid + 64).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xA5;
    }
    std::fs::write(path, bytes).expect("rewrite trace");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_6.json".to_string();
    let mut traces: u64 = 8;
    let mut events_per_trace: u64 = 1_250_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--traces" => traces = it.next().and_then(|v| v.parse().ok()).expect("--traces N"),
            "--events-per-trace" => {
                events_per_trace = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--events-per-trace N")
            }
            other => out_path = other.to_string(),
        }
    }

    let work = std::env::temp_dir().join(format!("bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create workdir");
    let corpus = work.join("corpus");
    let baseline = work.join("baseline");

    println!("FLEET BENCH — {traces} trace(s) x {events_per_trace} events");
    let mut paths = Vec::new();
    let mut generated = 0u64;
    for t in 0..traces {
        let p = work.join(format!("run{t}.ptrace"));
        generated += write_trace(&p, events_per_trace, t);
        paths.push(p);
    }
    // Damage the last trace mid-file: its tail chunk(s) must degrade to
    // loss accounting, never an ingest error.
    corrupt_mid_file(paths.last().expect("at least one trace"));

    let det = DetectorConfig::sensitive();
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let cfg = AnalyzeConfig::new(det, shards);

    let t = Instant::now();
    let outcomes = ingest(&corpus, &paths, &cfg).expect("ingest");
    let ingest_wall = t.elapsed();
    assert_eq!(outcomes.len() as u64, traces);
    assert!(outcomes.iter().all(|o| o.added), "fresh corpus, no dedup");

    let m = Manifest::load_required(&corpus).expect("manifest");
    let t = Instant::now();
    let report = build_fleet_report(&m);
    let merge_wall = t.elapsed();
    assert!(
        report.loss.records_lost > 0 || report.loss.chunks_skipped > 0,
        "the corrupted member must surface as loss accounting"
    );
    assert!(!report.aggregates.is_empty(), "ping-pong must be detected");

    // Trend against a baseline of the first half of the runs.
    let half = &paths[..paths.len().div_ceil(2)];
    ingest(&baseline, half, &cfg).expect("baseline ingest");
    let bm = Manifest::load_required(&baseline).expect("baseline manifest");
    let t = Instant::now();
    let base_report = build_fleet_report(&bm);
    let delta = trend(&base_report, &report, DEFAULT_TOLERANCE);
    let trend_wall = t.elapsed();

    let ingested: u64 = outcomes.iter().map(|o| o.events).sum();
    let bench = FleetBench {
        schema: "predator-fleet-bench/1",
        traces,
        events: ingested,
        corrupted_traces: 1,
        ingest_wall_ms: ms(ingest_wall),
        ingest_mevents_per_s: ingested as f64 / ingest_wall.as_secs_f64().max(1e-9) / 1e6,
        merge_wall_ms: ms(merge_wall),
        trend_wall_ms: ms(trend_wall),
        aggregates: report.aggregates.len() as u64,
        records_lost: report.loss.records_lost,
        chunks_skipped: report.loss.chunks_skipped,
        peak_rss_kb: peak_rss_kb(),
    };

    println!(
        "  ingest:   {} of {} generated event(s) in {:.1} ms ({:.2} Mevents/s, {} shard(s))",
        bench.events, generated, bench.ingest_wall_ms, bench.ingest_mevents_per_s, shards
    );
    println!(
        "  loss:     {} record(s) lost, {} chunk(s) skipped (1 member corrupted on purpose)",
        bench.records_lost, bench.chunks_skipped
    );
    println!(
        "  merge:    {} run(s) -> {} aggregate(s) in {:.1} ms",
        report.runs, bench.aggregates, bench.merge_wall_ms
    );
    println!(
        "  trend:    vs {}-run baseline in {:.1} ms ({} entries)",
        base_report.runs,
        bench.trend_wall_ms,
        delta.entries.len()
    );
    println!("  rss:      {} KiB peak", bench.peak_rss_kb);

    let json = serde_json::to_string_pretty(&bench).unwrap();
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
    std::fs::remove_dir_all(&work).ok();
}
