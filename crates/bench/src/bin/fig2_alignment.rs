//! Figure 2 — object alignment sensitivity of `linear_regression`.
//!
//! Sweeps the starting offset of the `lreg_args` array relative to cache-line
//! boundaries (0..56 bytes, step 8). The paper's shape: offsets 0 and 56 are
//! fast (no false sharing), offset 24 is worst (~15× on their machine — the
//! hot tail of each 64-byte element straddles a line and ping-pongs with
//! both neighbors).
//!
//! Two sweeps are printed:
//!
//! 1. **Simulated** — the access pattern fed through the detector at each
//!    offset; reports exact invalidation counts and a modeled runtime
//!    (1 hit-unit per access + 100 per invalidation). Host-independent: this
//!    reproduces the curve even on a single-core container, where real
//!    threads never contend.
//! 2. **Native** — real threads, real memory, wall clock. Meaningful only
//!    with ≥2 physical cores (the paper's §5.2 notes that same-core threads
//!    suffer no false-sharing penalty).
//!
//! ```text
//! cargo run -p predator-bench --release --bin fig2_alignment
//! PREDATOR_ITERS=5000000 cargo run -p predator-bench --release --bin fig2_alignment
//! ```

use predator_bench::{
    eval_reps, header, lreg_offset_invalidations, median_time, modeled_time, ratio,
};
use predator_workloads::phoenix::linear_regression::LinearRegression;
use predator_workloads::WorkloadConfig;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);

    header("Figure 2 (simulated): invalidations & modeled runtime vs. offset");
    let sim_iters = 50_000u64;
    println!("threads=4 iters={sim_iters} (deterministic interleaved schedule)\n");
    println!(
        "{:<12} {:>14} {:>16} {:>10}",
        "offset (B)", "invalidations", "modeled time", "vs best"
    );
    let sims: Vec<(usize, u64, f64)> = (0..64)
        .step_by(8)
        .map(|off| {
            let (acc, inv) = lreg_offset_invalidations(off as u64, 4, sim_iters);
            (off, inv, modeled_time(acc, inv))
        })
        .collect();
    let best = sims.iter().map(|s| s.2).fold(f64::INFINITY, f64::min);
    for (off, inv, t) in &sims {
        println!("{:<12} {:>14} {:>16.0} {:>9.2}x", off, inv, t, t / best);
    }
    let worst = sims.iter().map(|s| s.2).fold(0.0f64, f64::max);
    let worst_offsets: Vec<String> = sims
        .iter()
        .filter(|s| s.2 >= worst * 0.99)
        .map(|s| s.0.to_string())
        .collect();
    println!(
        "\nsimulated worst offsets: {{{}}} bytes at {:.1}x over best.",
        worst_offsets.join(", "),
        worst / best
    );
    println!(
        "paper: clean at 0 and 56, worst at 24 (~15x measured); the invalidation\n\
         model yields a flat plateau wherever the hot field block straddles a\n\
         line (offsets 8-32), at the same magnitude."
    );

    header("Figure 2 (native): wall time vs. offset");
    let iters = std::env::var("PREDATOR_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000u64);
    let cfg = WorkloadConfig {
        threads,
        iters,
        ..WorkloadConfig::default()
    };
    let reps = eval_reps();
    println!("threads={threads} iters/thread={iters} reps={reps} (median)");
    if threads < 2
        || std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
    {
        println!("WARNING: <2 cores available — false sharing cannot affect wall time here.\n");
    } else {
        println!();
    }
    println!("{:<12} {:>12} {:>10}", "offset (B)", "time (ms)", "vs best");
    let results: Vec<_> = (0..64)
        .step_by(8)
        .map(|offset| {
            (
                offset,
                median_time(reps, || LinearRegression.run_native_offset(&cfg, offset)),
            )
        })
        .collect();
    let best = results.iter().map(|(_, d)| *d).min().unwrap();
    for (offset, d) in &results {
        println!(
            "{:<12} {:>12.3} {:>9.2}x",
            offset,
            d.as_secs_f64() * 1e3,
            ratio(*d, best)
        );
    }
}
