//! # predator-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! PREDATOR paper's evaluation (§4). One binary per experiment:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Figure 2 — alignment sensitivity of linear_regression | `fig2_alignment` |
//! | Figure 5 — example detector report | (`predator run linear_regression --sensitive` in the CLI crate) |
//! | Table 1 — detection/prediction matrix + improvements | `table1_detection` |
//! | §4.1.2 — real-application findings | `table_apps` |
//! | Figure 7 — execution-time overhead | `fig7_overhead` |
//! | Figures 8–9 — absolute/relative memory overhead | `fig8_9_memory` |
//! | Figure 10 — sampling-rate sensitivity | `fig10_sampling` |
//!
//! Criterion micro-benchmarks for the detector hot path and design-choice
//! ablations live in `benches/`.
//!
//! Absolute numbers differ from the paper (their substrate was an 8-core
//! Xeon running instrumented native binaries; ours is a simulator), but the
//! *shapes* — who is detected, who wins, where the knees are — are the
//! reproduction targets. `EXPERIMENTS.md` records paper-vs-measured values.

pub mod telemetry;

use std::time::Duration;

use predator_core::{DetectorConfig, Report, Session};
use predator_workloads::{Workload, WorkloadConfig};

/// Median wall time of `reps` runs of `f` (discards min/max like the paper's
/// "average of 10 runs, excluding the maximum and minimum").
pub fn median_time(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    assert!(reps >= 1);
    let mut times: Vec<Duration> = (0..reps).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Times a tracked run of `w` under `det` (the workload runs on its
/// deterministic logical schedule; the detector does the real work).
pub fn time_tracked(w: &dyn Workload, det: DetectorConfig, cfg: &WorkloadConfig) -> Duration {
    let session = Session::with_config(det);
    let start = std::time::Instant::now();
    w.run_tracked(&session, cfg);
    start.elapsed()
}

/// Runs tracked and also returns the report (for detection columns).
pub fn run_tracked_with_report(
    w: &dyn Workload,
    det: DetectorConfig,
    cfg: &WorkloadConfig,
) -> (Duration, Report) {
    let session = Session::with_config(det);
    let start = std::time::Instant::now();
    w.run_tracked(&session, cfg);
    let elapsed = start.elapsed();
    (elapsed, session.report())
}

/// Formats a duration ratio like the paper's normalized-runtime plots.
pub fn ratio(num: Duration, den: Duration) -> f64 {
    num.as_secs_f64() / den.as_secs_f64().max(1e-12)
}

/// A check mark or blank for detection-matrix tables.
pub fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===\n");
}

/// The detector configuration used by the evaluation binaries: the paper's
/// thresholds scaled to our (smaller) workload sizes. Sampling stays at the
/// paper's 1%.
pub fn eval_config() -> DetectorConfig {
    DetectorConfig {
        tracking_threshold: 64,
        prediction_threshold: 256,
        report_threshold: 200,
        ..DetectorConfig::paper()
    }
}

/// Default workload size for the evaluation binaries (overridable via the
/// `PREDATOR_ITERS` environment variable).
pub fn eval_iters() -> u64 {
    std::env::var("PREDATOR_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000)
}

/// Repetitions for native timing runs (`PREDATOR_REPS`, default 5).
pub fn eval_reps() -> usize {
    std::env::var("PREDATOR_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Cost of one coherence invalidation relative to an L1 hit, for the
/// modeled-runtime estimates. ~100ns cross-core invalidation vs ~1ns hit is
/// the usual order of magnitude; the paper's observed 15× for the worst
/// linear_regression placement falls out of ratios in this range.
pub const INVALIDATION_PENALTY: f64 = 100.0;

/// Modeled execution time in L1-hit units: every access costs 1, every
/// invalidation adds the penalty. This is the same coherence-traffic model
/// the detector's ranking is built on (§2.1: invalidations are the root
/// cause of the degradation).
pub fn modeled_time(accesses: u64, invalidations: u64) -> f64 {
    accesses as f64 + INVALIDATION_PENALTY * invalidations as f64
}

/// Detector configuration for modeled-improvement runs: everything counted
/// (no sampling, tiny thresholds) so invalidation totals are exact.
pub fn model_config() -> DetectorConfig {
    DetectorConfig {
        tracking_threshold: 1,
        prediction_threshold: 1024,
        report_threshold: 1,
        sampling: false,
        prediction: false,
        ..DetectorConfig::paper()
    }
}

/// Modeled improvement (%) of fixing a workload: run broken and fixed
/// layouts through the unsampled detector under the deterministic
/// interleaved schedule and compare modeled times. This substitutes for the
/// paper's native Improvement column on hosts without multiple cores, where
/// false sharing has no wall-clock effect (§5.2's same-core caveat).
pub fn modeled_improvement(w: &dyn Workload, cfg: &WorkloadConfig) -> f64 {
    let measure = |variant| {
        let session = Session::with_config(model_config());
        w.run_tracked(&session, &cfg.with_variant(variant));
        let rt = session.runtime();
        modeled_time(rt.events(), rt.total_invalidations())
    };
    let broken = measure(predator_workloads::Variant::Broken);
    let fixed = measure(predator_workloads::Variant::Fixed);
    (broken / fixed - 1.0) * 100.0
}

/// Wall-clock cost assumed per invalidation in [`projected_improvement`]
/// (a cross-core coherence miss, ~100 ns).
pub const INVALIDATION_SECONDS: f64 = 100e-9;

/// Projected improvement (%) of fixing a workload, grounding the model in
/// real work: the invalidation *rate* comes from the exact (unsampled,
/// deterministic) detector run on the broken layout, the work baseline from
/// the *native* fixed-variant wall time — which is meaningful even on one
/// core, where it measures the serialized total work. The projection
/// `invalidations × 100 ns / T_fixed` assumes the adversarial interleaving
/// the detector assumes, so magnitudes are upper bounds; the paper's
/// severity *ordering* (linear_regression ≫ histogram > streamcluster >
/// word_count ≈ reverse_index) is the reproduction target.
pub fn projected_improvement(
    w: &dyn Workload,
    cfg: &WorkloadConfig,
    native_iters: u64,
    reps: usize,
) -> f64 {
    let model_iters = cfg.iters.min(20_000);
    let session = Session::with_config(model_config());
    w.run_tracked(&session, &cfg.with_iters(model_iters));
    let inv_model = session.runtime().total_invalidations() as f64;

    let ncfg = cfg
        .with_iters(native_iters)
        .with_variant(predator_workloads::Variant::Fixed);
    let t_fixed = median_time(reps, || w.run_native(&ncfg)).as_secs_f64();

    let scaled_inv = inv_model * (native_iters as f64 / model_iters as f64);
    scaled_inv * INVALIDATION_SECONDS / t_fixed.max(1e-9) * 100.0
}

/// Simulates the linear_regression access pattern with the `lreg_args`
/// array placed `offset` bytes past a line boundary, and returns
/// `(accesses, physical invalidations)` under the deterministic interleaved
/// schedule. This is the simulation half of the Figure 2 sweep: it
/// reproduces the alignment-sensitivity shape on any host, including
/// single-core machines where the native timing sweep is flat.
pub fn lreg_offset_invalidations(offset: u64, threads: usize, iters: u64) -> (u64, u64) {
    assert!(offset.is_multiple_of(8) && offset < 64);
    let rt = predator_core::Predator::new(model_config(), 0x4000_0000, 1 << 20);
    let base = 0x4000_0400 + offset;
    for _ in 0..iters {
        for t in 0..threads as u64 {
            let element = base + t * 64;
            // The Figure 6 loop body: five hot read-modify-write fields at
            // element offsets 24..64.
            for w in 3..8u64 {
                let addr = element + w * 8;
                rt.handle_access(
                    predator_sim::ThreadId(t as u16),
                    addr,
                    8,
                    predator_sim::AccessKind::Read,
                );
                rt.handle_access(
                    predator_sim::ThreadId(t as u16),
                    addr,
                    8,
                    predator_sim::AccessKind::Write,
                );
            }
        }
    }
    (rt.events(), rt.total_invalidations())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_order_insensitive() {
        let mut samples = vec![
            Duration::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(3),
        ]
        .into_iter();
        let m = median_time(3, || samples.next().unwrap());
        assert_eq!(m, Duration::from_millis(3));
    }

    #[test]
    fn ratio_guards_against_zero() {
        assert!(ratio(Duration::from_secs(1), Duration::ZERO) > 0.0);
        assert!((ratio(Duration::from_secs(2), Duration::from_secs(1)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn marks() {
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "-");
    }

    #[test]
    fn eval_config_is_valid() {
        eval_config().validate().unwrap();
        assert!((eval_config().sampling_rate() - 0.01).abs() < 1e-9);
        model_config().validate().unwrap();
    }

    #[test]
    fn lreg_simulation_reproduces_figure2_shape() {
        // Offsets 0 and 56 clean; 24 worst — the paper's exact curve.
        let inv = |off| lreg_offset_invalidations(off, 4, 200).1;
        assert_eq!(inv(0), 0, "offset 0 has no sharing");
        assert_eq!(inv(56), 0, "offset 56 has no sharing");
        let worst = (0..8).map(|i| inv(i * 8)).max().unwrap();
        assert!(inv(24) >= worst, "offset 24 must be (joint) worst");
        assert!(inv(24) > 500);
    }

    #[test]
    fn modeled_improvement_positive_for_broken_histogram() {
        let w = predator_workloads::by_name("histogram").unwrap();
        let cfg = WorkloadConfig {
            iters: 2_000,
            ..WorkloadConfig::quick()
        };
        let imp = modeled_improvement(w.as_ref(), &cfg);
        assert!(
            imp > 50.0,
            "histogram fix should be worth a lot, got {imp:.1}%"
        );
        let clean = predator_workloads::by_name("blackscholes").unwrap();
        let imp = modeled_improvement(clean.as_ref(), &cfg);
        assert!(
            imp.abs() < 5.0,
            "clean workload improvement ~0, got {imp:.1}%"
        );
    }
}
