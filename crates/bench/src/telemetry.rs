//! Schema-versioned bench telemetry: the `BENCH_<n>.json` pipeline.
//!
//! [`BenchReport::measure`] runs the small workload suite plus a
//! hot-path microbenchmark and snapshots peak RSS, producing a
//! [`BenchReport`] that `scripts/bench.sh` writes as JSON. The script runs
//! the emitter twice — once with observability hooks compiled in, once
//! under `obs-off` — and [`BenchReport::with_overhead_from`] merges the
//! pair so the published file carries the measured `obs_overhead_pct`
//! against the ≤5% hot-path budget.
//!
//! `predator bench-diff old.json new.json` then gates CI on
//! [`diff_reports`]: throughput or hot-path regressions beyond the
//! tolerance fail the build.

use std::fmt;
use std::time::Instant;

use predator_core::{DetectorConfig, Predator, Session};
use predator_policy::compare::{direction_for_key, gate_metric, Direction};
use predator_sim::{AccessKind, ThreadId};
use predator_workloads::{by_name, WorkloadConfig};
use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Current schema identifier; bump the suffix on breaking changes.
pub const SCHEMA: &str = "predator-bench/1";

/// The small workload set `scripts/bench.sh` and the nightly CI job run:
/// one observed-sharing, one prediction-only, one clean workload — enough
/// to catch hot-path regressions without a long wall-clock bill.
pub const SMALL_SUITE: &[&str] = &["histogram", "linear_regression", "blackscholes"];

/// One workload's telemetry row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadBench {
    /// Workload name (see `predator list`).
    pub name: String,
    /// Worker threads.
    pub threads: usize,
    /// Per-thread work items.
    pub iters: u64,
    /// Tracked-run wall time in milliseconds.
    pub wall_ms: f64,
    /// Accesses offered to the detector.
    pub accesses: u64,
    /// Millions of detector-visible accesses per second.
    pub throughput_maccess_s: f64,
    /// Findings in the run's report.
    pub findings: usize,
}

/// Detector hot-path microbenchmark results (ns per `handle_access`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotPath {
    /// Write to a tracked line (history table + word counters active).
    pub tracked_write_ns: f64,
    /// Read below the tracking threshold (the common fast path).
    pub untracked_read_ns: f64,
}

/// The `BENCH_<n>.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// False when built with `obs-off` (hooks compiled out).
    pub obs_hooks: bool,
    /// Hot-path ns/access.
    pub hot_path: HotPath,
    /// Per-workload rows.
    pub workloads: Vec<WorkloadBench>,
    /// Peak resident set size (`VmHWM`) in KiB; 0 when unavailable.
    pub peak_rss_kb: u64,
    /// Observability overhead on the tracked hot path, percent: set by
    /// [`BenchReport::with_overhead_from`] when an `obs-off` twin run is
    /// available, and 0 by construction for `obs-off` reports.
    pub obs_overhead_pct: Option<f64>,
}

const BASE: u64 = 0x4000_0000;

fn ns_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    // One warmup pass, then the median of three timed passes.
    for _ in 0..iters / 4 {
        f();
    }
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[1]
}

/// Measures the detector hot path directly, the number the 5% obs budget
/// is judged on.
pub fn measure_hot_path(iters: u64) -> HotPath {
    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    for _ in 0..200 {
        rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
    }
    assert!(rt.tracked_lines() > 0, "warmup must promote the line");
    let tracked_write_ns = ns_per_iter(iters, || {
        rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write)
    });
    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    let untracked_read_ns = ns_per_iter(iters, || {
        rt.handle_access(ThreadId(0), BASE + 4096, 8, AccessKind::Read)
    });
    HotPath {
        tracked_write_ns,
        untracked_read_ns,
    }
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`); 0 on
/// hosts without procfs.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

impl BenchReport {
    /// Runs `names` under the evaluation detector config with `iters`
    /// per-thread work items each, plus the hot-path microbenchmark
    /// (`hot_iters` accesses per timed pass).
    pub fn measure(names: &[&str], iters: u64, hot_iters: u64) -> Result<BenchReport, String> {
        let mut workloads = Vec::with_capacity(names.len());
        for name in names {
            let w = by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
            let cfg = WorkloadConfig {
                iters,
                ..WorkloadConfig::quick()
            };
            let session = Session::with_config(crate::eval_config());
            let start = Instant::now();
            w.run_tracked(&session, &cfg);
            let wall = start.elapsed();
            let accesses = session.runtime().events();
            let report = session.report();
            workloads.push(WorkloadBench {
                name: name.to_string(),
                threads: cfg.threads,
                iters: cfg.iters,
                wall_ms: wall.as_secs_f64() * 1e3,
                accesses,
                throughput_maccess_s: accesses as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
                findings: report.findings.len(),
            });
        }
        let obs_hooks = !predator_obs::disabled();
        Ok(BenchReport {
            schema: SCHEMA.to_string(),
            obs_hooks,
            hot_path: measure_hot_path(hot_iters),
            workloads,
            peak_rss_kb: peak_rss_kb(),
            // An obs-off build *is* the baseline: its overhead is 0 by
            // construction. Hooked builds wait for the merge step.
            obs_overhead_pct: if obs_hooks { None } else { Some(0.0) },
        })
    }

    /// Fills `obs_overhead_pct` from an `obs-off` twin of this report:
    /// percent slowdown of the tracked hot path attributable to the hooks.
    pub fn with_overhead_from(mut self, baseline: &BenchReport) -> Result<BenchReport, String> {
        if baseline.obs_hooks {
            return Err("baseline report was not built with obs-off".into());
        }
        let base = baseline.hot_path.tracked_write_ns;
        if base <= 0.0 {
            return Err("baseline tracked_write_ns is not positive".into());
        }
        self.obs_overhead_pct = Some((self.hot_path.tracked_write_ns / base - 1.0) * 100.0);
        Ok(self)
    }

    /// Validates the schema tag (call after deserializing foreign files).
    pub fn check_schema(&self) -> Result<(), String> {
        if self.schema == SCHEMA {
            Ok(())
        } else {
            Err(format!(
                "unsupported bench schema `{}` (want `{SCHEMA}`)",
                self.schema
            ))
        }
    }
}

/// One compared metric in a [`BenchDiff`].
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric label (`workload/<name> throughput`, `hot_path tracked_write`).
    pub metric: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Signed regression fraction (positive = got worse).
    pub regression: f64,
    /// True when `regression` exceeds the tolerance.
    pub failed: bool,
}

/// Result of comparing two bench reports.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// All compared metrics.
    pub rows: Vec<DiffRow>,
    /// Workloads present in only one report (informational).
    pub unmatched: Vec<String>,
}

impl BenchDiff {
    /// True when any metric regressed beyond tolerance.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.failed)
    }
}

impl fmt::Display for BenchDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<40} {:>12} {:>12} {:>9}  GATE",
            "METRIC", "OLD", "NEW", "CHANGE"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<40} {:>12.3} {:>12.3} {:>+8.1}%  {}",
                r.metric,
                r.old,
                r.new,
                r.regression * 100.0,
                if r.failed { "FAIL" } else { "ok" }
            )?;
        }
        for name in &self.unmatched {
            writeln!(f, "{name:<40} (present in only one report)")?;
        }
        Ok(())
    }
}

/// Compares two bench reports: workload throughput (lower is worse) and
/// hot-path ns/access (higher is worse), each gated at `tolerance`
/// (fraction, e.g. `0.5` = 50% regression allowed — bench noise in shared
/// CI runners is real).
pub fn diff_reports(old: &BenchReport, new: &BenchReport, tolerance: f64) -> BenchDiff {
    let mut diff = BenchDiff::default();
    let mut row = |metric: String, direction: Direction, old: f64, new: f64| {
        let (regression, failed) = gate_metric(direction, old, new, tolerance);
        diff.rows.push(DiffRow {
            metric,
            old,
            new,
            regression,
            failed,
        });
    };
    row(
        "hot_path/tracked_write_ns".into(),
        Direction::HigherIsWorse,
        old.hot_path.tracked_write_ns,
        new.hot_path.tracked_write_ns,
    );
    row(
        "hot_path/untracked_read_ns".into(),
        Direction::HigherIsWorse,
        old.hot_path.untracked_read_ns,
        new.hot_path.untracked_read_ns,
    );
    for o in &old.workloads {
        match new.workloads.iter().find(|n| n.name == o.name) {
            Some(n) => {
                // Throughput: regression is the fractional *loss*.
                row(
                    format!("workload/{}/throughput_maccess_s", o.name),
                    Direction::LowerIsWorse,
                    o.throughput_maccess_s,
                    n.throughput_maccess_s,
                );
            }
            None => diff.unmatched.push(format!("workload/{}", o.name)),
        }
    }
    for n in &new.workloads {
        if !old.workloads.iter().any(|o| o.name == n.name) {
            diff.unmatched.push(format!("workload/{}", n.name));
        }
    }
    diff
}

/// The `schema` tag of an arbitrary telemetry document, if present.
pub fn schema_of(v: &Value) -> Option<&str> {
    match v.field("schema") {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Flattens a telemetry document's numeric leaves into `path -> value`
/// rows: map keys join with `/`, sequence elements are labelled by their
/// `name`/`id`/`workload` field when they have one (index otherwise), and
/// the `schema` tag is skipped. This is how `bench-diff` discovers metrics
/// in schemas it has no type for.
pub fn numeric_leaves(v: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    let join = |k: &str| {
        if prefix.is_empty() {
            k.to_string()
        } else {
            format!("{prefix}/{k}")
        }
    };
    match v {
        Value::I64(n) => out.push((prefix.to_string(), *n as f64)),
        Value::U64(n) => out.push((prefix.to_string(), *n as f64)),
        Value::F64(n) => out.push((prefix.to_string(), *n)),
        Value::Map(m) => {
            for (k, val) in m {
                if k == "schema" {
                    continue;
                }
                numeric_leaves(val, &join(k), out);
            }
        }
        Value::Seq(s) => {
            for (i, val) in s.iter().enumerate() {
                let label = val
                    .as_map()
                    .and_then(|m| {
                        m.iter()
                            .find(|(k, _)| matches!(k.as_str(), "name" | "id" | "workload"))
                            .and_then(|(_, v)| match v {
                                Value::Str(s) => Some(s.clone()),
                                _ => None,
                            })
                    })
                    .unwrap_or_else(|| i.to_string());
                numeric_leaves(val, &join(&label), out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Schema-agnostic comparison: discovers numeric metrics in both documents
/// by key path and gates the ones whose direction is inferable. Used by
/// `bench-diff` for any schema other than [`SCHEMA`] (whose typed
/// comparison is kept verbatim).
pub fn diff_values(old: &Value, new: &Value, tolerance: f64) -> BenchDiff {
    let mut old_rows = Vec::new();
    numeric_leaves(old, "", &mut old_rows);
    let mut new_rows = Vec::new();
    numeric_leaves(new, "", &mut new_rows);
    let new_map: std::collections::HashMap<&str, f64> =
        new_rows.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let old_keys: std::collections::HashSet<&str> =
        old_rows.iter().map(|(k, _)| k.as_str()).collect();
    let mut diff = BenchDiff::default();
    for (path, ov) in &old_rows {
        let Some(&nv) = new_map.get(path.as_str()) else {
            diff.unmatched.push(path.clone());
            continue;
        };
        // Direction inferred from the key's leaf segment (the suffix
        // heuristics live in the shared engine); informational metrics
        // show their raw relative change and never gate.
        let (regression, failed) = gate_metric(direction_for_key(path), *ov, nv, tolerance);
        diff.rows.push(DiffRow {
            metric: path.clone(),
            old: *ov,
            new: nv,
            regression,
            failed,
        });
    }
    for (path, _) in &new_rows {
        if !old_keys.contains(path.as_str()) {
            diff.unmatched.push(path.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tracked: f64, throughput: f64) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            obs_hooks: true,
            hot_path: HotPath {
                tracked_write_ns: tracked,
                untracked_read_ns: 5.0,
            },
            workloads: vec![WorkloadBench {
                name: "histogram".into(),
                threads: 4,
                iters: 1000,
                wall_ms: 12.0,
                accesses: 100_000,
                throughput_maccess_s: throughput,
                findings: 1,
            }],
            peak_rss_kb: 10_000,
            obs_overhead_pct: None,
        }
    }

    #[test]
    fn serde_round_trip_preserves_schema() {
        let r = sample(40.0, 8.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        back.check_schema().unwrap();
        assert!(back.obs_hooks);
        assert_eq!(back.workloads[0].name, "histogram");
        assert!((back.hot_path.tracked_write_ns - 40.0).abs() < 1e-9);
        assert_eq!(back.obs_overhead_pct, None);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut r = sample(40.0, 8.0);
        r.schema = "predator-bench/0".into();
        assert!(r.check_schema().is_err());
    }

    #[test]
    fn overhead_merge_computes_percent() {
        let on = sample(42.0, 8.0);
        let mut off = sample(40.0, 8.0);
        off.obs_hooks = false;
        off.obs_overhead_pct = Some(0.0);
        let merged = on.with_overhead_from(&off).unwrap();
        assert!((merged.obs_overhead_pct.unwrap() - 5.0).abs() < 1e-9);
        // Merging against a hooked report is a usage error.
        let hooked = sample(40.0, 8.0);
        assert!(sample(42.0, 8.0).with_overhead_from(&hooked).is_err());
    }

    #[test]
    fn diff_flags_regressions_beyond_tolerance() {
        let old = sample(40.0, 10.0);
        let slower = sample(40.0, 4.0); // throughput -60%
        let d = diff_reports(&old, &slower, 0.5);
        assert!(d.has_regressions());
        let within = sample(40.0, 8.0); // -20%, inside 50%
        assert!(!diff_reports(&old, &within, 0.5).has_regressions());
        // Hot-path slowdown beyond tolerance fails too.
        let hot = sample(80.0, 10.0);
        assert!(diff_reports(&old, &hot, 0.5).has_regressions());
    }

    #[test]
    fn diff_reports_unmatched_workloads() {
        let old = sample(40.0, 10.0);
        let mut new = sample(40.0, 10.0);
        new.workloads[0].name = "renamed".into();
        let d = diff_reports(&old, &new, 0.5);
        assert!(!d.has_regressions(), "unmatched is informational");
        assert_eq!(d.unmatched.len(), 2);
        let text = format!("{d}");
        assert!(text.contains("present in only one report"), "{text}");
    }

    #[test]
    fn measured_report_has_versioned_schema_and_rss() {
        let r = BenchReport::measure(&["histogram"], 500, 2_000).unwrap();
        r.check_schema().unwrap();
        assert_eq!(r.workloads.len(), 1);
        assert!(r.workloads[0].accesses > 0);
        assert!(r.hot_path.tracked_write_ns > 0.0);
        assert_eq!(r.obs_hooks, !predator_obs::disabled());
        // procfs is available on the CI hosts this repo targets.
        assert!(r.peak_rss_kb > 0);
    }

    #[test]
    fn unknown_workload_is_an_error() {
        assert!(BenchReport::measure(&["nope"], 10, 10).is_err());
    }

    #[test]
    fn numeric_leaves_flatten_with_named_sequence_elements() {
        let v: Value = serde_json::from_str(
            r#"{"schema":"x/1","ingest":{"mevents_per_s":12.5},
                "traces":[{"name":"a","events":100},{"events":7}],
                "note":"text"}"#,
        )
        .unwrap();
        let mut rows = Vec::new();
        numeric_leaves(&v, "", &mut rows);
        assert_eq!(
            rows,
            vec![
                ("ingest/mevents_per_s".to_string(), 12.5),
                ("traces/a/events".to_string(), 100.0),
                ("traces/1/events".to_string(), 7.0),
            ]
        );
    }

    #[test]
    fn diff_values_gates_by_inferred_direction() {
        let old: Value = serde_json::from_str(
            r#"{"schema":"predator-fleet-bench/1","ingest_mevents_per_s":10.0,
                "merge_wall_ms":100.0,"peak_rss_kb":5000,"events":1000}"#,
        )
        .unwrap();
        // Throughput halved and merge time doubled: both gate. The events
        // count also doubled, but counts are informational.
        let worse: Value = serde_json::from_str(
            r#"{"schema":"predator-fleet-bench/1","ingest_mevents_per_s":5.0,
                "merge_wall_ms":200.0,"peak_rss_kb":5000,"events":2000}"#,
        )
        .unwrap();
        let d = diff_values(&old, &worse, 0.4);
        assert!(d.has_regressions());
        let failed: Vec<&str> = d
            .rows
            .iter()
            .filter(|r| r.failed)
            .map(|r| r.metric.as_str())
            .collect();
        assert_eq!(failed, vec!["ingest_mevents_per_s", "merge_wall_ms"]);
        // Within tolerance: no gate, and the schema key is never compared.
        let d = diff_values(&old, &old, 0.4);
        assert!(!d.has_regressions());
        assert!(d.rows.iter().all(|r| r.metric != "schema"));
    }

    #[test]
    fn diff_values_reports_unmatched_keys() {
        let old: Value = serde_json::from_str(r#"{"a":1.0,"gone":2.0}"#).unwrap();
        let new: Value = serde_json::from_str(r#"{"a":1.0,"fresh":3.0}"#).unwrap();
        let d = diff_values(&old, &new, 0.5);
        assert!(!d.has_regressions());
        assert!(d.unmatched.contains(&"gone".to_string()));
        assert!(d.unmatched.contains(&"fresh".to_string()));
    }

    #[test]
    fn schema_of_reads_the_tag() {
        let v: Value = serde_json::from_str(r#"{"schema":"predator-bench/1"}"#).unwrap();
        assert_eq!(schema_of(&v), Some("predator-bench/1"));
        let v: Value = serde_json::from_str(r#"{"other":1}"#).unwrap();
        assert_eq!(schema_of(&v), None);
    }
}
