//! Criterion micro-benchmarks for the observability hooks themselves.
//!
//! Run twice to quantify the cost of instrumentation:
//!
//! ```text
//! cargo bench --bench obs_overhead
//! cargo bench --bench obs_overhead --features obs-off
//! ```
//!
//! The second run compiles every hook to a no-op; criterion's comparison
//! against the saved baseline shows what observability costs. The budget is
//! <= 5% on the detector hot path with hooks on, and zero measurable
//! difference with `obs-off`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use predator_core::{DetectorConfig, Predator};
use predator_sim::{AccessKind, ThreadId};

const BASE: u64 = 0x4000_0000;

/// Raw primitive costs: one sharded-counter increment, one histogram
/// record, one span create/drop, one event emit against a disabled sink.
fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    g.throughput(Throughput::Elements(1));

    g.bench_function("counter_inc", |b| {
        b.iter(|| predator_obs::static_counter!("bench_counter_total").inc())
    });

    g.bench_function("hot_counter_inc", |b| {
        b.iter(|| predator_obs::hot_counter_inc!("bench_hot_counter_total"))
    });

    g.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(17);
            predator_obs::static_histogram!("bench_hist").record(black_box(v));
        })
    });

    g.bench_function("span_create_drop", |b| {
        b.iter(|| drop(black_box(predator_obs::span("bench"))))
    });

    // No sink installed: emit must bail on one relaxed atomic load.
    g.bench_function("event_emit_disabled", |b| {
        b.iter(|| {
            predator_obs::events().emit(
                "bench_event",
                &[("v", predator_obs::FieldVal::U64(black_box(1)))],
            )
        })
    });

    g.finish();
}

/// Flight-recorder costs at each price point of its cost model: the
/// disabled check hot paths pay by default, the enabled thread-local
/// segment append, and a tracked detector write with the recorder on —
/// which must stay inside the same 5% budget as the other hooks.
fn bench_recorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_recorder");
    g.throughput(Throughput::Elements(1));

    // Disabled (the default): one relaxed load, then nothing.
    g.bench_function("record_disabled", |b| {
        b.iter(|| predator_obs::recorder::record(black_box(BASE), 0, 3, true))
    });

    // Enabled: TLS segment append + logical-clock bump, amortized flush.
    let flight = predator_obs::recorder::recorder();
    flight.enable(predator_obs::recorder::DEFAULT_DEPTH);
    g.bench_function("record_enabled", |b| {
        b.iter(|| predator_obs::recorder::record(black_box(BASE), 0, 3, true))
    });

    // The number the 5% budget is judged on: a tracked detector write with
    // the recorder feeding (compare against obs_hot_path/tracked_write).
    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    for _ in 0..200 {
        rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
    }
    assert!(rt.tracked_lines() > 0);
    g.bench_function("tracked_write_recorder_on", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE), 8, AccessKind::Write))
    });

    flight.disable();
    flight.reset();
    g.finish();
}

/// The detector hot path with its hooks in place — the number that must
/// stay within 5% of the `obs-off` build.
fn bench_hot_path_with_hooks(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_hot_path");
    g.throughput(Throughput::Elements(1));

    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    g.bench_function("untracked_read", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE + 4096), 8, AccessKind::Read))
    });

    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    for _ in 0..200 {
        rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
    }
    assert!(rt.tracked_lines() > 0);
    g.bench_function("tracked_write_sampled_1pct", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE), 8, AccessKind::Write))
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_recorder,
    bench_hot_path_with_hooks
);
criterion_main!(benches);
