//! Ablation benchmarks for the design choices §2.4 calls out:
//!
//! * **threshold-based tracking** — hot-path cost with the threshold
//!   machinery vs. tracking everything from the first write;
//! * **sampling rate** — tracked-line cost across 0.1% / 1% / 10% / 100%;
//! * **selective instrumentation** — probes executed with and without the
//!   per-block dedup of §2.4.2, measured through the IR interpreter;
//! * **prediction on/off** — end-to-end cost of the §3 machinery on an
//!   adjacent-line hot workload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use predator_core::{DetectorConfig, Predator};
use predator_instrument::{
    instrument_module, FunctionBuilder, InstrumentOptions, Machine, Module, NullSink, StepSchedule,
    ThreadSpec,
};
use predator_shadow::SimSpace;
use predator_sim::{AccessKind, ThreadId};

const BASE: u64 = 0x4000_0000;

fn bench_thresholds(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tracking_threshold");
    for threshold in [1u32, 128, 4096] {
        let cfg = DetectorConfig {
            tracking_threshold: threshold,
            ..DetectorConfig::paper()
        };
        let rt = Predator::new(cfg, BASE, 1 << 20);
        let mut i = 0u64;
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(1);
                    // Two threads ping-pong one line: with threshold 1 every
                    // access pays tracking; with 4096 the counter path dominates.
                    rt.handle_access(
                        ThreadId((i % 2) as u16),
                        BASE + (i % 2) * 8,
                        8,
                        AccessKind::Write,
                    );
                })
            },
        );
    }
    g.finish();
}

fn bench_sampling_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sampling_rate");
    for rate in [0.001f64, 0.01, 0.1, 1.0] {
        let cfg = DetectorConfig::paper().with_sampling_rate(rate);
        let rt = Predator::new(cfg, BASE, 1 << 20);
        // Push the line into tracked mode first.
        for _ in 0..300 {
            rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
        }
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, _| {
            b.iter(|| {
                i = i.wrapping_add(1);
                rt.handle_access(
                    ThreadId((i % 2) as u16),
                    BASE + (i % 2) * 8,
                    8,
                    AccessKind::Write,
                );
            })
        });
    }
    g.finish();
}

/// A loop with redundant same-block accesses — where selective
/// instrumentation pays off.
fn redundant_access_module() -> Module {
    let mut fb = FunctionBuilder::new("hot", 2);
    let i = fb.reg();
    fb.mov(i, 0i64);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jmp(head);
    fb.select_block(head);
    let c = fb.bin(
        predator_instrument::BinOp::Lt,
        i,
        predator_instrument::Operand::Reg(1),
    );
    fb.br(c, body, exit);
    fb.select_block(body);
    // Four accesses to the same address expression in one block.
    let v0 = fb.load(0u32, 0);
    fb.store(0u32, 0, predator_instrument::Operand::Reg(v0));
    let v1 = fb.load(0u32, 0);
    fb.store(0u32, 0, predator_instrument::Operand::Reg(v1));
    let i2 = fb.bin(predator_instrument::BinOp::Add, i, 1i64);
    fb.mov(i, predator_instrument::Operand::Reg(i2));
    fb.jmp(head);
    fb.select_block(exit);
    fb.ret(None);
    Module {
        functions: vec![fb.finish().unwrap()],
    }
}

fn bench_selective_instrumentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_selective_instrumentation");
    for (label, no_selective) in [("selective", false), ("exhaustive", true)] {
        let mut m = redundant_access_module();
        instrument_module(
            &mut m,
            &InstrumentOptions {
                no_selective,
                ..Default::default()
            },
        );
        g.bench_function(label, |b| {
            b.iter(|| {
                let space = SimSpace::new(4096);
                let cfg = DetectorConfig {
                    tracking_threshold: 1,
                    sampling: false,
                    ..DetectorConfig::paper()
                };
                let rt = Predator::for_space(cfg, &space);
                let machine = Machine::new(&m, &space, &rt).unwrap();
                machine
                    .run(
                        &[ThreadSpec {
                            tid: ThreadId(0),
                            function: "hot".into(),
                            args: vec![space.base() as i64, 500],
                        }],
                        StepSchedule::RoundRobin { quantum: 1 },
                        1_000_000,
                    )
                    .unwrap();
                black_box(rt.events())
            })
        });
    }
    g.finish();
}

fn bench_prediction_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prediction");
    for (label, prediction) in [("with_prediction", true), ("no_prediction", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = DetectorConfig {
                    prediction,
                    tracking_threshold: 8,
                    prediction_threshold: 64,
                    sampling: false,
                    ..DetectorConfig::paper()
                };
                let rt = Predator::new(cfg, BASE, 1 << 20);
                // Adjacent-line hot pattern (the linear_regression shape).
                for _ in 0..2_000 {
                    rt.handle_access(ThreadId(0), BASE + 56, 8, AccessKind::Write);
                    rt.handle_access(ThreadId(1), BASE + 64, 8, AccessKind::Write);
                }
                black_box(rt.unit_snapshots().len())
            })
        });
    }
    g.finish();
}

fn bench_interpreter_baseline(c: &mut Criterion) {
    // How much of the tracked-run cost is the interpreter itself vs the
    // detector: instrumented module into NullSink.
    let mut m = redundant_access_module();
    instrument_module(&mut m, &InstrumentOptions::default());
    c.bench_function("interpreter_null_sink", |b| {
        b.iter(|| {
            let space = SimSpace::new(4096);
            let machine = Machine::new(&m, &space, &NullSink).unwrap();
            machine
                .run(
                    &[ThreadSpec {
                        tid: ThreadId(0),
                        function: "hot".into(),
                        args: vec![space.base() as i64, 500],
                    }],
                    StepSchedule::RoundRobin { quantum: 1 },
                    1_000_000,
                )
                .unwrap();
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_thresholds, bench_sampling_rates, bench_selective_instrumentation, bench_prediction_cost, bench_interpreter_baseline
);
criterion_main!(benches);
