//! Criterion micro-benchmarks for the detector hot path.
//!
//! These back the Figure 7 overhead discussion with controlled
//! measurements of each pipeline stage: the untracked fast path (one atomic
//! increment), the tracked path with and without sampling, the pure data
//! structures (history table, word tracker, MESI ground truth), shadow
//! lookup, and allocator operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use predator_alloc::{Callsite, TrackedHeap};
use predator_core::{DetectorConfig, Predator};
use predator_sim::mesi::MesiSim;
use predator_sim::{AccessKind, CacheGeometry, HistoryTable, ThreadId, WordTracker};

const BASE: u64 = 0x4000_0000;

fn bench_handle_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("handle_access");
    g.throughput(Throughput::Elements(1));

    // Fast path: line far below the tracking threshold (counter saturating
    // writes would eventually cross; use reads which cost only the filter).
    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    g.bench_function("untracked_read", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE + 4096), 8, AccessKind::Read))
    });

    // Pre-threshold write path: single atomic increment. Rotate over many
    // lines so none crosses the threshold during the measurement.
    let rt = Predator::new(DetectorConfig::paper(), BASE, 64 << 20);
    let mut i = 0u64;
    let lines = (48 << 20) / 64;
    g.bench_function("below_threshold_write", |b| {
        b.iter(|| {
            i = (i + 1) % lines;
            rt.handle_access(ThreadId(0), BASE + i * 64, 8, AccessKind::Write);
        })
    });

    // Tracked line, sampling ON at the paper's 1%: most accesses skip.
    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    for _ in 0..200 {
        rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
    }
    assert!(rt.tracked_lines() > 0);
    g.bench_function("tracked_write_sampled_1pct", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE), 8, AccessKind::Write))
    });

    // Tracked line, sampling OFF: every access records (lock + tables).
    let cfg = DetectorConfig {
        sampling: false,
        ..DetectorConfig::paper()
    };
    let rt = Predator::new(cfg, BASE, 1 << 20);
    for _ in 0..200 {
        rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
    }
    g.bench_function("tracked_write_unsampled", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE), 8, AccessKind::Write))
    });

    // Detector disabled (the Figure 7 "Original" baseline).
    let rt = Predator::new(DetectorConfig::disabled(), BASE, 1 << 20);
    g.bench_function("disabled", |b| {
        b.iter(|| rt.handle_access(ThreadId(0), black_box(BASE), 8, AccessKind::Write))
    });

    g.finish();
}

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");
    g.throughput(Throughput::Elements(1));

    let mut table = HistoryTable::new();
    let mut i = 0u16;
    g.bench_function("history_table_record", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(table.record(ThreadId(i % 4), AccessKind::Write))
        })
    });

    let geom = CacheGeometry::new(64);
    let mut words = WordTracker::new(0, geom);
    let mut j = 0u64;
    g.bench_function("word_tracker_record", |b| {
        b.iter(|| {
            j = j.wrapping_add(1);
            words.record(ThreadId((j % 4) as u16), (j % 8) * 8, 8, AccessKind::Write);
        })
    });

    let mut mesi = MesiSim::new(4, geom);
    let mut k = 0u64;
    g.bench_function("mesi_access", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            mesi.access(ThreadId((k % 4) as u16), (k % 64) * 8, 8, AccessKind::Write);
        })
    });

    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator");
    g.throughput(Throughput::Elements(1));

    let heap = TrackedHeap::new(BASE, 256 << 20, 64, 64 << 10);
    g.bench_function("malloc_free_64B", |b| {
        b.iter(|| {
            let o = heap.malloc(ThreadId(0), 64, Callsite::unknown()).unwrap();
            heap.free(ThreadId(0), o.start).unwrap();
        })
    });

    let heap2 = TrackedHeap::new(BASE, 256 << 20, 64, 64 << 10);
    let objs: Vec<_> = (0..1024)
        .map(|_| heap2.malloc(ThreadId(0), 64, Callsite::unknown()).unwrap())
        .collect();
    let mut n = 0usize;
    g.bench_function("object_at_lookup", |b| {
        b.iter(|| {
            n = (n + 1) % objs.len();
            black_box(heap2.object_at(objs[n].start + 13))
        })
    });

    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_handle_access, bench_structures, bench_allocator
);
criterion_main!(benches);
