//! Rule-driven alerting over the embedded [`crate::tsdb`] store.
//!
//! A hand-rolled, line-oriented rule format (`docs/alerts.rules`) keeps
//! the zero-dependency discipline: no YAML, no regex crate. One rule:
//!
//! ```text
//! alert overhead_budget_breach
//!   expr: predator_watchdog_overhead_ppm > 80000
//!   for: 10s
//!   severity: critical
//!   summary: instrumentation overhead above the serve budget
//! ```
//!
//! `expr` is either a threshold over a metric's latest value or a
//! `rate(metric[window])` condition over the tsdb's trailing window.
//! `for:` is hysteresis: the condition must hold continuously that long
//! before the alert fires (Prometheus semantics). Each evaluation tick
//! drives a per-rule state machine — inactive → pending → firing →
//! resolved — and every transition is emitted to the JSONL event sink as
//! an `alert_transition` record, so the alert history rides in the same
//! trace as the detector events it explains.

use crate::tsdb::Tsdb;
use crate::FieldVal;

/// Schema tag embedded in `/alerts` JSON documents.
pub const ALERTS_SCHEMA: &str = "predator-alerts/1";

/// Rule severity label (ordering: info < warning < critical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Info,
    /// Needs a look.
    Warning,
    /// Needs a look now.
    Critical,
}

impl Severity {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// Comparison operator in an `expr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Cmp {
    fn parse(s: &str) -> Option<Self> {
        match s {
            ">" => Some(Cmp::Gt),
            ">=" => Some(Cmp::Ge),
            "<" => Some(Cmp::Lt),
            "<=" => Some(Cmp::Le),
            "==" => Some(Cmp::Eq),
            "!=" => Some(Cmp::Ne),
            _ => None,
        }
    }

    /// Renders the operator as written in rule files.
    pub fn as_str(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        }
    }

    /// Applies the comparison.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }
}

/// A parsed `expr:` condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `metric <op> value` over the latest stored sample.
    Threshold {
        /// Metric name (any tsdb series, including derived `:p99` etc.).
        metric: String,
        /// Comparison operator.
        cmp: Cmp,
        /// Right-hand threshold.
        value: f64,
    },
    /// `rate(metric[window]) <op> value` over the trailing window.
    Rate {
        /// Metric name.
        metric: String,
        /// Trailing window, milliseconds.
        window_ms: u64,
        /// Comparison operator.
        cmp: Cmp,
        /// Right-hand threshold (per-second rate).
        value: f64,
    },
}

impl Expr {
    /// The metric the expression reads.
    pub fn metric(&self) -> &str {
        match self {
            Expr::Threshold { metric, .. } | Expr::Rate { metric, .. } => metric,
        }
    }

    /// Renders the expression as written in rule files.
    pub fn render(&self) -> String {
        match self {
            Expr::Threshold { metric, cmp, value } => {
                format!("{metric} {} {value}", cmp.as_str())
            }
            Expr::Rate {
                metric,
                window_ms,
                cmp,
                value,
            } => format!(
                "rate({metric}[{}]) {} {value}",
                render_duration(*window_ms),
                cmp.as_str()
            ),
        }
    }

    /// Evaluates against the store; `None` when the metric is unknown or
    /// the window lacks two distinct-time points.
    pub fn value(&self, tsdb: &Tsdb, now_ms: u64) -> Option<f64> {
        match self {
            Expr::Threshold { metric, .. } => tsdb.latest(metric),
            Expr::Rate {
                metric, window_ms, ..
            } => tsdb.rate(metric, *window_ms, now_ms),
        }
    }

    fn holds(&self, tsdb: &Tsdb, now_ms: u64) -> Option<bool> {
        let (cmp, rhs) = match self {
            Expr::Threshold { cmp, value, .. } | Expr::Rate { cmp, value, .. } => (*cmp, *value),
        };
        self.value(tsdb, now_ms).map(|lhs| cmp.eval(lhs, rhs))
    }
}

/// One alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Alert name (`[A-Za-z0-9_:]`).
    pub name: String,
    /// Condition.
    pub expr: Expr,
    /// Hysteresis: condition must hold this long before firing.
    pub for_ms: u64,
    /// Severity label.
    pub severity: Severity,
    /// Free-text annotation.
    pub summary: Option<String>,
}

/// One parse problem, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line in the rules file.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parses `30s` / `5m` / `2h` / `1500ms` into milliseconds.
pub fn parse_duration_ms(s: &str) -> Option<u64> {
    let (digits, unit) = s.split_at(s.find(|c: char| !c.is_ascii_digit())?);
    let n: u64 = digits.parse().ok()?;
    match unit {
        "ms" => Some(n),
        "s" => n.checked_mul(1_000),
        "m" => n.checked_mul(60_000),
        "h" => n.checked_mul(3_600_000),
        _ => None,
    }
}

fn render_duration(ms: u64) -> String {
    if ms >= 3_600_000 && ms.is_multiple_of(3_600_000) {
        format!("{}h", ms / 3_600_000)
    } else if ms >= 60_000 && ms.is_multiple_of(60_000) {
        format!("{}m", ms / 60_000)
    } else if ms >= 1_000 && ms.is_multiple_of(1_000) {
        format!("{}s", ms / 1_000)
    } else {
        format!("{ms}ms")
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_expr(s: &str) -> Result<Expr, String> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    let [lhs, op, rhs] = parts.as_slice() else {
        return Err(format!(
            "expected `<metric> <op> <value>` or `rate(<metric>[<window>]) <op> <value>`, got `{s}`"
        ));
    };
    let cmp = Cmp::parse(op).ok_or_else(|| format!("unknown operator `{op}`"))?;
    let value: f64 = rhs
        .parse()
        .map_err(|_| format!("`{rhs}` is not a number"))?;
    if let Some(inner) = lhs.strip_prefix("rate(").and_then(|r| r.strip_suffix(')')) {
        let (metric, win) = inner
            .split_once('[')
            .and_then(|(m, w)| w.strip_suffix(']').map(|w| (m, w)))
            .ok_or_else(|| format!("rate() needs `metric[window]`, got `{inner}`"))?;
        if !valid_metric_name(metric) {
            return Err(format!("bad metric name `{metric}`"));
        }
        let window_ms = parse_duration_ms(win)
            .filter(|&w| w > 0)
            .ok_or_else(|| format!("bad rate window `{win}` (want e.g. 30s, 5m)"))?;
        Ok(Expr::Rate {
            metric: metric.to_string(),
            window_ms,
            cmp,
            value,
        })
    } else {
        if !valid_metric_name(lhs) {
            return Err(format!("bad metric name `{lhs}`"));
        }
        Ok(Expr::Threshold {
            metric: lhs.to_string(),
            cmp,
            value,
        })
    }
}

/// Parses a whole rules file; returns every problem found, not just the
/// first (that is what `predator alerts lint` prints).
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, Vec<LintError>> {
    struct Draft {
        line: usize,
        name: String,
        expr: Option<Expr>,
        for_ms: u64,
        severity: Severity,
        summary: Option<String>,
    }
    let mut rules: Vec<Rule> = Vec::new();
    let mut errors: Vec<LintError> = Vec::new();
    let mut draft: Option<Draft> = None;

    let finish = |d: Option<Draft>, rules: &mut Vec<Rule>, errors: &mut Vec<LintError>| {
        let Some(d) = d else { return };
        match d.expr {
            Some(expr) => rules.push(Rule {
                name: d.name,
                expr,
                for_ms: d.for_ms,
                severity: d.severity,
                summary: d.summary,
            }),
            None => errors.push(LintError {
                line: d.line,
                msg: format!("alert `{}` has no expr:", d.name),
            }),
        }
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("alert ") {
            let name = name.trim();
            if !valid_metric_name(name) {
                errors.push(LintError {
                    line: lineno,
                    msg: format!("bad alert name `{name}`"),
                });
            }
            if rules.iter().any(|r| r.name == name)
                || draft.as_ref().is_some_and(|d| d.name == name)
            {
                errors.push(LintError {
                    line: lineno,
                    msg: format!("duplicate alert `{name}`"),
                });
            }
            finish(draft.take(), &mut rules, &mut errors);
            draft = Some(Draft {
                line: lineno,
                name: name.to_string(),
                expr: None,
                for_ms: 0,
                severity: Severity::Warning,
                summary: None,
            });
            continue;
        }
        let Some((key, val)) = line.split_once(':') else {
            errors.push(LintError {
                line: lineno,
                msg: format!("expected `key: value` or `alert <name>`, got `{line}`"),
            });
            continue;
        };
        let val = val.trim();
        let Some(d) = draft.as_mut() else {
            errors.push(LintError {
                line: lineno,
                msg: "rule body before any `alert <name>` header".into(),
            });
            continue;
        };
        match key.trim() {
            "expr" => match parse_expr(val) {
                Ok(e) => d.expr = Some(e),
                Err(msg) => errors.push(LintError { line: lineno, msg }),
            },
            "for" => match parse_duration_ms(val) {
                Some(ms) => d.for_ms = ms,
                None => errors.push(LintError {
                    line: lineno,
                    msg: format!("bad duration `{val}` (want e.g. 10s, 5m, 1h)"),
                }),
            },
            "severity" => match Severity::parse(val) {
                Some(s) => d.severity = s,
                None => errors.push(LintError {
                    line: lineno,
                    msg: format!("unknown severity `{val}` (info|warning|critical)"),
                }),
            },
            "summary" => d.summary = Some(val.to_string()),
            other => errors.push(LintError {
                line: lineno,
                msg: format!("unknown key `{other}` (expr|for|severity|summary)"),
            }),
        }
    }
    finish(draft.take(), &mut rules, &mut errors);
    if errors.is_empty() {
        Ok(rules)
    } else {
        Err(errors)
    }
}

/// Where a rule's state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false, never fired (or reset after pending).
    Inactive,
    /// Condition true, waiting out the `for:` hysteresis.
    Pending {
        /// When the condition first held.
        since_ms: u64,
    },
    /// Condition held for `for:`; actively firing.
    Firing {
        /// When the alert started firing.
        since_ms: u64,
    },
    /// Fired, then the condition cleared.
    Resolved {
        /// When the condition cleared.
        at_ms: u64,
    },
}

impl AlertState {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending { .. } => "pending",
            AlertState::Firing { .. } => "firing",
            AlertState::Resolved { .. } => "resolved",
        }
    }
}

/// One state change, returned by [`AlertEngine::eval`] and emitted to the
/// JSONL event sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Rule name.
    pub alert: String,
    /// Rule severity.
    pub severity: Severity,
    /// State left.
    pub from: &'static str,
    /// State entered.
    pub to: &'static str,
    /// Expression value at the transition, if computable.
    pub value: Option<f64>,
    /// Evaluation time (serve uptime, ms).
    pub at_ms: u64,
}

impl Transition {
    /// Writes this transition to the global JSONL event sink.
    pub fn emit(&self) {
        let value = self.value.unwrap_or(f64::NAN); // NaN renders as null
        crate::events().emit(
            "alert_transition",
            &[
                ("alert", FieldVal::Str(&self.alert)),
                ("severity", FieldVal::Str(self.severity.as_str())),
                ("from", FieldVal::Str(self.from)),
                ("to", FieldVal::Str(self.to)),
                ("value", FieldVal::F64(value)),
                ("at_ms", FieldVal::U64(self.at_ms)),
            ],
        );
    }
}

struct RuleSlot {
    rule: Rule,
    state: AlertState,
    last_value: Option<f64>,
}

/// Evaluates a rule set against a [`Tsdb`] once per tick, tracking each
/// rule's pending → firing → resolved lifecycle.
pub struct AlertEngine {
    slots: Vec<RuleSlot>,
    transitions_total: u64,
}

impl AlertEngine {
    /// An engine with every rule inactive.
    pub fn new(rules: Vec<Rule>) -> Self {
        AlertEngine {
            slots: rules
                .into_iter()
                .map(|rule| RuleSlot {
                    rule,
                    state: AlertState::Inactive,
                    last_value: None,
                })
                .collect(),
            transitions_total: 0,
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> Vec<&Rule> {
        self.slots.iter().map(|s| &s.rule).collect()
    }

    /// Rules currently firing.
    pub fn firing(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, AlertState::Firing { .. }))
            .count()
    }

    /// Rules currently pending.
    pub fn pending(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, AlertState::Pending { .. }))
            .count()
    }

    /// State transitions seen over the engine's lifetime.
    pub fn transitions_total(&self) -> u64 {
        self.transitions_total
    }

    /// Evaluates every rule at `now_ms`, advances the state machines, and
    /// returns (and JSONL-emits) the transitions. Also maintains the
    /// `predator_alerts_firing` / `predator_alerts_pending` gauges and the
    /// `predator_alert_transitions_total` counter.
    pub fn eval(&mut self, tsdb: &Tsdb, now_ms: u64) -> Vec<Transition> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            let holds = slot.rule.expr.holds(tsdb, now_ms);
            slot.last_value = slot.rule.expr.value(tsdb, now_ms);
            // An unknown metric or an empty rate window is "condition not
            // met": alerting on absent data would fire every rule at boot.
            let active = holds == Some(true);
            let next = match (slot.state, active) {
                (AlertState::Inactive | AlertState::Resolved { .. }, true) => {
                    if slot.rule.for_ms == 0 {
                        AlertState::Firing { since_ms: now_ms }
                    } else {
                        AlertState::Pending { since_ms: now_ms }
                    }
                }
                (AlertState::Pending { since_ms }, true) => {
                    if now_ms.saturating_sub(since_ms) >= slot.rule.for_ms {
                        AlertState::Firing { since_ms: now_ms }
                    } else {
                        AlertState::Pending { since_ms }
                    }
                }
                (AlertState::Firing { since_ms }, true) => AlertState::Firing { since_ms },
                (AlertState::Pending { .. }, false) => AlertState::Inactive,
                (AlertState::Firing { .. }, false) => AlertState::Resolved { at_ms: now_ms },
                (state @ (AlertState::Inactive | AlertState::Resolved { .. }), false) => state,
            };
            if next.as_str() != slot.state.as_str() {
                let t = Transition {
                    alert: slot.rule.name.clone(),
                    severity: slot.rule.severity,
                    from: slot.state.as_str(),
                    to: next.as_str(),
                    value: slot.last_value,
                    at_ms: now_ms,
                };
                t.emit();
                self.transitions_total += 1;
                out.push(t);
            }
            slot.state = next;
        }
        crate::static_gauge!("predator_alerts_firing").set(self.firing() as i64);
        crate::static_gauge!("predator_alerts_pending").set(self.pending() as i64);
        if !out.is_empty() {
            crate::static_counter!("predator_alert_transitions_total").add(out.len() as u64);
        }
        out
    }

    /// The `/alerts` JSON document.
    pub fn to_json(&self, now_ms: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema\":\"{ALERTS_SCHEMA}\",\"now_ms\":{now_ms},\"firing\":{},\
             \"pending\":{},\"transitions_total\":{},\"alerts\":[",
            self.firing(),
            self.pending(),
            self.transitions_total
        );
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\"",
                slot.rule.name,
                slot.rule.severity.as_str(),
                slot.state.as_str()
            );
            match slot.state {
                AlertState::Pending { since_ms } | AlertState::Firing { since_ms } => {
                    let _ = write!(out, ",\"since_ms\":{since_ms}");
                }
                AlertState::Resolved { at_ms } => {
                    let _ = write!(out, ",\"resolved_ms\":{at_ms}");
                }
                AlertState::Inactive => {}
            }
            match slot.last_value {
                Some(v) if v.is_finite() => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                _ => out.push_str(",\"value\":null"),
            }
            let _ = write!(
                out,
                ",\"expr\":\"{}\",\"for_ms\":{}",
                slot.rule.expr.render(),
                slot.rule.for_ms
            );
            if let Some(s) = &slot.rule.summary {
                out.push_str(",\"summary\":\"");
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    const RULES: &str = "\
# demo pack
alert overhead_high
  expr: overhead_ppm > 100
  for: 2s
  severity: critical
  summary: overhead above budget

alert stalled
  expr: rate(work_total[10s]) == 0
  severity: info
";

    /// `overhead_ppm` at `v`, with `work_total` advancing with time so the
    /// `stalled` rate rule stays quiet.
    fn gauge_snap(v: i64, t_ms: u64) -> Snapshot {
        Snapshot {
            gauges: vec![("overhead_ppm".into(), v)],
            counters: vec![("work_total".into(), t_ms)],
            ..Default::default()
        }
    }

    #[test]
    fn parses_the_demo_pack() {
        let rules = parse_rules(RULES).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "overhead_high");
        assert_eq!(rules[0].for_ms, 2_000);
        assert_eq!(rules[0].severity, Severity::Critical);
        assert_eq!(rules[0].expr.render(), "overhead_ppm > 100");
        assert_eq!(rules[1].severity, Severity::Info);
        assert_eq!(rules[1].expr.render(), "rate(work_total[10s]) == 0");
    }

    #[test]
    fn lint_reports_every_problem_with_line_numbers() {
        let bad = "alert a\n  expr: x %% 3\nalert a\n  frequency: often\nalert b\n";
        let errs = parse_rules(bad).unwrap_err();
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert!(msgs.iter().any(|m| m.starts_with("line 2:")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("duplicate alert `a`")));
        assert!(msgs.iter().any(|m| m.contains("unknown key `frequency`")));
        assert!(msgs.iter().any(|m| m.contains("`b` has no expr")));
    }

    #[test]
    fn duration_grammar_round_trips() {
        assert_eq!(parse_duration_ms("30s"), Some(30_000));
        assert_eq!(parse_duration_ms("5m"), Some(300_000));
        assert_eq!(parse_duration_ms("2h"), Some(7_200_000));
        assert_eq!(parse_duration_ms("1500ms"), Some(1_500));
        assert_eq!(parse_duration_ms("10"), None);
        assert_eq!(parse_duration_ms("s"), None);
        assert_eq!(render_duration(300_000), "5m");
        assert_eq!(render_duration(1_500), "1500ms");
    }

    #[test]
    fn lifecycle_honors_for_hysteresis() {
        let rules = parse_rules(RULES).unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut db = Tsdb::default();

        // t=0: condition false — nothing moves.
        db.sample(&gauge_snap(50, 0), 0);
        assert!(engine.eval(&db, 0).is_empty());

        // t=1s: condition turns true — pending, not yet firing.
        db.sample(&gauge_snap(500, 1_000), 1_000);
        let ts = engine.eval(&db, 1_000);
        assert_eq!(ts.len(), 1);
        assert_eq!((ts[0].from, ts[0].to), ("inactive", "pending"));

        // t=2s: held 1s of the required 2s — still pending, no transition.
        db.sample(&gauge_snap(500, 2_000), 2_000);
        assert!(engine.eval(&db, 2_000).is_empty());

        // t=3s: held 2s — fires.
        db.sample(&gauge_snap(500, 3_000), 3_000);
        let ts = engine.eval(&db, 3_000);
        assert_eq!(ts.len(), 1);
        assert_eq!((ts[0].from, ts[0].to), ("pending", "firing"));
        assert_eq!(engine.firing(), 1);

        // t=4s: condition clears — resolved.
        db.sample(&gauge_snap(10, 4_000), 4_000);
        let ts = engine.eval(&db, 4_000);
        assert_eq!(ts.len(), 1);
        assert_eq!((ts[0].from, ts[0].to), ("firing", "resolved"));
        assert_eq!(engine.firing(), 0);

        let json = engine.to_json(4_000);
        assert!(
            json.starts_with("{\"schema\":\"predator-alerts/1\""),
            "{json}"
        );
        assert!(json.contains("\"state\":\"resolved\""));
        assert!(json.contains("\"expr\":\"overhead_ppm > 100\""));
    }

    #[test]
    fn pending_resets_when_condition_flaps() {
        let rules = parse_rules("alert a\n expr: g > 0\n for: 10s\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut db = Tsdb::default();
        db.sample(
            &Snapshot {
                gauges: vec![("g".into(), 1)],
                ..Default::default()
            },
            0,
        );
        engine.eval(&db, 0);
        assert_eq!(engine.pending(), 1);
        db.sample(
            &Snapshot {
                gauges: vec![("g".into(), 0)],
                ..Default::default()
            },
            1_000,
        );
        let ts = engine.eval(&db, 1_000);
        assert_eq!((ts[0].from, ts[0].to), ("pending", "inactive"));
        // A fresh breach restarts the clock: still only pending at +9s.
        db.sample(
            &Snapshot {
                gauges: vec![("g".into(), 1)],
                ..Default::default()
            },
            2_000,
        );
        engine.eval(&db, 2_000);
        engine.eval(&db, 11_000);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.firing(), 0);
    }

    #[test]
    fn zero_for_fires_immediately_and_rate_rules_need_history() {
        let rules = parse_rules("alert r\n expr: rate(c_total[5s]) > 10\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut db = Tsdb::default();
        let snap = |v: u64| Snapshot {
            counters: vec![("c_total".into(), v)],
            ..Default::default()
        };
        // One sample: no rate — condition unknown, stays inactive.
        db.sample(&snap(0), 0);
        assert!(engine.eval(&db, 0).is_empty());
        // 100/s over the window: fires with for: 0.
        db.sample(&snap(100), 1_000);
        let ts = engine.eval(&db, 1_000);
        assert_eq!((ts[0].from, ts[0].to), ("inactive", "firing"));
    }

    #[test]
    fn unknown_metrics_never_fire() {
        let rules = parse_rules("alert a\n expr: missing_metric > 0\n").unwrap();
        let mut engine = AlertEngine::new(rules);
        let db = Tsdb::default();
        assert!(engine.eval(&db, 0).is_empty());
        let json = engine.to_json(0);
        assert!(json.contains("\"value\":null"), "{json}");
    }
}
