//! The metrics registry: sharded counters, gauges, log2 histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

use crate::snapshot::{Bucket, HistogramSnapshot, Snapshot};

/// Number of independent cells a [`Counter`] is split across. Each thread
/// hashes to one cell, so concurrent increments from different threads land
/// on different cache lines instead of ping-ponging a single one — exactly
/// the false-sharing failure mode the detector exists to find.
pub const COUNTER_SHARDS: usize = 16;

/// One counter cell on its own cache line.
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// Dense per-thread shard assignment: the Nth thread to touch a counter
/// gets cell `N % COUNTER_SHARDS`, so up to 16 threads never collide.
#[cfg_attr(feature = "obs-off", allow(dead_code))]
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonic counter, per-thread sharded and cache-line padded.
///
/// Handles are cheap `Arc` clones; hot paths should obtain one once (at
/// construction) and call [`Counter::inc`] on the cached handle.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedCell; COUNTER_SHARDS]>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: Arc::new(std::array::from_fn(|_| PaddedCell(AtomicU64::new(0)))),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed gauge (a single atomic cell — gauges are not hot-path).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.cell.store(v, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        #[cfg(not(feature = "obs-off"))]
        self.cell.fetch_add(d, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = d;
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds zeros, bucket `i` holds values in
/// `[2^(i-1), 2^i)`, up to `i = 64`.
const HIST_BUCKETS: usize = 65;

/// Bucket index for `v`: 0 for 0, otherwise `floor(log2(v)) + 1`.
#[inline]
pub const fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value landing in bucket `i` (0 for bucket 0, else `2^(i-1)`).
#[inline]
pub const fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram for latencies (ns) and sizes (bytes).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.core.count.fetch_add(1, Ordering::Relaxed);
            self.core.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Starts an RAII timer that records elapsed nanoseconds on drop.
    #[inline]
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            hist: self,
            #[cfg(not(feature = "obs-off"))]
            start: Instant::now(),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Count in bucket `i` (see [`bucket_index`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.core.buckets[i].load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = (0..HIST_BUCKETS)
            .filter_map(|i| {
                let count = self.bucket(i);
                (count > 0).then(|| Bucket {
                    lo: bucket_lower_bound(i),
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// RAII timer from [`Histogram::start_timer`]: records ns elapsed on drop.
pub struct Timer<'a> {
    #[allow(dead_code)]
    hist: &'a Histogram,
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A collection of named metrics. Registration (the first call for a name)
/// takes a lock; the returned handles are lock-free.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry (use [`global`] for the shared one).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(Counter::new)
            .clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(Gauge::new)
            .clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }
}

/// The process-global registry every pipeline stage records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), if cfg!(feature = "obs-off") { 0 } else { 42 });
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn concurrent_increments_sum_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let r = Registry::new();
        let c = r.counter("contended");
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn same_name_is_same_metric() {
        let r = Registry::new();
        let a = r.counter("n");
        let b = r.counter("n");
        a.add(3);
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), if cfg!(feature = "obs-off") { 0 } else { 7 });
    }

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo * 2 - 1), i, "upper bound of bucket {i}");
            assert_eq!(bucket_lower_bound(i), lo);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn histogram_records_into_log2_buckets() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 2); // 4, 7
        assert_eq!(h.bucket(4), 1); // 8
        assert_eq!(h.bucket(11), 1); // 1024
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("t");
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_lists_all_metrics() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(-2);
        r.histogram("h").record(9);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        if !cfg!(feature = "obs-off") {
            assert_eq!(s.counters[0], ("c".to_string(), 5));
            assert_eq!(s.gauges[0], ("g".to_string(), -2));
            assert_eq!(s.histograms[0].count, 1);
        }
    }
}
